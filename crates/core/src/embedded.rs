//! The physical DOL: codes embedded in the NoK block store (§3.2–§3.4).
//!
//! The embedding itself (block headers, change bits, in-block transition
//! entries) is implemented by [`dol_storage::StructStore`]; this module
//! supplies the semantics: the in-memory [`Codebook`] the codes index, the
//! single-pass secured bulk build, the piggy-backed accessibility check, the
//! page-skip test, and the accessibility-update entry points.

use crate::codebook::{Codebook, CompactionPhase};
use crate::column::SubjectColumn;
use crate::dol::Dol;
use crate::stats::DolStats;
use dol_acl::{AccessOracle, BitVec, SubjectId};
use dol_storage::{BufferPool, BulkItem, StoreConfig, StructStore};
use dol_xml::Document;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Storage-layer errors bubbled up from the block store.
pub type StorageError = dol_storage::disk::StorageError;

/// Decoded-column cache capacity; past this the cache is flushed wholesale
/// (subject spaces can reach millions under group factoring).
const COLUMN_CACHE_CAP: usize = 4096;

/// What one [`EmbeddedDol::compaction_tick`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionProgress {
    /// The phase the step ran in (`None` once the plan completed).
    pub phase: Option<CompactionPhase>,
    /// Blocks rewritten by this step — never more than the `max_blocks`
    /// bound the caller passed.
    pub blocks_done: usize,
    /// Whether the plan completed (codebook truncated + columns retired).
    pub finished: bool,
    /// Whether a concurrently-invalidated plan was rebuilt first.
    pub replanned: bool,
}

/// Produces the document-order [`BulkItem`] stream for a secured bulk load,
/// interning each node's ACL on the fly — the paper's single-pass
/// construction "using a single pass through a labeled XML document".
pub fn build_secure_items(doc: &Document, oracle: &impl AccessOracle) -> (Vec<BulkItem>, Codebook) {
    let mut codebook = Codebook::new(oracle.subject_count());
    let mut row = BitVec::zeros(0);
    let mut prev: Option<u32> = None;
    let mut items = Vec::with_capacity(doc.len());
    for id in doc.preorder() {
        let n = doc.node(id);
        oracle.acl_row(id, &mut row);
        let code = codebook.intern(&row);
        let is_transition = prev != Some(code);
        prev = Some(code);
        items.push(BulkItem {
            tag: n.tag,
            size: n.size,
            depth: n.depth,
            has_value: n.value.is_some(),
            code,
            is_transition,
        });
    }
    (items, codebook)
}

/// The in-memory half of an embedded DOL: the codebook plus the operations
/// that interpret the codes stored in a [`StructStore`].
pub struct EmbeddedDol {
    codebook: Codebook,
    /// Decoded subject columns, one per subject seen, each revalidated
    /// against the codebook's version stamp on every
    /// [`column`](EmbeddedDol::column) call — a serving mix that
    /// interleaves subjects must not thrash a single slot. Codebook
    /// mutations require `&mut self`, so a column handed out under `&self`
    /// can never race a code-space change. The subject space can reach
    /// millions (group-factored codebooks), so the cache is capped and
    /// flushed wholesale when it overflows; handed-out `Arc`s stay valid.
    column_cache: Mutex<HashMap<SubjectId, Arc<SubjectColumn>>>,
}

impl Clone for EmbeddedDol {
    fn clone(&self) -> Self {
        Self {
            codebook: self.codebook.clone(),
            // A poisoned cache lock only means a panic mid-insert; the map
            // itself is always valid, so recover the guard rather than
            // propagate the poison.
            column_cache: Mutex::new(
                self.column_cache
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .clone(),
            ),
        }
    }
}

impl std::fmt::Debug for EmbeddedDol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbeddedDol")
            .field("codebook", &self.codebook)
            .finish_non_exhaustive()
    }
}

impl EmbeddedDol {
    /// Builds a secured store and its embedded DOL from a document and an
    /// access oracle, in one document-order pass.
    pub fn build(
        pool: Arc<BufferPool>,
        cfg: StoreConfig,
        doc: &Document,
        oracle: &impl AccessOracle,
    ) -> Result<(StructStore, EmbeddedDol), StorageError> {
        let (items, codebook) = build_secure_items(doc, oracle);
        let store = StructStore::build(pool, cfg, items)?;
        Ok((store, EmbeddedDol::from_codebook(codebook)))
    }

    /// Wraps an existing codebook (e.g. loaded from persisted form).
    pub fn from_codebook(codebook: Codebook) -> Self {
        Self {
            codebook,
            column_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The decoded accessibility column for `subject`, cached until the next
    /// codebook mutation. The returned column is immutable and cheap to
    /// clone, so per-query (or per-worker) holders pay the cache lock once
    /// and then check codes with a single shift-and-mask.
    pub fn column(&self, subject: SubjectId) -> Arc<SubjectColumn> {
        let mut cache = self.column_cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(col) = cache.get(&subject) {
            if col.matches(&self.codebook, subject) {
                return Arc::clone(col);
            }
        }
        let col = Arc::new(self.codebook.column(subject));
        if cache.len() >= COLUMN_CACHE_CAP {
            cache.clear();
        }
        cache.insert(subject, Arc::clone(&col));
        col
    }

    /// The codebook.
    pub fn codebook(&self) -> &Codebook {
        &self.codebook
    }

    /// Mutable codebook access (subject add/remove operate here only —
    /// "no changes to the embedded transition nodes … are required", §3.4).
    pub fn codebook_mut(&mut self) -> &mut Codebook {
        &mut self.codebook
    }

    /// Interprets an access-control code for a subject. This is the hot-path
    /// check ε-NoK performs on a code it already read from the node's page.
    #[inline]
    pub fn check_code(&self, code: u32, subject: SubjectId) -> bool {
        self.codebook.bit(code, subject)
    }

    /// Whether `subject` may access the node at `pos` (one page access,
    /// shared with the structural read — see
    /// [`StructStore::node_and_code`]). Resolves the code through the cached
    /// decoded column for `subject`.
    pub fn accessible(
        &self,
        store: &StructStore,
        pos: u64,
        subject: SubjectId,
    ) -> Result<bool, StorageError> {
        let column = self.column(subject);
        Ok(column.check_code(store.code_at(pos)?))
    }

    /// The page-skip test (§3.3): if block `idx`'s first node is
    /// inaccessible to `subject` and the change bit is clear, every node in
    /// the block is inaccessible — and this is decided **from memory**,
    /// without reading the page.
    pub fn block_skippable(&self, store: &StructStore, idx: usize, subject: SubjectId) -> bool {
        self.block_skippable_with(store, idx, &self.column(subject))
    }

    /// [`block_skippable`](EmbeddedDol::block_skippable) against an
    /// already-decoded column — the per-worker fast path.
    pub fn block_skippable_with(
        &self,
        store: &StructStore,
        idx: usize,
        column: &SubjectColumn,
    ) -> bool {
        let info = store.block_info(idx);
        !info.change && !column.check_code(info.first_code)
    }

    /// The §3.3 page-skip test evaluated **word-parallel over the whole
    /// block directory**: bit `b & 63` of word `b >> 6` is set iff block `b`
    /// is skippable for `column`'s subject. Built from the in-memory
    /// [`BlockInfo`](dol_storage::BlockInfo) directory with one
    /// [`SubjectColumn::check_codes64`] gather per 64 blocks — still zero
    /// page I/O, but one bit test per candidate afterwards instead of a
    /// header load and branch.
    pub fn block_skip_mask(&self, store: &StructStore, column: &SubjectColumn) -> Vec<u64> {
        let nblocks = store.block_count();
        let mut mask = vec![0u64; nblocks.div_ceil(64)];
        let mut codes = [0u32; 64];
        for (w, chunk) in (0..nblocks).step_by(64).enumerate() {
            let n = 64.min(nblocks - chunk);
            let mut change = 0u64;
            for (i, code) in codes.iter_mut().enumerate().take(n) {
                let info = store.block_info(chunk + i);
                *code = info.first_code;
                if info.change {
                    change |= 1u64 << i;
                }
            }
            let accessible = column.check_codes64(&codes[..n]);
            let valid = if n == 64 { !0u64 } else { (1u64 << n) - 1 };
            mask[w] = !accessible & !change & valid;
        }
        mask
    }

    /// Grants or revokes one subject's access to the single node at `pos`
    /// (§3.4 single-node accessibility update: one page read + one write).
    pub fn set_node(
        &mut self,
        store: &mut StructStore,
        pos: u64,
        subject: SubjectId,
        allow: bool,
    ) -> Result<(), StorageError> {
        let code = store.code_at(pos)?;
        let col = self.codebook.ensure_direct_column(subject) as usize;
        let mut acl = self.codebook.entry_padded(code);
        if acl.get(col) == allow {
            return Ok(()); // preceding transition already agrees — stop.
        }
        acl.set(col, allow);
        let new_code = self.codebook.intern(&acl);
        store.set_code_run(pos, pos + 1, new_code)
    }

    /// Grants or revokes one subject's access over the subtree occupying
    /// `[start, end)` (§3.4 subtree update: `N/B` page I/Os). Other
    /// subjects' rights inside the range are preserved: each existing code
    /// run is remapped through the codebook with only `subject`'s bit
    /// changed, and adjacent runs that become equal are merged.
    pub fn set_subtree(
        &mut self,
        store: &mut StructStore,
        start: u64,
        end: u64,
        subject: SubjectId,
        allow: bool,
    ) -> Result<(), StorageError> {
        let runs = store.runs_in(start, end)?;
        let col = self.codebook.ensure_direct_column(subject) as usize;
        // Remap codes and coalesce adjacent equal results.
        let mut mapped: Vec<(u64, u32, u32)> = Vec::with_capacity(runs.len()); // (start, old, new)
        for (pos, old) in runs {
            let mut acl = self.codebook.entry_padded(old);
            acl.set(col, allow);
            let new = self.codebook.intern(&acl);
            match mapped.last() {
                Some(&(_, _, prev_new)) if prev_new == new => {}
                _ => mapped.push((pos, old, new)),
            }
        }
        // Apply left to right; stretches that are already a single run of
        // the target code are skipped.
        for (i, &(s, old, new)) in mapped.iter().enumerate() {
            let e = mapped.get(i + 1).map(|&(p, _, _)| p).unwrap_or(end);
            let unchanged = old == new && store.runs_in(s, e)?.len() == 1;
            if !unchanged {
                store.set_code_run(s, e, new)?;
            }
        }
        Ok(())
    }

    /// Sets a whole ACL over `[start, end)`.
    pub fn set_run(
        &mut self,
        store: &mut StructStore,
        start: u64,
        end: u64,
        acl: &BitVec,
    ) -> Result<(), StorageError> {
        let code = self.codebook.intern(acl);
        store.set_code_run(start, end, code)
    }

    /// Performs the §3.4 lazy cleanup after subject removals: compacts the
    /// codebook (dropping removed columns, merging duplicate entries) and
    /// rewrites every embedded code through the resulting remap in one
    /// **stop-the-world** pass over the blocks. Live stores should prefer
    /// the incremental driver
    /// ([`begin_compaction`](EmbeddedDol::begin_compaction) +
    /// [`compaction_tick`](EmbeddedDol::compaction_tick)), which does the
    /// same cleanup in bounded-work steps.
    pub fn compact_subjects(&mut self, store: &mut StructStore) -> Result<(), StorageError> {
        let remap = self.codebook.compact();
        store.remap_codes(&remap)
    }

    /// Arms an incremental compaction plan (no block is touched yet).
    /// Returns `false` when there is nothing to compact or a plan is
    /// already active.
    pub fn begin_compaction(&mut self) -> bool {
        self.codebook.begin_compaction()
    }

    /// Runs one bounded compaction step: rewrites at most `max_blocks`
    /// blocks of the store through the active plan's phase map, crossing
    /// the phase boundary (and finally completing the plan) when a phase's
    /// pass over the directory drains. A plan invalidated by concurrent
    /// mutations is re-planned from the current state first — every state
    /// the migration pauses in answers all queries identically, so this is
    /// merely restarting the walk, never a correctness event.
    pub fn compaction_tick(
        &mut self,
        store: &mut StructStore,
        max_blocks: usize,
    ) -> Result<CompactionProgress, StorageError> {
        let mut replanned = false;
        if self.codebook.compaction().is_some_and(|p| p.is_dirty()) {
            replanned = true;
            self.codebook.replan_compaction();
        }
        let Some(plan) = self.codebook.compaction() else {
            return Ok(CompactionProgress {
                phase: None,
                blocks_done: 0,
                finished: true,
                replanned,
            });
        };
        let nblocks = store.block_count();
        let phase = plan.phase();
        let cursor = plan.cursor() as usize;
        let end = (cursor + max_blocks.max(1)).min(nblocks);
        let mut blocks_done = 0;
        if cursor < end {
            let remap: Vec<u32> = (0..self.codebook.len() as u32)
                .map(|c| plan.map(c))
                .collect();
            let prev = plan.prev_code();
            let prev = store.remap_codes_range(cursor..end, &remap, prev)?;
            self.codebook.note_compaction_progress(end as u64, prev);
            blocks_done = end - cursor;
        }
        let finished = if end >= nblocks {
            match phase {
                CompactionPhase::Up => {
                    self.codebook.advance_compaction_phase();
                    false
                }
                CompactionPhase::Down => {
                    self.codebook.finish_compaction();
                    true
                }
            }
        } else {
            false
        };
        Ok(CompactionProgress {
            phase: (!finished).then_some(phase),
            blocks_done,
            finished,
            replanned,
        })
    }

    /// Remaining compaction work, in blocks still to rewrite (phase Up
    /// counts the pending Down pass too). `0` means no plan is active.
    pub fn compaction_backlog(&self, store: &StructStore) -> u64 {
        let Some(plan) = self.codebook.compaction() else {
            return 0;
        };
        let nblocks = store.block_count() as u64;
        let left = nblocks.saturating_sub(plan.cursor());
        match plan.phase() {
            CompactionPhase::Up => left + nblocks,
            CompactionPhase::Down => left,
        }
    }

    /// Extracts the logical DOL from the embedded representation (used by
    /// tests to prove logical/physical equivalence).
    pub fn to_logical(&self, store: &StructStore) -> Result<Dol, StorageError> {
        let mut transitions = Vec::new();
        let mut prev: Option<u32> = None;
        for pos in 0..store.total_nodes() {
            let code = store.code_at(pos)?;
            if prev != Some(code) {
                transitions.push((pos, code));
                prev = Some(code);
            }
        }
        Ok(Dol::from_parts(
            transitions,
            self.codebook.clone(),
            store.total_nodes(),
        ))
    }

    /// Size accounting of the embedded representation.
    pub fn stats(&self, store: &StructStore) -> Result<DolStats, StorageError> {
        let transitions = store.logical_transition_count()? as usize;
        Ok(DolStats {
            total_nodes: store.total_nodes(),
            subjects: self.codebook.live_subjects(),
            transitions,
            codebook_entries: self.codebook.len(),
            codebook_bytes: self.codebook.bytes(),
            embedded_code_bytes: transitions * self.codebook.code_bytes(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dol_acl::AccessibilityMap;
    use dol_storage::MemDisk;
    use dol_xml::{parse, NodeId};

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 64))
    }

    fn setup(max_rec: usize) -> (StructStore, EmbeddedDol, AccessibilityMap, Document) {
        let doc = parse("<a><b/><c/><d><e/><f/><g><h/><i/><j/></g></d><k/></a>").unwrap();
        let mut map = AccessibilityMap::new(2, doc.len());
        for p in 0..doc.len() as u32 {
            map.set(SubjectId(0), NodeId(p), true); // subject 0: everything
        }
        for p in 3..10 {
            map.set(SubjectId(1), NodeId(p), true); // subject 1: subtree of d
        }
        let (store, dol) = EmbeddedDol::build(
            pool(),
            StoreConfig {
                max_records_per_block: max_rec,
            },
            &doc,
            &map,
        )
        .unwrap();
        (store, dol, map, doc)
    }

    #[test]
    fn embedded_matches_ground_truth() {
        for max_rec in [300, 3] {
            let (store, dol, map, doc) = setup(max_rec);
            store.check_integrity().unwrap();
            for p in 0..doc.len() as u64 {
                for s in [SubjectId(0), SubjectId(1)] {
                    assert_eq!(
                        dol.accessible(&store, p, s).unwrap(),
                        map.accessible(s, NodeId(p as u32)),
                        "pos {p} subject {s} max_rec {max_rec}"
                    );
                }
            }
            // Logical extraction agrees with a direct logical build.
            let logical = dol.to_logical(&store).unwrap();
            logical.verify_against(&map).unwrap();
            assert_eq!(
                logical.transition_count() as u64,
                store.logical_transition_count().unwrap()
            );
        }
    }

    #[test]
    fn page_skip_test() {
        // Many tiny blocks; subject 1 only sees [3, 10), so blocks fully
        // outside are skippable without I/O.
        let (store, dol, _, _) = setup(2);
        let mut skippable = 0;
        for b in 0..store.block_count() {
            if dol.block_skippable(&store, b, SubjectId(1)) {
                skippable += 1;
            }
            // Subject 0 sees everything: nothing is skippable.
            assert!(!dol.block_skippable(&store, b, SubjectId(0)));
        }
        assert!(skippable >= 1, "expected skippable blocks");
    }

    /// The word-parallel skip mask must agree with the per-block scalar
    /// `block_skippable` for every block, subject, and block size.
    #[test]
    fn block_skip_mask_matches_scalar() {
        for max_rec in [300, 3, 2] {
            let (store, dol, _, _) = setup(max_rec);
            for s in [SubjectId(0), SubjectId(1)] {
                let col = dol.column(s);
                let mask = dol.block_skip_mask(&store, &col);
                for b in 0..store.block_count() {
                    assert_eq!(
                        mask[b >> 6] >> (b & 63) & 1 != 0,
                        dol.block_skippable(&store, b, s),
                        "block {b} subject {s} max_rec {max_rec}"
                    );
                }
                // No bits past the directory.
                if store.block_count() % 64 != 0 {
                    let last = mask.last().copied().unwrap_or(0);
                    assert_eq!(last >> (store.block_count() % 64), 0);
                }
            }
        }
    }

    #[test]
    fn set_node_and_subtree_updates() {
        for max_rec in [300, 3] {
            let (mut store, mut dol, map, doc) = setup(max_rec);
            let mut truth = map.clone();
            dol.set_node(&mut store, 2, SubjectId(1), true).unwrap();
            truth.set(SubjectId(1), NodeId(2), true);
            dol.set_subtree(&mut store, 6, 10, SubjectId(0), false)
                .unwrap();
            for p in 6..10 {
                truth.set(SubjectId(0), NodeId(p), false);
            }
            store.check_integrity().unwrap();
            for p in 0..doc.len() as u64 {
                for s in [SubjectId(0), SubjectId(1)] {
                    assert_eq!(
                        dol.accessible(&store, p, s).unwrap(),
                        truth.accessible(s, NodeId(p as u32)),
                        "pos {p} subject {s}"
                    );
                }
            }
        }
    }

    #[test]
    fn compact_subjects_preserves_semantics_and_shrinks() {
        for max_rec in [300, 3] {
            let (mut store, mut dol, map, doc) = setup(max_rec);
            // Removing subject 1 makes the "subtree of d" ACL redundant.
            dol.codebook_mut().remove_subject(SubjectId(1));
            let entries_before = dol.codebook().len();
            dol.compact_subjects(&mut store).unwrap();
            store.check_integrity().unwrap();
            assert!(dol.codebook().len() < entries_before);
            assert_eq!(dol.codebook().width(), 1);
            // Subject 0's view is unchanged.
            for p in 0..doc.len() as u64 {
                assert_eq!(
                    dol.accessible(&store, p, SubjectId(0)).unwrap(),
                    map.accessible(SubjectId(0), NodeId(p as u32)),
                    "pos {p} max_rec {max_rec}"
                );
            }
            // With one uniform subject the whole document is one run.
            assert_eq!(store.logical_transition_count().unwrap(), 1);
        }
    }

    #[test]
    fn subject_addition_without_touching_store() {
        let (store, mut dol, _, _) = setup(300);
        let io_before = store.pool().stats();
        let new = dol.codebook_mut().add_subject(Some(SubjectId(1)));
        let io_after = store.pool().stats();
        assert_eq!(io_before, io_after, "codebook ops must not touch pages");
        // New subject mirrors subject 1.
        assert!(dol.accessible(&store, 4, new).unwrap());
        assert!(!dol.accessible(&store, 1, new).unwrap());
    }

    #[test]
    fn column_cache_revalidates_on_codebook_mutation() {
        let (store, mut dol, _, doc) = setup(300);
        let col = dol.column(SubjectId(1));
        // Cache hit: same snapshot object.
        assert!(Arc::ptr_eq(&col, &dol.column(SubjectId(1))));
        // Different subject: recomputed.
        assert!(!Arc::ptr_eq(&col, &dol.column(SubjectId(0))));
        // The column agrees with the codebook for every code.
        for code in 0..dol.codebook().len() as u32 {
            assert_eq!(col.check_code(code), dol.codebook().bit(code, SubjectId(1)));
        }
        // A codebook mutation invalidates the snapshot.
        let s = dol.codebook_mut().add_subject(Some(SubjectId(1)));
        let col2 = dol.column(SubjectId(1));
        assert!(!Arc::ptr_eq(&col, &col2));
        for p in 0..doc.len() as u64 {
            assert_eq!(
                dol.accessible(&store, p, s).unwrap(),
                dol.accessible(&store, p, SubjectId(1)).unwrap(),
                "copied subject must mirror source at pos {p}"
            );
        }
    }

    #[test]
    fn accessibility_check_costs_no_extra_io() {
        let (store, dol, _, _) = setup(300);
        store.pool().reset_stats();
        // node_and_code: one logical read for both structure and code.
        let (_, code) = store.node_and_code(5).unwrap();
        let _ = dol.check_code(code, SubjectId(0));
        let s = store.pool().stats();
        assert_eq!(s.logical_reads, 1);
    }
}
