//! The logical DOL: transition list + codebook.
//!
//! This is the paper's Figure 1(c) object: a document-ordered list of
//! transition nodes, each carrying an access-control code, plus the codebook.
//! Because document positions are preorder ranks, a subtree is a contiguous
//! position range, so both node- and subtree-granularity accessibility
//! updates (§3.4) reduce to [`Dol::set_run`], whose transition-count growth
//! is bounded by **Proposition 1** (net at most +2).

use crate::codebook::Codebook;
use crate::stats::DolStats;
use dol_acl::{AccessOracle, BitVec, SubjectId};
use dol_xml::{Document, NodeId};

/// A logical Document Ordered Labeling.
#[derive(Debug, Clone)]
pub struct Dol {
    /// `(position, code)` of every transition node, ascending by position.
    /// The first entry is always position 0 (the root is a transition node).
    transitions: Vec<(u64, u32)>,
    codebook: Codebook,
    total: u64,
}

impl Dol {
    /// Builds a DOL for `doc` in a single document-order pass over `oracle`.
    pub fn build(doc: &Document, oracle: &impl AccessOracle) -> Self {
        Self::build_n(doc.len() as u64, oracle)
    }

    /// Builds a DOL over `total` document positions from `oracle`.
    pub fn build_n(total: u64, oracle: &impl AccessOracle) -> Self {
        let mut codebook = Codebook::new(oracle.subject_count());
        let mut transitions = Vec::new();
        let mut row = BitVec::zeros(0);
        let mut prev: Option<u32> = None;
        for pos in 0..total {
            oracle.acl_row(NodeId(pos as u32), &mut row);
            let code = codebook.intern(&row);
            if prev != Some(code) {
                transitions.push((pos, code));
                prev = Some(code);
            }
        }
        Self {
            transitions,
            codebook,
            total,
        }
    }

    /// Builds a **single-subject** DOL from an accessibility column (one bit
    /// per document position) — the Figure 1(a) construction.
    pub fn build_single(column: &BitVec) -> Self {
        struct ColumnOracle<'a>(&'a BitVec);
        impl AccessOracle for ColumnOracle<'_> {
            fn subject_count(&self) -> usize {
                1
            }
            fn acl_row(&self, node: NodeId, out: &mut BitVec) {
                out.resize(1);
                out.set(0, self.0.get(node.index()));
            }
        }
        Self::build_n(column.len() as u64, &ColumnOracle(column))
    }

    /// Builds a DOL directly from a document-order **row-change stream**
    /// (position 0 first, minimal changes), e.g. the output of
    /// [`dol_acl::CascadeRules::row_stream`]. This is how multi-thousand
    /// subject DOLs are built without a materialized matrix.
    pub fn from_row_stream(total: u64, subjects: usize, changes: &[(u64, BitVec)]) -> Self {
        let mut codebook = Codebook::new(subjects);
        let mut transitions = Vec::with_capacity(changes.len());
        let mut prev: Option<u32> = None;
        for (pos, row) in changes {
            let code = codebook.intern(row);
            if prev != Some(code) {
                transitions.push((*pos, code));
                prev = Some(code);
            }
        }
        Self::from_parts(transitions, codebook, total)
    }

    /// Assembles a DOL from parts (used when loading an embedded DOL).
    pub fn from_parts(transitions: Vec<(u64, u32)>, codebook: Codebook, total: u64) -> Self {
        let dol = Self {
            transitions,
            codebook,
            total,
        };
        debug_assert_eq!(dol.check_invariants(), Ok(()));
        dol
    }

    /// Number of document positions covered.
    pub fn total_nodes(&self) -> u64 {
        self.total
    }

    /// Number of transition nodes — the paper's primary size metric.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// The transition list, ascending by position.
    pub fn transitions(&self) -> &[(u64, u32)] {
        &self.transitions
    }

    /// The codebook.
    pub fn codebook(&self) -> &Codebook {
        &self.codebook
    }

    /// Mutable codebook access (subject add/remove operate here only).
    pub fn codebook_mut(&mut self) -> &mut Codebook {
        &mut self.codebook
    }

    /// The access-control code in effect at `pos`.
    pub fn code_at(&self, pos: u64) -> u32 {
        debug_assert!(pos < self.total);
        let i = self.transitions.partition_point(|&(p, _)| p <= pos);
        self.transitions[i - 1].1
    }

    /// Whether `subject` may access the node at `pos`.
    pub fn accessible(&self, pos: u64, subject: SubjectId) -> bool {
        self.codebook.bit(self.code_at(pos), subject)
    }

    /// Decodes `subject`'s accessibility column (see
    /// [`Codebook::column`]) for repeated lookups via
    /// [`accessible_with`](Dol::accessible_with).
    pub fn column(&self, subject: SubjectId) -> crate::column::SubjectColumn {
        self.codebook.column(subject)
    }

    /// [`accessible`](Dol::accessible) against an already-decoded column —
    /// avoids the per-lookup codebook entry indirection on scan-heavy paths.
    #[inline]
    pub fn accessible_with(&self, pos: u64, column: &crate::column::SubjectColumn) -> bool {
        column.check_code(self.code_at(pos))
    }

    /// Expands an already-decoded `column` into a per-**position**
    /// [`AccessBitmap`](crate::column::AccessBitmap): accessibility runs are
    /// filled 64 positions per word op, so scan-heavy consumers replace the
    /// per-position `code_at` binary search with one shift-and-mask.
    pub fn access_bitmap(
        &self,
        column: &crate::column::SubjectColumn,
    ) -> crate::column::AccessBitmap {
        crate::column::AccessBitmap::from_runs(self.total, self.runs(), column)
    }

    /// Iterates maximal runs of equal code as `(start, end, code)`.
    pub fn runs(&self) -> impl Iterator<Item = (u64, u64, u32)> + '_ {
        self.transitions
            .iter()
            .enumerate()
            .map(move |(i, &(p, c))| {
                let end = self
                    .transitions
                    .get(i + 1)
                    .map(|&(q, _)| q)
                    .unwrap_or(self.total);
                (p, end, c)
            })
    }

    /// Size accounting for the experiments.
    pub fn stats(&self) -> DolStats {
        DolStats {
            total_nodes: self.total,
            subjects: self.codebook.live_subjects(),
            transitions: self.transitions.len(),
            codebook_entries: self.codebook.len(),
            codebook_bytes: self.codebook.bytes(),
            embedded_code_bytes: self.transitions.len() * self.codebook.code_bytes(),
        }
    }

    // ------------------------------------------------------------------
    // Accessibility updates (§3.4)
    // ------------------------------------------------------------------

    /// Sets the ACL of every node in `[start, end)` to `acl`. This covers
    /// both the single-node update (`end = start + 1`) and the subtree
    /// update (the subtree of `n` is `[n, n + size)`).
    ///
    /// Proposition 1: the transition count grows by at most 2.
    pub fn set_run(&mut self, start: u64, end: u64, acl: &BitVec) {
        let code = self.codebook.intern(acl);
        self.set_run_code(start, end, code);
    }

    /// Like [`set_run`](Dol::set_run) with an already-interned code.
    pub fn set_run_code(&mut self, start: u64, end: u64, code: u32) {
        assert!(start < end && end <= self.total, "bad run [{start},{end})");
        let before = self.transitions.len();
        let pred_code = (start > 0).then(|| self.code_at(start - 1));
        let end_code = (end < self.total).then(|| self.code_at(end));
        // Drop transitions inside the run.
        let lo = self.transitions.partition_point(|&(p, _)| p < start);
        let hi = self.transitions.partition_point(|&(p, _)| p < end);
        let mut splice: Vec<(u64, u32)> = Vec::with_capacity(2);
        if pred_code != Some(code) {
            splice.push((start, code));
        }
        if let Some(ec) = end_code {
            // The run's successor keeps code `ec`; it is a transition iff it
            // differs from the run's code. A pre-existing entry at `end`
            // falls in `hi..` and must be dropped if now redundant.
            let had_entry = self.transitions.get(hi).is_some_and(|&(p, _)| p == end);
            let hi_end = if had_entry { hi + 1 } else { hi };
            if ec != code {
                splice.push((end, ec));
            }
            self.transitions.splice(lo..hi_end, splice);
        } else {
            self.transitions.splice(lo..hi, splice);
        }
        debug_assert_eq!(self.check_invariants(), Ok(()));
        debug_assert!(
            self.transitions.len() <= before + 2,
            "Proposition 1 violated"
        );
    }

    /// Changes one subject's bit on a single node, re-interning the node's
    /// ACL (the §3.4 single-node algorithm).
    ///
    /// The edit targets the subject's **direct** physical column (lazily
    /// allocated in a group-factored codebook): rights the subject derives
    /// from group membership are unaffected, and keep applying live.
    pub fn set_node(&mut self, pos: u64, subject: SubjectId, allow: bool) {
        let col = self.codebook.ensure_direct_column(subject) as usize;
        let mut acl = self.codebook.entry_padded(self.code_at(pos));
        if acl.get(col) == allow {
            return; // nearest preceding transition already agrees — stop.
        }
        acl.set(col, allow);
        self.set_run(pos, pos + 1, &acl);
    }

    /// Changes one subject's bit over `[start, end)` (subtree accessibility
    /// update), preserving other subjects' rights: every code run inside the
    /// range is remapped with only `subject`'s bit changed and adjacent runs
    /// that become equal merge. Transitions never increase inside the range;
    /// the boundaries contribute Proposition 1's +2.
    pub fn set_subtree(&mut self, start: u64, end: u64, subject: SubjectId, allow: bool) {
        assert!(start < end && end <= self.total, "bad run [{start},{end})");
        let before = self.transitions.len();
        let pred_code = (start > 0).then(|| self.code_at(start - 1));
        let end_code = (end < self.total).then(|| self.code_at(end));
        // Collect the runs overlapping the range, clamped at `start`.
        let lo = self.transitions.partition_point(|&(p, _)| p < start);
        let hi = self.transitions.partition_point(|&(p, _)| p < end);
        let mut old_runs: Vec<(u64, u32)> = Vec::with_capacity(hi - lo + 1);
        old_runs.push((start, self.code_at(start)));
        for &(p, c) in &self.transitions[lo..hi] {
            if p > start {
                old_runs.push((p, c));
            }
        }
        // Remap through the codebook, dropping now-redundant transitions.
        let col = self.codebook.ensure_direct_column(subject) as usize;
        let mut splice: Vec<(u64, u32)> = Vec::with_capacity(old_runs.len() + 1);
        let mut prev = pred_code;
        for (p, c) in old_runs {
            let mut acl = self.codebook.entry_padded(c);
            acl.set(col, allow);
            let code = self.codebook.intern(&acl);
            if prev != Some(code) {
                splice.push((p, code));
                prev = code.into();
            }
        }
        // Boundary at `end`, as in set_run_code.
        if let Some(ec) = end_code {
            let had_entry = self.transitions.get(hi).is_some_and(|&(p, _)| p == end);
            let hi_end = if had_entry { hi + 1 } else { hi };
            if prev != Some(ec) {
                splice.push((end, ec));
            }
            self.transitions.splice(lo..hi_end, splice);
        } else {
            self.transitions.splice(lo..hi, splice);
        }
        debug_assert_eq!(self.check_invariants(), Ok(()));
        debug_assert!(self.transitions.len() <= before + 2, "Proposition 1");
    }

    // ------------------------------------------------------------------
    // Structural updates (§3.4)
    // ------------------------------------------------------------------

    /// Removes positions `[start, end)` (a deleted subtree) and shifts later
    /// transitions down.
    pub fn delete_range(&mut self, start: u64, end: u64) {
        assert!(start > 0 && start < end && end <= self.total);
        let before = self.transitions.len();
        let k = end - start;
        let pred_code = self.code_at(start - 1);
        let end_code = (end < self.total).then(|| self.code_at(end));
        let lo = self.transitions.partition_point(|&(p, _)| p < start);
        let hi = self.transitions.partition_point(|&(p, _)| p < end);
        self.transitions.drain(lo..hi);
        for t in &mut self.transitions[lo..] {
            t.0 -= k;
        }
        self.total -= k;
        // Boundary: the old `end` node now sits at `start`.
        if let Some(ec) = end_code {
            let has_entry = self.transitions.get(lo).is_some_and(|&(p, _)| p == start);
            if ec != pred_code && !has_entry {
                self.transitions.insert(lo, (start, ec));
            } else if ec == pred_code && has_entry {
                self.transitions.remove(lo);
            }
        }
        debug_assert_eq!(self.check_invariants(), Ok(()));
        debug_assert!(self.transitions.len() <= before + 2, "Proposition 1");
    }

    /// Inserts another DOL (an encoded subtree with its own access controls,
    /// per §3.4 "we assume the nodes inserted have access controls already")
    /// so that its first node lands at position `at`.
    pub fn insert_dol(&mut self, at: u64, sub: &Dol) {
        assert!(at > 0 && at <= self.total, "insert position out of range");
        assert_eq!(
            sub.codebook.width(),
            self.codebook.width(),
            "subject universes must match"
        );
        let before = self.transitions.len() + sub.transitions.len();
        let k = sub.total;
        let pred_code = self.code_at(at - 1);
        let next_code = (at < self.total).then(|| self.code_at(at));
        let lo = self.transitions.partition_point(|&(p, _)| p < at);
        for t in &mut self.transitions[lo..] {
            t.0 += k;
        }
        self.total += k;
        // Translate the subtree's codes into this codebook and splice.
        let mut insert: Vec<(u64, u32)> = Vec::with_capacity(sub.transitions.len() + 1);
        let mut prev = pred_code;
        let mut last_code = pred_code;
        for (s, _end, c) in sub.runs() {
            let code = self.codebook.intern(&sub.codebook.entry_padded(c));
            if code != prev {
                insert.push((at + s, code));
                prev = code;
            }
            last_code = code;
        }
        // Boundary: the old `at` node now sits at `at + k`.
        if let Some(nc) = next_code {
            let has_entry = self.transitions.get(lo).is_some_and(|&(p, _)| p == at + k);
            if nc != last_code && !has_entry {
                insert.push((at + k, nc));
            } else if nc == last_code && has_entry {
                self.transitions.remove(lo);
            }
        }
        self.transitions.splice(lo..lo, insert);
        debug_assert_eq!(self.check_invariants(), Ok(()));
        debug_assert!(self.transitions.len() <= before + 2, "Proposition 1");
    }

    /// Verifies the DOL invariants: first transition at position 0,
    /// strictly ascending positions in range, and no two consecutive
    /// transitions with the same code.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.total == 0 {
            return if self.transitions.is_empty() {
                Ok(())
            } else {
                Err("transitions on an empty document".into())
            };
        }
        if self.transitions.first().map(|&(p, _)| p) != Some(0) {
            return Err("first transition must be at position 0 (the root)".into());
        }
        for w in self.transitions.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(format!("positions out of order at {}", w[1].0));
            }
            if w[0].1 == w[1].1 {
                return Err(format!("redundant transition at {}", w[1].0));
            }
        }
        if let Some(&(p, _)) = self.transitions.last() {
            if p >= self.total {
                return Err("transition past end of document".into());
            }
        }
        Ok(())
    }

    /// Checks this DOL against a ground-truth oracle (test helper).
    pub fn verify_against(&self, oracle: &impl AccessOracle) -> Result<(), String> {
        let mut row = BitVec::zeros(0);
        for pos in 0..self.total {
            oracle.acl_row(NodeId(pos as u32), &mut row);
            for s in 0..row.len() {
                let expect = row.get(s);
                let got = self.accessible(pos, SubjectId(s as u32));
                if got != expect {
                    return Err(format!("pos {pos} subject {s}: dol={got} truth={expect}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dol_acl::AccessibilityMap;
    use dol_xml::parse;

    /// Figure 1(a): single subject, shaded = accessible.
    #[test]
    fn single_subject_transitions() {
        // Accessibility by position: 1,1,0,0,1,1,1,0,0,1 → transitions at
        // 0(+), 2(−), 4(+), 7(−), 9(+) = 5.
        let col = BitVec::from_fn(10, |i| matches!(i, 0 | 1 | 4 | 5 | 6 | 9));
        let dol = Dol::build_single(&col);
        assert_eq!(dol.transition_count(), 5);
        dol.check_invariants().unwrap();
        for i in 0..10 {
            assert_eq!(dol.accessible(i as u64, SubjectId(0)), col.get(i));
        }
        assert!(dol.codebook().len() <= 2);
    }

    fn two_user_map() -> (dol_xml::Document, AccessibilityMap) {
        let doc = parse("<a><b/><c/><d/><e><f/><g/></e></a>").unwrap();
        let mut map = AccessibilityMap::new(2, doc.len());
        // User 0 sees everything except c; user 1 sees only the subtree of e.
        for p in 0..doc.len() {
            if p != 2 {
                map.set(SubjectId(0), NodeId(p as u32), true);
            }
        }
        for p in 4..7 {
            map.set(SubjectId(1), NodeId(p), true);
        }
        (doc, map)
    }

    #[test]
    fn multi_subject_codebook_compression() {
        let (doc, map) = two_user_map();
        let dol = Dol::build(&doc, &map);
        dol.verify_against(&map).unwrap();
        // ACLs used: 10 (a,b,d), 00 (c), 11 (e,f,g) → 3 codebook entries,
        // transitions at 0, 2, 3, 4.
        assert_eq!(dol.codebook().len(), 3);
        assert_eq!(dol.transition_count(), 4);
    }

    #[test]
    fn stats_accounting() {
        let (doc, map) = two_user_map();
        let dol = Dol::build(&doc, &map);
        let s = dol.stats();
        assert_eq!(s.transitions, 4);
        assert_eq!(s.codebook_entries, 3);
        assert_eq!(s.subjects, 2);
        assert_eq!(s.codebook_bytes, 3); // 2 subjects → 1 byte per entry
        assert_eq!(s.embedded_code_bytes, 4); // ≤256 entries → 1-byte codes
    }

    #[test]
    fn set_node_updates() {
        let (doc, map) = two_user_map();
        let mut dol = Dol::build(&doc, &map);
        let mut map2 = map.clone();
        // Grant user 1 access to node 2 (currently 00).
        dol.set_node(2, SubjectId(1), true);
        map2.set(SubjectId(1), NodeId(2), true);
        dol.verify_against(&map2).unwrap();
        // No-op update is a no-op.
        let t = dol.transition_count();
        dol.set_node(2, SubjectId(1), true);
        assert_eq!(dol.transition_count(), t);
    }

    #[test]
    fn set_subtree_collapses_runs() {
        let (doc, map) = two_user_map();
        let mut dol = Dol::build(&doc, &map);
        // Deny user 0 on the subtree of e = [4, 7). User 1 keeps access
        // as of the run start.
        dol.set_subtree(4, 7, SubjectId(0), false);
        for p in 4..7 {
            assert!(!dol.accessible(p, SubjectId(0)));
            assert!(dol.accessible(p, SubjectId(1)));
        }
        dol.check_invariants().unwrap();
    }

    #[test]
    fn proposition_1_on_random_runs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 64u64;
        let col = BitVec::from_fn(n as usize, |i| i % 3 == 0);
        let mut dol = Dol::build_single(&col);
        for _ in 0..200 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(a + 1..=n);
            let acl = BitVec::from_fn(1, |_| rng.gen_bool(0.5));
            let before = dol.transition_count();
            dol.set_run(a, b, &acl);
            assert!(dol.transition_count() <= before + 2, "Proposition 1");
            dol.check_invariants().unwrap();
        }
    }

    #[test]
    fn delete_range_shifts_and_fixes_boundary() {
        let col = BitVec::from_fn(10, |i| (4..8).contains(&i));
        let mut dol = Dol::build_single(&col);
        assert_eq!(dol.transition_count(), 3); // 0−, 4+, 8−
                                               // Delete [4, 8): all nodes denied again → single run.
        dol.delete_range(4, 8);
        assert_eq!(dol.total_nodes(), 6);
        assert_eq!(dol.transition_count(), 1);
        for p in 0..6 {
            assert!(!dol.accessible(p, SubjectId(0)));
        }
    }

    #[test]
    fn delete_partial_run() {
        let col = BitVec::from_fn(10, |i| (4..8).contains(&i));
        let mut dol = Dol::build_single(&col);
        // Delete [2, 6): keeps accessible nodes 6,7 which move to 2,3.
        dol.delete_range(2, 6);
        assert_eq!(dol.total_nodes(), 6);
        let acc: Vec<bool> = (0..6).map(|p| dol.accessible(p, SubjectId(0))).collect();
        assert_eq!(acc, vec![false, false, true, true, false, false]);
        dol.check_invariants().unwrap();
    }

    #[test]
    fn insert_dol_translates_codes() {
        let base = BitVec::from_fn(6, |_| false);
        let mut dol = Dol::build_single(&base);
        let sub = Dol::build_single(&BitVec::from_fn(3, |i| i != 1));
        dol.insert_dol(2, &sub);
        assert_eq!(dol.total_nodes(), 9);
        let acc: Vec<bool> = (0..9).map(|p| dol.accessible(p, SubjectId(0))).collect();
        assert_eq!(
            acc,
            vec![false, false, true, false, true, false, false, false, false]
        );
        dol.check_invariants().unwrap();
    }

    #[test]
    fn insert_at_end() {
        let mut dol = Dol::build_single(&BitVec::from_fn(4, |_| true));
        let sub = Dol::build_single(&BitVec::from_fn(2, |_| true));
        dol.insert_dol(4, &sub);
        assert_eq!(dol.total_nodes(), 6);
        assert_eq!(dol.transition_count(), 1);
    }

    #[test]
    fn worst_case_every_node_transition() {
        // Alternating accessibility: every node is a transition node — the
        // §2.1 worst-case density bound.
        let col = BitVec::from_fn(32, |i| i % 2 == 0);
        let dol = Dol::build_single(&col);
        assert_eq!(dol.transition_count(), 32);
    }
}
