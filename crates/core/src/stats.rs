//! Size accounting used by the storage experiments (§5.1).

/// Storage statistics of a DOL.
///
/// The paper's accounting: the overall cost is the codebook (one bit per
/// live subject per distinct ACL) plus one small access-control code per
/// transition node, the code width being just wide enough to index the
/// codebook. CAM comparisons additionally charge CAM per-label pointers —
/// see `dol-cam`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DolStats {
    /// Document positions covered.
    pub total_nodes: u64,
    /// Live subjects (codebook columns).
    pub subjects: usize,
    /// Transition nodes.
    pub transitions: usize,
    /// Distinct ACL entries in the codebook.
    pub codebook_entries: usize,
    /// Bytes for the codebook.
    pub codebook_bytes: usize,
    /// Bytes for the embedded per-transition codes.
    pub embedded_code_bytes: usize,
}

impl DolStats {
    /// Total bytes: codebook plus embedded codes.
    pub fn total_bytes(&self) -> usize {
        self.codebook_bytes + self.embedded_code_bytes
    }

    /// Transition density: transitions per node.
    pub fn transition_density(&self) -> f64 {
        if self.total_nodes == 0 {
            return 0.0;
        }
        self.transitions as f64 / self.total_nodes as f64
    }
}

impl std::fmt::Display for DolStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nodes, {} subjects: {} transitions ({:.4}/node), {} codebook entries, {} B codebook + {} B codes = {} B",
            self.total_nodes,
            self.subjects,
            self.transitions,
            self.transition_density(),
            self.codebook_entries,
            self.codebook_bytes,
            self.embedded_code_bytes,
            self.total_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_density() {
        let s = DolStats {
            total_nodes: 1000,
            subjects: 16,
            transitions: 10,
            codebook_entries: 4,
            codebook_bytes: 8,
            embedded_code_bytes: 10,
        };
        assert_eq!(s.total_bytes(), 18);
        assert!((s.transition_density() - 0.01).abs() < 1e-12);
        let text = s.to_string();
        assert!(text.contains("10 transitions"));
    }
}
