//! Decoded per-subject codebook columns — the fast path for accessibility.
//!
//! [`Codebook::bit`] resolves a `(code, subject)` pair through the interned
//! ACL entry for `code`: an index into `entries`, a second index into the
//! entry's words, plus the removed-column bookkeeping. Query evaluation asks
//! that question millions of times **for one fixed subject**, so the column
//! for that subject can be decoded once into a packed bitset indexed by code.
//! [`SubjectColumn::check_code`] is then a single shift-and-mask over one
//! contiguous word array — no entry indirection, no hashing, and trivially
//! shareable across worker threads because it is immutable.
//!
//! Columns are **snapshots**. Every codebook mutation (interning a new entry,
//! adding/removing a subject, compaction) bumps the codebook's version
//! stamp; a column remembers the version and subject it was decoded from, so
//! caches can revalidate with two integer compares (see
//! [`SubjectColumn::matches`]).

use crate::codebook::Codebook;
use dol_acl::SubjectId;

/// One subject's accessibility bit for every codebook entry, packed into
/// `u64` words and indexed by access-control code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubjectColumn {
    subject: SubjectId,
    version: u64,
    codes: usize,
    words: Vec<u64>,
}

impl SubjectColumn {
    /// Decodes `subject`'s column from `codebook`.
    ///
    /// In a group-factored codebook this is where derivation happens: the
    /// subject's transitive closure is resolved to its physical columns
    /// once, and the column is the OR of those columns over every entry —
    /// after which queries pay exactly the flat-codebook cost.
    pub fn decode(codebook: &Codebook, subject: SubjectId) -> Self {
        let codes = codebook.len();
        let mut words = vec![0u64; codes.div_ceil(64)];
        let cols = codebook.subject_physical_columns(subject);
        for (code, entry) in codebook.iter() {
            if cols.iter().any(|&c| entry.get_or(c as usize)) {
                words[(code >> 6) as usize] |= 1u64 << (code & 63);
            }
        }
        Self {
            subject,
            version: codebook.version(),
            codes,
            words,
        }
    }

    /// Whether `subject` is granted by the ACL behind `code` — one shift and
    /// mask, equivalent to [`Codebook::bit`] at the column's snapshot.
    /// Unknown codes (interned after the snapshot) read as deny.
    #[inline]
    pub fn check_code(&self, code: u32) -> bool {
        let w = self.words.get((code >> 6) as usize).copied().unwrap_or(0);
        (w >> (code & 63)) & 1 != 0
    }

    /// The subject this column was decoded for.
    pub fn subject(&self) -> SubjectId {
        self.subject
    }

    /// The codebook version stamp at decode time.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of codes covered by the snapshot.
    pub fn len(&self) -> usize {
        self.codes
    }

    /// Whether the snapshot covers no code.
    pub fn is_empty(&self) -> bool {
        self.codes == 0
    }

    /// Whether this column is current for `(codebook, subject)` — the cache
    /// revalidation test: same subject, same codebook version.
    #[inline]
    pub fn matches(&self, codebook: &Codebook, subject: SubjectId) -> bool {
        self.subject == subject && self.version == codebook.version()
    }

    /// The packed accessibility words (bit `c & 63` of word `c >> 6` is the
    /// grant bit of code `c`).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The 64-wide gather kernel: classifies up to 64 codes in one call,
    /// returning a word whose bit `i` is `check_code(codes[i])`. Bits at and
    /// beyond `codes.len()` are 0. Callers batching document-order positions
    /// (block headers, per-slot codes) get one branch-free result word per
    /// 64 inputs instead of 64 predicted branches.
    pub fn check_codes64(&self, codes: &[u32]) -> u64 {
        debug_assert!(codes.len() <= 64);
        let mut out = 0u64;
        for (i, &code) in codes.iter().enumerate() {
            let w = self.words.get((code >> 6) as usize).copied().unwrap_or(0);
            out |= ((w >> (code & 63)) & 1) << i;
        }
        out
    }
}

/// A packed per-*position* accessibility bitmap: bit `p & 63` of word
/// `p >> 6` says whether the document position `p` is accessible to the
/// subject the bitmap was expanded for.
///
/// Where [`SubjectColumn`] is indexed by access-control *code*, an
/// `AccessBitmap` is indexed by document *position* — the word-parallel form
/// scan-heavy consumers (secure stream filtering, in-block slot
/// classification) test 64 document-order positions per word op. It is built
/// from code **runs** with whole-word fills, so construction is
/// `O(positions / 64 + transitions)`, never a per-position branch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessBitmap {
    len: u64,
    words: Vec<u64>,
}

impl AccessBitmap {
    /// An all-deny bitmap over `len` positions.
    pub fn new(len: u64) -> Self {
        Self {
            len,
            words: vec![0u64; (len as usize).div_ceil(64)],
        }
    }

    /// Expands `(start, end, code)` runs through `column` into a positional
    /// bitmap of `len` positions. Runs outside `[0, len)` are clamped;
    /// accessible runs are filled word-parallel.
    pub fn from_runs(
        len: u64,
        runs: impl Iterator<Item = (u64, u64, u32)>,
        column: &SubjectColumn,
    ) -> Self {
        let mut bm = Self::new(len);
        for (start, end, code) in runs {
            if column.check_code(code) {
                bm.set_range(start.min(len), end.min(len));
            }
        }
        bm
    }

    /// Scalar reference construction — one `check_code` per position, no
    /// word fills. Kept (not `cfg(test)`) so differential tests in other
    /// crates can pit the word-parallel kernel against it.
    pub fn from_codes_scalar(codes: impl Iterator<Item = u32>, column: &SubjectColumn) -> Self {
        let codes: Vec<u32> = codes.collect();
        let mut bm = Self::new(codes.len() as u64);
        for (p, &code) in codes.iter().enumerate() {
            if column.check_code(code) {
                bm.words[p >> 6] |= 1u64 << (p & 63);
            }
        }
        bm
    }

    /// Grants every position in `[start, end)`, filling whole 64-bit words
    /// where possible.
    pub fn set_range(&mut self, start: u64, end: u64) {
        debug_assert!(start <= end && end <= self.len);
        if start >= end {
            return;
        }
        let (first_w, last_w) = ((start >> 6) as usize, ((end - 1) >> 6) as usize);
        let head = !0u64 << (start & 63);
        let tail = !0u64 >> (63 - ((end - 1) & 63));
        if first_w == last_w {
            self.words[first_w] |= head & tail;
            return;
        }
        self.words[first_w] |= head;
        for w in &mut self.words[first_w + 1..last_w] {
            *w = !0;
        }
        self.words[last_w] |= tail;
    }

    /// Whether position `pos` is accessible.
    #[inline]
    pub fn get(&self, pos: u64) -> bool {
        debug_assert!(pos < self.len);
        (self.words[(pos >> 6) as usize] >> (pos & 63)) & 1 != 0
    }

    /// The raw word covering positions `[i * 64, i * 64 + 64)`.
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        self.words.get(i).copied().unwrap_or(0)
    }

    /// Number of positions covered.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the bitmap covers no position.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Accessible positions (population count over the words).
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dol_acl::BitVec;

    fn acl(bits: &str) -> BitVec {
        BitVec::from_fn(bits.len(), |i| bits.as_bytes()[i] == b'1')
    }

    /// Exhaustive equivalence: `column.check_code(c) == codebook.bit(c, s)`
    /// for every code and subject, including across add/remove/compact.
    #[test]
    fn column_equals_codebook_bit_through_mutations() {
        let mut cb = Codebook::new(3);
        for i in 0..70u32 {
            // >64 entries exercises the multi-word path.
            cb.intern(&BitVec::from_fn(3, |s| {
                (i + s as u32).is_multiple_of(s as u32 + 2)
            }));
        }
        let check_all = |cb: &Codebook| {
            for s in 0..cb.width() as u32 {
                let col = SubjectColumn::decode(cb, SubjectId(s));
                assert!(col.matches(cb, SubjectId(s)));
                for code in 0..cb.len() as u32 {
                    assert_eq!(
                        col.check_code(code),
                        cb.bit(code, SubjectId(s)),
                        "code {code} subject {s}"
                    );
                }
            }
        };
        check_all(&cb);

        let old = SubjectColumn::decode(&cb, SubjectId(0));
        let s3 = cb.add_subject(Some(SubjectId(1)));
        assert!(
            !old.matches(&cb, SubjectId(0)),
            "add_subject must invalidate"
        );
        check_all(&cb);

        cb.add_subject_union(&[SubjectId(0), s3]);
        check_all(&cb);

        let old = SubjectColumn::decode(&cb, SubjectId(1));
        cb.remove_subject(SubjectId(1));
        assert!(
            !old.matches(&cb, SubjectId(1)),
            "remove_subject must invalidate"
        );
        check_all(&cb);

        let old = SubjectColumn::decode(&cb, SubjectId(0));
        cb.compact();
        assert!(!old.matches(&cb, SubjectId(0)), "compact must invalidate");
        check_all(&cb);
    }

    #[test]
    fn interning_new_entry_invalidates_but_duplicate_does_not() {
        let mut cb = Codebook::new(2);
        cb.intern(&acl("10"));
        let col = SubjectColumn::decode(&cb, SubjectId(0));
        cb.intern(&acl("10")); // already interned: no new entry
        assert!(col.matches(&cb, SubjectId(0)));
        cb.intern(&acl("01")); // new entry: snapshot is stale
        assert!(!col.matches(&cb, SubjectId(0)));
        // The stale column still answers its own snapshot correctly and
        // denies the unseen code.
        assert!(col.check_code(0));
        assert!(!col.check_code(1));
        assert!(!col.check_code(999));
    }

    /// `check_codes64` must agree bit-for-bit with 64 scalar `check_code`
    /// calls, including out-of-range codes (deny) and short batches.
    #[test]
    fn check_codes64_matches_scalar() {
        let mut cb = Codebook::new(2);
        for i in 0..70u32 {
            cb.intern(&BitVec::from_fn(2, |s| {
                (i + s as u32).is_multiple_of(s as u32 + 2)
            }));
        }
        let col = SubjectColumn::decode(&cb, SubjectId(1));
        for len in [0usize, 1, 7, 63, 64] {
            let codes: Vec<u32> = (0..len as u32).map(|i| i * 3 % 80).collect();
            let word = col.check_codes64(&codes);
            for (i, &c) in codes.iter().enumerate() {
                assert_eq!((word >> i) & 1 != 0, col.check_code(c), "len {len} bit {i}");
            }
            if len < 64 {
                assert_eq!(word >> len, 0, "bits past the batch must be zero");
            }
        }
    }

    /// Word-filled run expansion ≡ the scalar per-position reference, over
    /// runs that straddle word boundaries in every alignment.
    #[test]
    fn access_bitmap_from_runs_matches_scalar() {
        let mut cb = Codebook::new(1);
        let allow = cb.intern(&acl("1"));
        let deny = cb.intern(&acl("0"));
        let col = SubjectColumn::decode(&cb, SubjectId(0));
        // Runs with boundaries at 0, mid-word, exactly 64, and the tail.
        let runs = [
            (0u64, 3u64, allow),
            (3, 64, deny),
            (64, 65, allow),
            (65, 130, deny),
            (130, 200, allow),
        ];
        let len = 200u64;
        let bm = AccessBitmap::from_runs(len, runs.iter().copied(), &col);
        let codes = (0..len).map(|p| {
            runs.iter()
                .find(|&&(s, e, _)| (s..e).contains(&p))
                .map(|&(_, _, c)| c)
                .unwrap_or(deny)
        });
        let scalar = AccessBitmap::from_codes_scalar(codes, &col);
        assert_eq!(bm, scalar);
        assert_eq!(bm.count_ones(), 3 + 1 + 70);
        assert!(bm.get(0) && !bm.get(3) && bm.get(64) && !bm.get(65));
        assert_eq!(bm.word(4), 0, "words past the data read as deny");
    }

    #[test]
    fn set_range_word_fill_alignments() {
        // Every (start, end) pair over a 3-word bitmap, against a scalar loop.
        let len = 150u64;
        for start in (0..len).step_by(7) {
            for end in (start..=len).step_by(13) {
                let mut bm = AccessBitmap::new(len);
                bm.set_range(start, end);
                for p in 0..len {
                    assert_eq!(
                        bm.get(p),
                        (start..end).contains(&p),
                        "[{start},{end}) @ {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_codebook_column() {
        let cb = Codebook::new(4);
        let col = SubjectColumn::decode(&cb, SubjectId(2));
        assert!(col.is_empty());
        assert_eq!(col.len(), 0);
        assert!(!col.check_code(0));
    }
}
