//! Decoded per-subject codebook columns — the fast path for accessibility.
//!
//! [`Codebook::bit`] resolves a `(code, subject)` pair through the interned
//! ACL entry for `code`: an index into `entries`, a second index into the
//! entry's words, plus the removed-column bookkeeping. Query evaluation asks
//! that question millions of times **for one fixed subject**, so the column
//! for that subject can be decoded once into a packed bitset indexed by code.
//! [`SubjectColumn::check_code`] is then a single shift-and-mask over one
//! contiguous word array — no entry indirection, no hashing, and trivially
//! shareable across worker threads because it is immutable.
//!
//! Columns are **snapshots**. Every codebook mutation (interning a new entry,
//! adding/removing a subject, compaction) bumps the codebook's version
//! stamp; a column remembers the version and subject it was decoded from, so
//! caches can revalidate with two integer compares (see
//! [`SubjectColumn::matches`]).

use crate::codebook::Codebook;
use dol_acl::SubjectId;

/// One subject's accessibility bit for every codebook entry, packed into
/// `u64` words and indexed by access-control code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubjectColumn {
    subject: SubjectId,
    version: u64,
    codes: usize,
    words: Vec<u64>,
}

impl SubjectColumn {
    /// Decodes `subject`'s column from `codebook`.
    pub fn decode(codebook: &Codebook, subject: SubjectId) -> Self {
        let codes = codebook.len();
        let mut words = vec![0u64; codes.div_ceil(64)];
        for (code, entry) in codebook.iter() {
            if entry.get(subject.index()) {
                words[(code >> 6) as usize] |= 1u64 << (code & 63);
            }
        }
        Self {
            subject,
            version: codebook.version(),
            codes,
            words,
        }
    }

    /// Whether `subject` is granted by the ACL behind `code` — one shift and
    /// mask, equivalent to [`Codebook::bit`] at the column's snapshot.
    /// Unknown codes (interned after the snapshot) read as deny.
    #[inline]
    pub fn check_code(&self, code: u32) -> bool {
        let w = self.words.get((code >> 6) as usize).copied().unwrap_or(0);
        (w >> (code & 63)) & 1 != 0
    }

    /// The subject this column was decoded for.
    pub fn subject(&self) -> SubjectId {
        self.subject
    }

    /// The codebook version stamp at decode time.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of codes covered by the snapshot.
    pub fn len(&self) -> usize {
        self.codes
    }

    /// Whether the snapshot covers no code.
    pub fn is_empty(&self) -> bool {
        self.codes == 0
    }

    /// Whether this column is current for `(codebook, subject)` — the cache
    /// revalidation test: same subject, same codebook version.
    #[inline]
    pub fn matches(&self, codebook: &Codebook, subject: SubjectId) -> bool {
        self.subject == subject && self.version == codebook.version()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dol_acl::BitVec;

    fn acl(bits: &str) -> BitVec {
        BitVec::from_fn(bits.len(), |i| bits.as_bytes()[i] == b'1')
    }

    /// Exhaustive equivalence: `column.check_code(c) == codebook.bit(c, s)`
    /// for every code and subject, including across add/remove/compact.
    #[test]
    fn column_equals_codebook_bit_through_mutations() {
        let mut cb = Codebook::new(3);
        for i in 0..70u32 {
            // >64 entries exercises the multi-word path.
            cb.intern(&BitVec::from_fn(3, |s| {
                (i + s as u32).is_multiple_of(s as u32 + 2)
            }));
        }
        let check_all = |cb: &Codebook| {
            for s in 0..cb.width() as u16 {
                let col = SubjectColumn::decode(cb, SubjectId(s));
                assert!(col.matches(cb, SubjectId(s)));
                for code in 0..cb.len() as u32 {
                    assert_eq!(
                        col.check_code(code),
                        cb.bit(code, SubjectId(s)),
                        "code {code} subject {s}"
                    );
                }
            }
        };
        check_all(&cb);

        let old = SubjectColumn::decode(&cb, SubjectId(0));
        let s3 = cb.add_subject(Some(SubjectId(1)));
        assert!(
            !old.matches(&cb, SubjectId(0)),
            "add_subject must invalidate"
        );
        check_all(&cb);

        cb.add_subject_union(&[SubjectId(0), s3]);
        check_all(&cb);

        let old = SubjectColumn::decode(&cb, SubjectId(1));
        cb.remove_subject(SubjectId(1));
        assert!(
            !old.matches(&cb, SubjectId(1)),
            "remove_subject must invalidate"
        );
        check_all(&cb);

        let old = SubjectColumn::decode(&cb, SubjectId(0));
        cb.compact();
        assert!(!old.matches(&cb, SubjectId(0)), "compact must invalidate");
        check_all(&cb);
    }

    #[test]
    fn interning_new_entry_invalidates_but_duplicate_does_not() {
        let mut cb = Codebook::new(2);
        cb.intern(&acl("10"));
        let col = SubjectColumn::decode(&cb, SubjectId(0));
        cb.intern(&acl("10")); // already interned: no new entry
        assert!(col.matches(&cb, SubjectId(0)));
        cb.intern(&acl("01")); // new entry: snapshot is stale
        assert!(!col.matches(&cb, SubjectId(0)));
        // The stale column still answers its own snapshot correctly and
        // denies the unseen code.
        assert!(col.check_code(0));
        assert!(!col.check_code(1));
        assert!(!col.check_code(999));
    }

    #[test]
    fn empty_codebook_column() {
        let cb = Codebook::new(4);
        let col = SubjectColumn::decode(&cb, SubjectId(2));
        assert!(col.is_empty());
        assert_eq!(col.len(), 0);
        assert!(!col.check_code(0));
    }
}
