#![warn(missing_docs)]
// The DOL is what secure answers are decided from: production code must
// propagate typed errors, never unwrap them. Tests may unwrap freely.
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

//! **Document Ordered Labeling (DOL)** — the paper's contribution.
//!
//! A DOL is a compact representation of a fine-grained accessibility
//! function. For a secured tree, a **transition node** is a node whose
//! access-control list differs from its document-order predecessor (the root
//! is always a transition node); the DOL is the document-ordered list of
//! transition nodes together with their ACLs. Structural locality of access
//! controls — rights propagated along the hierarchy — makes transitions
//! sparse.
//!
//! For multiple subjects, ACLs are dictionary-compressed: each distinct ACL
//! bit-vector is stored once in a [`Codebook`], and transitions carry only a
//! small integer **access-control code**. Correlation between subjects'
//! rights (departments, groups) keeps the codebook far below its worst-case
//! `min(|D|, 2^|S|)` size, which is what the paper measures on LiveLink and
//! Unix data.
//!
//! Two coupled representations are provided:
//!
//! * [`Dol`] — the *logical* DOL: a sorted `(position, code)` list plus the
//!   codebook. Built in a single document-order pass from any
//!   [`dol_acl::AccessOracle`]; supports lookups, accessibility updates
//!   (node and subtree, with the paper's **Proposition 1** bound asserted),
//!   structural splices, and exact size accounting for the experiments.
//! * [`EmbeddedDol`] — the *physical* DOL: the codebook plus the codes
//!   embedded in a [`dol_storage::StructStore`]'s blocks (header code +
//!   change bit + in-block transition entries). Provides the zero-extra-I/O
//!   accessibility check used by ε-NoK and the in-memory page-skip test.
//!
//! ```
//! use dol_core::Dol;
//! use dol_acl::{AccessibilityMap, SubjectId};
//! use dol_xml::{parse, NodeId};
//!
//! let doc = parse("<a><b/><c/><d><e/><f/></d></a>").unwrap();
//! let mut map = AccessibilityMap::new(2, doc.len());
//! // Subject 0 sees the subtree of d (positions 3..6).
//! for p in 3..6 { map.set(SubjectId(0), NodeId(p), true); }
//! let dol = Dol::build(&doc, &map);
//! assert!(dol.accessible(4, SubjectId(0)));
//! assert!(!dol.accessible(4, SubjectId(1)));
//! assert_eq!(dol.transition_count(), 2); // root run + the d-subtree run
//! ```

pub mod codebook;
pub mod column;
pub mod dol;
pub mod embedded;
pub mod stats;
pub mod stream;

pub use codebook::Codebook;
pub use codebook::{CompactionPhase, CompactionPlan};
pub use column::{AccessBitmap, SubjectColumn};
pub use dol::Dol;
pub use embedded::{build_secure_items, CompactionProgress, EmbeddedDol};
pub use stats::DolStats;
pub use stream::{build_dol_from_stream, secure_filter};
