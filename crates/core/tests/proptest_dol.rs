//! Property tests for the DOL: logical builds, updates and structural
//! splices against a materialized accessibility-map model, and the physical
//! embedding against the logical representation.

use dol_acl::{AccessibilityMap, BitVec, SubjectId};
use dol_core::{Dol, EmbeddedDol};
use dol_storage::{BufferPool, MemDisk, StoreConfig};
use dol_xml::{Document, DocumentBuilder, NodeId};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_doc(max: usize) -> impl Strategy<Value = Document> {
    proptest::collection::vec(0u8..4, 1..max).prop_map(|raw| {
        let mut b = DocumentBuilder::new();
        b.open("r");
        let mut depth = 1;
        for action in raw {
            match action {
                0 if depth < 7 => {
                    b.open("n");
                    depth += 1;
                }
                1 | 2 => {
                    b.leaf("n", None);
                }
                _ => {
                    if depth > 1 {
                        b.close();
                        depth -= 1;
                    }
                }
            }
        }
        while depth > 0 {
            b.close();
            depth -= 1;
        }
        b.finish().unwrap()
    })
}

fn arb_map(nodes: usize, subjects: usize) -> impl Strategy<Value = AccessibilityMap> {
    proptest::collection::vec(any::<u8>(), nodes).prop_map(move |bytes| {
        let mut m = AccessibilityMap::new(subjects, nodes);
        for (i, b) in bytes.iter().enumerate() {
            for s in 0..subjects {
                // Runs of equal bytes give DOL-ish locality.
                let v = (b >> (s % 8)) & 1 == 1;
                if v {
                    m.set(SubjectId(s as u32), NodeId(i as u32), true);
                }
            }
        }
        m
    })
}

#[derive(Debug, Clone)]
#[allow(clippy::enum_variant_names)] // the Set* prefix mirrors the API names
enum Update {
    SetNode(u32, u8, bool),
    SetSubtree(u32, u8, bool),
    SetRun(u32, u32, u8),
}

fn arb_updates() -> impl Strategy<Value = Vec<Update>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u32>(), 0u8..3, any::<bool>()).prop_map(|(p, s, a)| Update::SetNode(p, s, a)),
            (any::<u32>(), 0u8..3, any::<bool>()).prop_map(|(p, s, a)| Update::SetSubtree(p, s, a)),
            (any::<u32>(), any::<u32>(), any::<u8>()).prop_map(|(a, b, v)| Update::SetRun(a, b, v)),
        ],
        0..25,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn logical_dol_tracks_model_through_updates(
        doc in arb_doc(50),
        map in prop::strategy::Just(()).prop_flat_map(|_| arb_map(50, 3)),
        updates in arb_updates(),
    ) {
        let n = doc.len();
        let map = map.project(&(0..3).map(|s| SubjectId(s as u32)).collect::<Vec<_>>());
        // Clamp the map to the document's node count.
        let mut truth = AccessibilityMap::new(3, n);
        for s in 0..3u32 {
            for p in 0..n {
                if map.accessible(SubjectId(s), NodeId(p as u32)) {
                    truth.set(SubjectId(s), NodeId(p as u32), true);
                }
            }
        }
        let mut dol = Dol::build(&doc, &truth);
        dol.verify_against(&truth).unwrap();

        for u in updates {
            let before = dol.transition_count();
            match u {
                Update::SetNode(p, s, allow) => {
                    let p = u64::from(p) % n as u64;
                    let s = SubjectId(u32::from(s));
                    dol.set_node(p, s, allow);
                    truth.set(s, NodeId(p as u32), allow);
                }
                Update::SetSubtree(p, s, allow) => {
                    let p = (u64::from(p) % n as u64) as u32;
                    let s = SubjectId(u32::from(s));
                    let size = doc.node(NodeId(p)).size;
                    dol.set_subtree(u64::from(p), u64::from(p + size), s, allow);
                    for q in p..p + size {
                        truth.set(s, NodeId(q), allow);
                    }
                }
                Update::SetRun(a, b, v) => {
                    let a = u64::from(a) % n as u64;
                    let b = a + 1 + u64::from(b) % (n as u64 - a);
                    let acl = BitVec::from_fn(3, |i| (v >> i) & 1 == 1);
                    dol.set_run(a, b, &acl);
                    for q in a..b {
                        for s in 0..3usize {
                            truth.set(SubjectId(s as u32), NodeId(q as u32), acl.get(s));
                        }
                    }
                }
            }
            dol.check_invariants().unwrap();
            prop_assert!(dol.transition_count() <= before + 2, "Proposition 1");
            dol.verify_against(&truth).unwrap();
        }
    }

    #[test]
    fn embedded_equals_logical_through_updates(
        doc in arb_doc(40),
        updates in arb_updates(),
        max_rec in prop_oneof![Just(3usize), Just(300usize)],
    ) {
        let n = doc.len();
        let mut truth = AccessibilityMap::new(3, n);
        for p in 0..n {
            if p % 2 == 0 {
                truth.set(SubjectId(0), NodeId(p as u32), true);
            }
            if p % 5 < 3 {
                truth.set(SubjectId(1), NodeId(p as u32), true);
            }
        }
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 64));
        let (mut store, mut emb) = EmbeddedDol::build(
            pool,
            StoreConfig { max_records_per_block: max_rec },
            &doc,
            &truth,
        ).unwrap();
        let mut logical = Dol::build(&doc, &truth);

        for u in updates {
            match u {
                Update::SetNode(p, s, allow) => {
                    let p = u64::from(p) % n as u64;
                    let s = SubjectId(u32::from(s));
                    emb.set_node(&mut store, p, s, allow).unwrap();
                    logical.set_node(p, s, allow);
                }
                Update::SetSubtree(p, s, allow) => {
                    let p = (u64::from(p) % n as u64) as u32;
                    let s = SubjectId(u32::from(s));
                    let size = doc.node(NodeId(p)).size;
                    emb.set_subtree(&mut store, u64::from(p), u64::from(p + size), s, allow)
                        .unwrap();
                    logical.set_subtree(u64::from(p), u64::from(p + size), s, allow);
                }
                Update::SetRun(a, b, v) => {
                    let a = u64::from(a) % n as u64;
                    let b = a + 1 + u64::from(b) % (n as u64 - a);
                    let acl = BitVec::from_fn(3, |i| (v >> i) & 1 == 1);
                    emb.set_run(&mut store, a, b, &acl).unwrap();
                    logical.set_run(a, b, &acl);
                }
            }
            store.check_integrity().unwrap();
            // The embedded representation must express the same function
            // (codes may be interned in a different order).
            for p in 0..n as u64 {
                for s in 0..3u32 {
                    prop_assert_eq!(
                        emb.accessible(&store, p, SubjectId(s)).unwrap(),
                        logical.accessible(p, SubjectId(s)),
                        "pos {} subject {}", p, s
                    );
                }
            }
            // And with the same compactness (transition-for-transition).
            prop_assert_eq!(
                store.logical_transition_count().unwrap() as usize,
                logical.transition_count()
            );
        }
    }

    #[test]
    fn structural_splices_track_model(
        doc in arb_doc(40),
        sub_bits in proptest::collection::vec(any::<bool>(), 1..8),
        victim_pick in any::<u32>(),
        insert_pick in any::<u32>(),
    ) {
        // Single-subject DOL; model = Vec<bool>.
        let n = doc.len() as u64;
        let col = BitVec::from_fn(n as usize, |i| i % 3 != 1);
        let mut dol = Dol::build_single(&col);
        let mut model: Vec<bool> = (0..n as usize).map(|i| col.get(i)).collect();

        // Delete a subtree.
        if n > 1 {
            let victim = 1 + u64::from(victim_pick) % (n - 1);
            let size = u64::from(doc.node(NodeId(victim as u32)).size);
            dol.delete_range(victim, victim + size);
            model.drain(victim as usize..(victim + size) as usize);
            dol.check_invariants().unwrap();
            for (i, &m) in model.iter().enumerate() {
                prop_assert_eq!(dol.accessible(i as u64, SubjectId(0)), m);
            }
        }

        // Insert a run with its own labeling.
        if dol.total_nodes() > 0 {
            let sub_col = BitVec::from_fn(sub_bits.len(), |i| sub_bits[i]);
            let sub = Dol::build_single(&sub_col);
            let at = 1 + u64::from(insert_pick) % dol.total_nodes();
            dol.insert_dol(at, &sub);
            let ins: Vec<bool> = sub_bits.clone();
            model.splice(at as usize..at as usize, ins);
            dol.check_invariants().unwrap();
            for (i, &m) in model.iter().enumerate() {
                prop_assert_eq!(dol.accessible(i as u64, SubjectId(0)), m);
            }
        }
    }
}
