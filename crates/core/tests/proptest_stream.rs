//! Property test: streaming DOL construction equals the tree-based build
//! on random documents (shared position convention).

use dol_acl::FnOracle;
use dol_core::{build_dol_from_stream, Dol};
use dol_xml::{parse_with_options, DocumentBuilder, ParseOptions};
use proptest::prelude::*;

const TAGS: [&str; 5] = ["alpha", "beta", "gamma", "delta", "eps"];

fn arb_xml() -> impl Strategy<Value = String> {
    proptest::collection::vec((0usize..5, 0u8..5, proptest::option::of(0usize..3)), 1..80).prop_map(
        |raw| {
            let mut b = DocumentBuilder::new();
            b.open("root");
            let mut depth = 1;
            for (tag, action, attr) in raw {
                match action {
                    0 if depth < 7 => {
                        b.open(TAGS[tag]);
                        if let Some(a) = attr {
                            b.attribute(&format!("a{a}"), "v & <w>");
                        }
                        depth += 1;
                    }
                    1 => {
                        b.leaf(TAGS[tag], Some("text > & < data"));
                    }
                    2 => {
                        b.text("chunk & <esc>");
                    }
                    _ => {
                        if depth > 1 {
                            b.close();
                            depth -= 1;
                        }
                    }
                }
            }
            while depth > 0 {
                b.close();
                depth -= 1;
            }
            b.finish().unwrap().to_xml()
        },
    )
}

proptest! {
    #[test]
    fn stream_dol_equals_tree_dol(xml in arb_xml()) {
        let opts = ParseOptions {
            coalesce_single_text: false,
            ..Default::default()
        };
        let doc = parse_with_options(&xml, &opts).unwrap();
        let oracle = FnOracle::new(2, |n: dol_xml::NodeId, s| (n.0 as usize / 3 + s).is_multiple_of(2));
        let stream_dol = build_dol_from_stream(&xml, &oracle).unwrap();
        let tree_dol = Dol::build(&doc, &oracle);
        prop_assert_eq!(stream_dol.transitions(), tree_dol.transitions());
        prop_assert_eq!(stream_dol.total_nodes(), tree_dol.total_nodes());
    }

    #[test]
    fn secure_filter_equals_tree_pruning(xml in arb_xml(), seed in any::<u64>()) {
        use dol_acl::{AccessibilityMap, SubjectId};
        let opts = ParseOptions {
            coalesce_single_text: false,
            ..Default::default()
        };
        let doc = parse_with_options(&xml, &opts).unwrap();
        // Pseudo-random accessibility, root forced accessible.
        let mut map = AccessibilityMap::new(1, doc.len());
        for p in 0..doc.len() {
            let h = (p as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed;
            if !h.is_multiple_of(4) {
                map.set(SubjectId(0), dol_xml::NodeId(p as u32), true);
            }
        }
        map.set(SubjectId(0), dol_xml::NodeId(0), true);
        let dol = Dol::build(&doc, &map);
        let filtered = dol_core::secure_filter(&xml, &dol, SubjectId(0)).unwrap();

        let visible = |p: u32| -> bool {
            let id = dol_xml::NodeId(p);
            map.accessible(SubjectId(0), id)
                && doc.ancestors(id).all(|a| map.accessible(SubjectId(0), a))
        };
        if filtered.is_empty() {
            prop_assert!(!visible(0));
            return Ok(());
        }
        let reparsed = parse_with_options(&filtered, &opts).unwrap();
        // Adjacent surviving text chunks merge when the output is reparsed,
        // so compare merge-normalized forms: the element/attribute node
        // sequence must match exactly, and the in-order concatenation of
        // text content must match.
        let norm = |d: &dol_xml::Document, keep: &dyn Fn(u32) -> bool| -> (Vec<String>, String) {
            let mut names = Vec::new();
            let mut text = String::new();
            for n in d.preorder() {
                if !keep(n.0) {
                    continue;
                }
                let name = d.name_of(n);
                if name == "#text" {
                    text.push_str(d.node(n).value.as_deref().unwrap_or(""));
                } else {
                    names.push(name.to_string());
                    if let Some(v) = &d.node(n).value {
                        if name.starts_with('@') {
                            text.push_str(v);
                        }
                    }
                }
            }
            (names, text)
        };
        let expected = norm(&doc, &|p| visible(p));
        let got = norm(&reparsed, &|_| true);
        prop_assert_eq!(got.0, expected.0, "element/attribute sequence");
        prop_assert_eq!(got.1, expected.1, "concatenated text");
    }
}
