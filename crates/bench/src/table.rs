//! Aligned text tables for experiment output.

/// A simple right-aligned text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    title: String,
}

impl Table {
    /// Starts a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: title.to_string(),
        }
    }

    /// Adds a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for building a row out of displayable values.
    pub fn rowd<D: std::fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
            s.push('\n');
            s
        };
        out.push_str(&line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a ratio as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a byte count human-readably.
pub fn bytes(n: usize) -> String {
    if n >= 1 << 20 {
        format!("{:.2} MiB", n as f64 / (1 << 20) as f64)
    } else if n >= 1 << 10 {
        format!("{:.2} KiB", n as f64 / (1 << 10) as f64)
    } else {
        format!("{n} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.rowd(&[1, 2]).rowd(&[333, 4]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("333"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn formatters() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(bytes(10), "10 B");
        assert_eq!(bytes(2048), "2.00 KiB");
        assert_eq!(bytes(3 << 20), "3.00 MiB");
    }
}
