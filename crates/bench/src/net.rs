//! `net` — the wire front door gate: a loopback multi-process harness for
//! `dol-server` (not a paper artifact).
//!
//! The parent process builds an XMark document with a synthetic multi-subject
//! ACL, persists it to a scratch image, and computes every answer of the
//! Table-1 × subject × semantics suite **in memory** — the oracle depends only
//! on the document and the ACL, never on which process serves it. It then
//! re-execs itself (`std::env::current_exe()`) into one **server process**
//! (hidden `__net-server` mode, opening the image through write-ahead-log
//! recovery) and N **client processes** (hidden `__net-client` mode) that
//! speak only the framed wire protocol, and drives five phases:
//!
//! * **A — byte identity**: N client processes replay seeded query mixes;
//!   every answer line must be byte-identical to the parent's oracle.
//! * **B — updates, connection kills, crash/restart**: ACL updates land over
//!   the wire (acknowledged = durable through the group committer) and the
//!   parent's in-memory mirror recomputes the oracle per prefix; clients that
//!   abort mid-pipeline and a SIGKILL of the server mid-stream must yield
//!   zero wrong answers, and the restarted server (same image, log replayed)
//!   must answer the full suite exactly.
//! * **C — overload**: pipelined floods against a 2-slot admission window
//!   must draw typed `overloaded` refusals, and every answered query must
//!   still match the oracle — refusal is total, never a partial answer.
//! * **D — poison window**: an injected mid-transaction fault poisons the
//!   database; queries keep serving the pre-fault oracle (degraded mirrors),
//!   updates refuse with typed `poisoned`, and the wire `recover` method
//!   heals in place.
//! * **E — drain**: a wire `shutdown` drains the server (exit 0, committer
//!   flushed, image checkpointed); the parent reopens the image and re-runs
//!   the suite exactly.
//!
//! Every gate — zero wrong answers, typed-only refusals, clean drain and
//! reopen — is asserted in every mode; `--smoke` only shrinks sizes. The
//! counters go to `BENCH_net.json`.

use crate::setup::{xmark_doc, TABLE1};
use crate::table::Table;
use crate::Effort;
use dol_acl::SubjectId;
use dol_nok::Security;
use dol_server::{
    frame, proto, Client, ClientError, ErrorCode, Method, Request, Server, ServerConfig, UpdateOp,
    WireSemantics,
};
use dol_workloads::{synth_multi, SynthAclConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secure_xml::SecureXmlDb;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

/// Subjects in the synthetic ACL (wire queries pick one uniformly).
const SUBJECTS: usize = 3;
/// Client processes in the byte-identity phase.
const CLIENTS: usize = 3;

/// Oracle key: (Table-1 query index, subject, subtree-visibility?).
type OpKey = (usize, u32, bool);
type Oracle = HashMap<OpKey, Vec<u64>>;

fn security_of(key: OpKey) -> Security {
    let s = SubjectId(key.1);
    if key.2 {
        Security::SubtreeVisibility(s)
    } else {
        Security::BindingLevel(s)
    }
}

fn draw_op(rng: &mut StdRng) -> OpKey {
    (
        rng.gen_range(0..TABLE1.len()),
        rng.gen_range(0..SUBJECTS as u32),
        rng.gen_bool(0.25),
    )
}

/// One answer (or refusal) as the line a client writes and the parent
/// checks: `"qi,subject,vis:p1 p2 p3"` — the byte-identity unit.
fn render_line(key: OpKey, outcome: &str) -> String {
    format!("{},{},{}:{}\n", key.0, key.1, u8::from(key.2), outcome)
}

fn render_matches(matches: &[u64]) -> String {
    matches
        .iter()
        .map(|m| m.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

fn parse_key(line: &str) -> Option<(OpKey, &str)> {
    let (key, rest) = line.split_once(':')?;
    let mut parts = key.split(',');
    let qi: usize = parts.next()?.parse().ok()?;
    let subject: u32 = parts.next()?.parse().ok()?;
    let vis: u8 = parts.next()?.parse().ok()?;
    Some(((qi, subject, vis == 1), rest))
}

/// The full Table-1 × subject × semantics suite, answered in-process.
fn oracle_of(db: &SecureXmlDb) -> Oracle {
    let mut oracle = HashMap::new();
    for (qi, (_, query)) in TABLE1.iter().enumerate() {
        for subject in 0..SUBJECTS as u32 {
            for vis in [false, true] {
                let key = (qi, subject, vis);
                let r = db.query(query, security_of(key)).expect("oracle query");
                oracle.insert(key, r.matches);
            }
        }
    }
    oracle
}

// ---------------------------------------------------------------- children

/// Hidden `__net-server` mode: open the image (replaying its log) and serve
/// until a wire `shutdown` drains. Args: `image max_inflight testing seed`.
pub fn server_child(args: &[String]) {
    let usage = "__net-server <image> <max_inflight> <testing 0|1> <seed>";
    let image = args.first().unwrap_or_else(|| panic!("{usage}"));
    let max_inflight: usize = args[1].parse().unwrap_or_else(|_| panic!("{usage}"));
    let testing = args[2] == "1";
    let seed: u64 = args[3].parse().unwrap_or_else(|_| panic!("{usage}"));
    let db = SecureXmlDb::open_from(Path::new(image)).expect("open image");
    let cfg = ServerConfig {
        max_inflight,
        testing,
        seed,
        idle_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    };
    let server = Server::start(db, cfg).expect("bind loopback");
    // The parent parses this line to discover the ephemeral port.
    println!("listening on {}", server.local_addr());
    server.wait();
    println!("drained");
}

/// Hidden `__net-client` mode: speak the framed protocol only. Args:
/// `addr out_path seed ops die_after`.
///
/// * `die_after > 0`: write that many pipelined query frames and abort
///   without ever reading a response (the connection-kill injection).
/// * `ops == 0`: enumerate the full suite once, in deterministic order.
/// * otherwise: replay `ops` seeded random queries.
///
/// Every outcome becomes one line in `out_path`: the answer positions, a
/// typed refusal (`!code`), or `!conn` when the server vanished mid-stream
/// (after which the client stops and exits cleanly — a dead server is an
/// expected chaos outcome, never a wrong answer).
pub fn client_child(args: &[String]) {
    let usage = "__net-client <addr> <out_path> <seed> <ops> <die_after>";
    let addr = args.first().unwrap_or_else(|| panic!("{usage}"));
    let out_path = &args[1];
    let seed: u64 = args[2].parse().unwrap_or_else(|_| panic!("{usage}"));
    let ops: usize = args[3].parse().unwrap_or_else(|_| panic!("{usage}"));
    let die_after: usize = args[4].parse().unwrap_or_else(|_| panic!("{usage}"));

    if die_after > 0 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..die_after {
            let key = draw_op(&mut rng);
            let req = Request {
                id: (i + 1) as u64,
                method: query_method(key),
                deadline_ms: None,
            };
            let _ = frame::write_frame(&mut stream, &proto::encode_request(&req));
        }
        // Die without closing politely: the server's reader must see the
        // EOF, cancel whatever is still in flight, and release the slots.
        std::process::abort();
    }

    let mut client = match Client::connect(addr, Duration::from_secs(30)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("connect {addr}: {e}");
            std::process::exit(3);
        }
    };
    let mut out = String::new();
    let keys: Vec<OpKey> = if ops == 0 {
        let mut suite = Vec::new();
        for qi in 0..TABLE1.len() {
            for subject in 0..SUBJECTS as u32 {
                for vis in [false, true] {
                    suite.push((qi, subject, vis));
                }
            }
        }
        suite
    } else {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..ops).map(|_| draw_op(&mut rng)).collect()
    };
    for key in keys {
        let semantics = if key.2 {
            WireSemantics::Subtree
        } else {
            WireSemantics::Binding
        };
        match client.query(TABLE1[key.0].1, key.1, semantics, None) {
            Ok(matches) => out.push_str(&render_line(key, &render_matches(&matches))),
            Err(ClientError::Server(code, _)) => {
                out.push_str(&render_line(key, &format!("!{}", code.as_str())));
            }
            Err(_) => {
                out.push_str(&render_line(key, "!conn"));
                break;
            }
        }
    }
    std::fs::write(out_path, out).expect("write answers");
}

fn query_method(key: OpKey) -> Method {
    Method::Query {
        query: TABLE1[key.0].1.to_string(),
        subject: key.1,
        semantics: if key.2 {
            WireSemantics::Subtree
        } else {
            WireSemantics::Binding
        },
    }
}

// ------------------------------------------------------------------ parent

struct ServerProc {
    child: Child,
    addr: String,
    stdout: BufReader<ChildStdout>,
}

fn spawn_server(image: &Path, max_inflight: usize, seed: u64) -> ServerProc {
    let exe = std::env::current_exe().expect("current_exe");
    let mut child = Command::new(exe)
        .arg("__net-server")
        .arg(image)
        .arg(max_inflight.to_string())
        .arg("1") // chaos phases need the fault-injection method
        .arg(seed.to_string())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn server process");
    let mut stdout = BufReader::new(child.stdout.take().expect("server stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read listening line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected server banner: {line:?}"))
        .to_string();
    ServerProc {
        child,
        addr,
        stdout,
    }
}

fn spawn_client(addr: &str, out: &Path, seed: u64, ops: usize, die_after: usize) -> Child {
    let exe = std::env::current_exe().expect("current_exe");
    Command::new(exe)
        .arg("__net-client")
        .arg(addr)
        .arg(out)
        .arg(seed.to_string())
        .arg(ops.to_string())
        .arg(die_after.to_string())
        .spawn()
        .expect("spawn client process")
}

/// Tally of one answer file against an oracle.
#[derive(Default)]
struct FileCheck {
    served: u64,
    wrong: u64,
    refusals: u64,
    conn_errors: u64,
    lines: u64,
}

/// Checks every line of a client's answer file against `oracle`: a served
/// answer must be **byte-identical** to the oracle's rendering; `!code`
/// lines are typed refusals; `!conn` is a vanished server. Anything else —
/// an unparsable line or a divergent answer — counts as wrong.
fn check_file(path: &Path, oracle: &Oracle) -> FileCheck {
    let text = std::fs::read_to_string(path).expect("read answer file");
    let mut c = FileCheck::default();
    for line in text.lines() {
        c.lines += 1;
        let Some((key, rest)) = parse_key(line) else {
            c.wrong += 1;
            continue;
        };
        if rest == "!conn" {
            c.conn_errors += 1;
        } else if rest.starts_with('!') {
            c.refusals += 1;
        } else {
            let expect = &oracle[&key];
            if rest == render_matches(expect) {
                c.served += 1;
            } else {
                c.wrong += 1;
            }
        }
    }
    c
}

/// Runs the full suite through a fresh client process and demands every
/// answer byte-identical to `oracle` — no refusals, no connection errors.
fn assert_suite_exact(addr: &str, oracle: &Oracle, scratch: &Path, tag: &str) -> u64 {
    let out = scratch.join(format!("suite-{tag}.txt"));
    let status = spawn_client(addr, &out, 0, 0, 0)
        .wait()
        .expect("wait suite client");
    assert!(status.success(), "suite client {tag} failed: {status}");
    let c = check_file(&out, oracle);
    assert_eq!(c.wrong, 0, "suite {tag}: wrong answers");
    assert_eq!(
        c.refusals + c.conn_errors,
        0,
        "suite {tag}: refusals on an idle server"
    );
    assert_eq!(c.lines, oracle.len() as u64, "suite {tag}: missing answers");
    c.served
}

/// Applies one ACL update over the wire (acknowledged = durable through the
/// group committer) and mirrors it on the parent's in-memory twin.
fn wire_update(ctl: &mut Client, mirror: &mut SecureXmlDb, rng: &mut StdRng) {
    let pos = rng.gen_range(1..mirror.len() as u64);
    let subject = rng.gen_range(0..SUBJECTS as u32);
    let allow = rng.gen_bool(0.5);
    ctl.update(
        UpdateOp::SetNodeAccess {
            pos,
            subject,
            allow,
        },
        None,
    )
    .expect("wire update");
    mirror
        .set_node_access(pos, SubjectId(subject), allow)
        .expect("mirror update");
}

/// Runs the wire gate. `--smoke` shrinks sizes; every assertion holds in
/// every mode.
pub fn run(effort: Effort, seed: u64, smoke: bool) {
    let scale = if smoke {
        0.04
    } else {
        effort.scale(0.04, 0.12)
    };
    let ops = if smoke { 40 } else { effort.pick(60, 200) };
    let updates = if smoke { 3 } else { effort.pick(4, 8) };

    println!("wire front door: loopback multi-process gate (seed {seed})");
    println!("{}", "-".repeat(72));

    // Scratch area for the image and the answer files. Prefer the build
    // directory (always writable where the harness runs) over the global
    // temp dir.
    let scratch = if Path::new("target").is_dir() {
        PathBuf::from("target").join(format!("net-scratch-{}-{seed}", std::process::id()))
    } else {
        std::env::temp_dir().join(format!("dol-net-{}-{seed}", std::process::id()))
    };
    std::fs::create_dir_all(&scratch).expect("create scratch dir");
    let image = scratch.join("db.img");

    // Build the database once, persist it for the server process, and keep
    // an in-memory twin: answers depend only on document + ACL, so the twin
    // is the oracle for every process that serves the image.
    let acl_cfg = SynthAclConfig {
        propagation_ratio: 0.05,
        accessibility_ratio: 0.6,
        sibling_locality: 0.5,
        seed,
    };
    let doc = xmark_doc(scale);
    let nodes = doc.len();
    let map = synth_multi(&doc, &acl_cfg, SUBJECTS);
    SecureXmlDb::from_document(doc, &map)
        .expect("build db")
        .save_to(&image)
        .expect("persist image");
    let mut mirror = SecureXmlDb::from_document(xmark_doc(scale), &map).expect("build oracle twin");
    let mut oracle = oracle_of(&mirror);

    let mut t = Table::new(
        &format!(
            "wire gate (XMark {nodes} nodes, {SUBJECTS} subjects, {CLIENTS} client \
             processes x {ops} ops, {updates} wire updates, seed {seed})"
        ),
        &["phase", "served", "wrong", "typed refusals", "conn errors"],
    );

    // ---- phase A: byte identity across processes --------------------
    let server = spawn_server(&image, 64, seed);
    let outs: Vec<PathBuf> = (0..CLIENTS)
        .map(|i| scratch.join(format!("client-{i}.txt")))
        .collect();
    let children: Vec<Child> = outs
        .iter()
        .enumerate()
        .map(|(i, out)| {
            spawn_client(
                &server.addr,
                out,
                seed ^ (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                ops,
                0,
            )
        })
        .collect();
    let mut a = FileCheck::default();
    for (mut child, out) in children.into_iter().zip(&outs) {
        let status = child.wait().expect("wait client");
        assert!(status.success(), "phase A client failed: {status}");
        let c = check_file(out, &oracle);
        assert_eq!(c.lines, ops as u64, "phase A client answered short");
        a.served += c.served;
        a.wrong += c.wrong;
        a.refusals += c.refusals;
        a.conn_errors += c.conn_errors;
    }
    assert_eq!(
        a.wrong, 0,
        "phase A: a wire answer diverged from the oracle"
    );
    assert_eq!(
        a.refusals + a.conn_errors,
        0,
        "phase A: refusals on an unloaded server"
    );
    t.row(&[
        "A identity".into(),
        a.served.to_string(),
        a.wrong.to_string(),
        a.refusals.to_string(),
        a.conn_errors.to_string(),
    ]);

    // ---- phase B: wire updates, connection kills, crash/restart -----
    let mut ctl =
        Client::connect(&server.addr, Duration::from_secs(30)).expect("control connection");
    let mut upd_rng = StdRng::seed_from_u64(seed ^ 0xD01);
    let mut b_served = 0u64;
    for k in 0..updates {
        wire_update(&mut ctl, &mut mirror, &mut upd_rng);
        oracle = oracle_of(&mirror);
        b_served += assert_suite_exact(&server.addr, &oracle, &scratch, &format!("update-{k}"));
    }

    // Connection kills: clients that abort mid-pipeline without reading.
    for i in 0..2u64 {
        let out = scratch.join(format!("killer-{i}.txt"));
        let mut killer = spawn_client(&server.addr, &out, seed ^ (0xAB + i), 0, 6);
        let _ = killer.wait(); // dies by design (abort)
    }
    ctl.ping().expect("server must survive killed connections");
    b_served += assert_suite_exact(&server.addr, &oracle, &scratch, "post-kill");

    // Mid-request server crash: SIGKILL while a client process streams
    // queries. Every answer it got must still match the oracle; everything
    // after the kill is a connection error, never a wrong answer.
    let stream_out = scratch.join("stream.txt");
    let mut streamer = spawn_client(&server.addr, &stream_out, seed ^ 0xC4A5, 1_000_000, 0);
    std::thread::sleep(Duration::from_millis(150));
    let mut server_child = server.child;
    server_child.kill().expect("SIGKILL server");
    let _ = server_child.wait();
    let status = streamer.wait().expect("wait streaming client");
    assert!(status.success(), "streaming client crashed: {status}");
    let b3 = check_file(&stream_out, &oracle);
    assert_eq!(
        b3.wrong, 0,
        "a wrong answer crossed the wire around the crash"
    );
    b_served += b3.served;
    t.row(&[
        "B chaos".into(),
        b_served.to_string(),
        b3.wrong.to_string(),
        b3.refusals.to_string(),
        b3.conn_errors.to_string(),
    ]);

    // Restart on the same image: write-ahead-log replay must land exactly
    // the last acknowledged state. The restarted server keeps a 2-slot
    // admission window for the overload phase.
    let server = spawn_server(&image, 2, seed);
    let restart_served = assert_suite_exact(&server.addr, &oracle, &scratch, "post-restart");
    t.row(&[
        "B restart".into(),
        restart_served.to_string(),
        "0".into(),
        "0".into(),
        "0".into(),
    ]);

    // ---- phase C: overload draws typed refusals ---------------------
    let conns = 4usize;
    let per_conn = if smoke { 25 } else { 40 };
    let mut flood_rng = StdRng::seed_from_u64(seed ^ 0xF100D);
    let mut sockets = Vec::new();
    for _ in 0..conns {
        let s = TcpStream::connect(&server.addr).expect("flood connect");
        s.set_nodelay(true).expect("nodelay");
        s.set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        sockets.push(s);
    }
    let mut keys_by_conn: Vec<Vec<OpKey>> = Vec::new();
    for s in &mut sockets {
        let mut keys = Vec::with_capacity(per_conn);
        for i in 0..per_conn {
            let key = draw_op(&mut flood_rng);
            let req = Request {
                id: (i + 1) as u64,
                method: query_method(key),
                deadline_ms: None,
            };
            frame::write_frame(s, &proto::encode_request(&req)).expect("flood write");
            keys.push(key);
        }
        keys_by_conn.push(keys);
    }
    let (mut flood_ok, mut flood_overloaded, mut flood_wrong) = (0u64, 0u64, 0u64);
    for (s, keys) in sockets.iter_mut().zip(&keys_by_conn) {
        for _ in 0..per_conn {
            let payload = frame::read_frame(s, &[], dol_server::DEFAULT_MAX_FRAME)
                .expect("flood response")
                .expect("flood stream closed early");
            let resp = proto::decode_response(&payload).expect("decode flood response");
            let key = keys[resp.id as usize - 1];
            match resp.outcome {
                Ok(result) => {
                    let matches: Vec<u64> = match result.get("matches") {
                        Some(dol_server::Json::Arr(a)) => {
                            a.iter().filter_map(|v| v.as_uint()).collect()
                        }
                        _ => Vec::new(),
                    };
                    if matches == oracle[&key] {
                        flood_ok += 1;
                    } else {
                        flood_wrong += 1;
                    }
                }
                Err((ErrorCode::Overloaded, _)) => flood_overloaded += 1,
                Err((code, msg)) => {
                    panic!("overload phase drew an unexpected refusal {code:?}: {msg}")
                }
            }
        }
    }
    drop(sockets);
    assert_eq!(flood_wrong, 0, "an overloaded server served a wrong answer");
    assert!(
        flood_overloaded > 0,
        "pipelining {} requests through a 2-slot window never drew `overloaded`",
        conns * per_conn
    );
    assert_eq!(
        flood_ok + flood_overloaded,
        (conns * per_conn) as u64,
        "a flood request was lost or double-answered"
    );
    t.row(&[
        "C overload".into(),
        flood_ok.to_string(),
        flood_wrong.to_string(),
        flood_overloaded.to_string(),
        "0".into(),
    ]);

    // ---- phase D: poison window over the wire -----------------------
    let mut ctl =
        Client::connect(&server.addr, Duration::from_secs(30)).expect("control connection");
    let injected = ctl
        .call(Method::Update(UpdateOp::FailAfterDirty { pos: 1 }), None)
        .expect("inject fault");
    assert_eq!(
        injected.get("poisoned").and_then(dol_server::Json::as_bool),
        Some(true),
        "the injected fault failed to poison the handle"
    );
    // Degraded reads keep serving the pre-fault oracle (the transaction
    // rolled back before the poison latched).
    let degraded_served = assert_suite_exact(&server.addr, &oracle, &scratch, "degraded");
    let mut poison_refusals = 0u64;
    match ctl.update(
        UpdateOp::SetNodeAccess {
            pos: 1,
            subject: 0,
            allow: true,
        },
        None,
    ) {
        Err(ClientError::Server(ErrorCode::Poisoned, _)) => poison_refusals += 1,
        other => panic!("poisoned update must refuse typed, got {other:?}"),
    }
    assert!(ctl.recover().expect("recover"), "recover ran nothing");
    wire_update(&mut ctl, &mut mirror, &mut upd_rng);
    oracle = oracle_of(&mirror);
    let healed_served = assert_suite_exact(&server.addr, &oracle, &scratch, "healed");
    t.row(&[
        "D poison".into(),
        (degraded_served + healed_served).to_string(),
        "0".into(),
        poison_refusals.to_string(),
        "0".into(),
    ]);

    // ---- phase E: metrics scrape + graceful drain + clean reopen ----
    let mut scrape = TcpStream::connect(&server.addr).expect("metrics connect");
    scrape
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    scrape
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: net\r\n\r\n")
        .expect("metrics request");
    let mut metrics_text = String::new();
    scrape
        .read_to_string(&mut metrics_text)
        .expect("metrics response");
    assert!(
        metrics_text.starts_with("HTTP/1.1 200 OK"),
        "metrics scrape did not answer 200"
    );
    assert!(
        metrics_text.contains("dol_requests_total")
            && metrics_text.contains("dol_refusals_total{code=\"overloaded\"}"),
        "metrics scrape is missing the request/refusal counters"
    );

    ctl.shutdown().expect("wire shutdown");
    let mut server = server;
    let status = server.child.wait().expect("wait drained server");
    assert!(status.success(), "drained server exited {status}");
    let mut tail = String::new();
    server
        .stdout
        .read_to_string(&mut tail)
        .expect("server stdout tail");
    assert!(
        tail.contains("drained"),
        "the server never reported a completed drain"
    );
    // Clean reopen: the committer flushed and the image checkpointed, so
    // the suite answers exactly without the server's help.
    let reopened = SecureXmlDb::open_from(&image).expect("reopen drained image");
    reopened.verify_integrity().expect("drained image verifies");
    let mut reopen_served = 0u64;
    for (key, expect) in &oracle {
        let r = reopened
            .query(TABLE1[key.0].1, security_of(*key))
            .expect("reopened query");
        assert_eq!(&r.matches, expect, "reopened answer diverged for {key:?}");
        reopen_served += 1;
    }
    t.row(&[
        "E drain+reopen".into(),
        reopen_served.to_string(),
        "0".into(),
        "0".into(),
        "0".into(),
    ]);
    t.print();
    println!(
        "(Every phase gates zero wrong answers; refusals are typed wire errors only.\n\
         Phase B killed the server mid-stream ({} answers before the cut, {} connection\n\
         errors after); phase C drew {} `overloaded` refusals from {} pipelined\n\
         requests; phase E drained, reopened, and re-answered the suite exactly.)\n",
        b3.served,
        b3.conn_errors,
        flood_overloaded,
        conns * per_conn,
    );

    write_json(
        seed,
        nodes,
        ops,
        updates,
        &a,
        b_served,
        &b3,
        restart_served,
        flood_ok,
        flood_overloaded,
        degraded_served + healed_served,
        poison_refusals,
        reopen_served,
    );
    let _ = std::fs::remove_dir_all(&scratch);
    println!("net: all assertions passed\n");
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    seed: u64,
    nodes: usize,
    ops: usize,
    updates: usize,
    a: &FileCheck,
    b_served: u64,
    b3: &FileCheck,
    restart_served: u64,
    flood_ok: u64,
    flood_overloaded: u64,
    poison_served: u64,
    poison_refusals: u64,
    reopen_served: u64,
) {
    let out = format!(
        "{{\n  \"experiment\": \"net\",\n  \"seed\": {seed},\n  \"nodes\": {nodes},\n  \
         \"clients\": {CLIENTS},\n  \"ops_per_client\": {ops},\n  \
         \"wire_updates\": {updates},\n  \
         \"identity_served\": {},\n  \"identity_wrong\": {},\n  \
         \"chaos_served\": {},\n  \"crash_window_served\": {},\n  \
         \"crash_window_conn_errors\": {},\n  \"restart_served\": {},\n  \
         \"overload_served\": {},\n  \"overload_refusals\": {},\n  \
         \"poison_served\": {},\n  \"poison_refusals\": {},\n  \
         \"drain_reopen_served\": {},\n  \"wrong_total\": 0\n}}\n",
        a.served,
        a.wrong,
        b_served,
        b3.served,
        b3.conn_errors,
        restart_served,
        flood_ok,
        flood_overloaded,
        poison_served,
        poison_refusals,
        reopen_served,
    );
    match std::fs::File::create("BENCH_net.json").and_then(|mut f| f.write_all(out.as_bytes())) {
        Ok(()) => println!("(wrote BENCH_net.json)\n"),
        Err(e) => eprintln!("could not write BENCH_net.json: {e}"),
    }
}
