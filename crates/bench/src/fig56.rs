//! Figures 5 and 6: codebook entries and transition nodes as functions of
//! the number of subjects, on the LiveLink-style and Unix-FS-style worlds.

use crate::table::{bytes, Table};
use crate::Effort;
use dol_core::Dol;
use dol_workloads::{LiveLinkConfig, LiveLinkWorld, UnixFsConfig, UnixFsWorld, UnixMode};

fn subset_sizes(total: usize) -> Vec<usize> {
    let mut sizes = vec![1usize, 2, 5, 10, 20, 50, 100, 200, 400, 800, 1600, 3200];
    sizes.retain(|&s| s < total);
    sizes.push(total);
    sizes
}

/// Figures 5(a) + 6(a): LiveLink.
pub fn livelink(effort: Effort) {
    let world = LiveLinkWorld::generate(&LiveLinkConfig {
        departments: effort.pick(5, 12),
        projects_per_dept: effort.pick(3, 6),
        project_size: effort.pick(60, 220),
        users: effort.pick(100, 800),
        modes: 10,
        seed: 2005,
    });
    println!(
        "Figures 5(a)/6(a): LiveLink-style, {} nodes, {} subjects, mode 0\n",
        world.doc.len(),
        world.subject_count()
    );
    let mut t = Table::new(
        "fig5a/6a",
        &[
            "subjects",
            "codebook entries",
            "codebook bytes",
            "transition nodes",
            "2^S bound",
            "trans/node",
        ],
    );
    for n in subset_sizes(world.subject_count()) {
        let subset = world.sample_subjects(n, 31);
        let stream = world.row_stream(0, Some(&subset));
        let dol = Dol::from_row_stream(world.doc.len() as u64, subset.len(), &stream);
        let bound = if n < 20 {
            format!("{}", 1u64 << n.min(63))
        } else {
            format!("2^{n}")
        };
        t.row(&[
            n.to_string(),
            dol.codebook().len().to_string(),
            bytes(dol.codebook().bytes()),
            dol.transition_count().to_string(),
            bound,
            format!(
                "{:.4}",
                dol.transition_count() as f64 / world.doc.len() as f64
            ),
        ]);
    }
    t.print();
    println!(
        "(Paper shape: both grow far slower than the uncorrelated worst case — codebook\n\
         entries sub-exponential, transitions sub-linear; with ALL subjects the transition\n\
         density stays well below 1-in-10 nodes.)\n"
    );
}

/// Figures 5(b) + 6(b): Unix file system.
pub fn unixfs(effort: Effort) {
    let world = UnixFsWorld::generate(&UnixFsConfig {
        nodes: effort.pick(8_000, 120_000),
        users: 182,
        groups: 65,
        seed: 65,
    });
    println!(
        "Figures 5(b)/6(b): Unix-FS-style, {} nodes, {} subjects (182 users + 65 groups), read mode\n",
        world.doc.len(),
        world.subject_count()
    );
    let mut t = Table::new(
        "fig5b/6b",
        &[
            "subjects",
            "codebook entries",
            "codebook bytes",
            "transition nodes",
            "trans/node",
        ],
    );
    for n in subset_sizes(world.subject_count()) {
        let subset = world.sample_subjects(n, 13);
        let oracle = world.oracle_for(UnixMode::Read, subset);
        let dol = Dol::build_n(world.doc.len() as u64, &oracle);
        t.row(&[
            n.to_string(),
            dol.codebook().len().to_string(),
            bytes(dol.codebook().bytes()),
            dol.transition_count().to_string(),
            format!(
                "{:.4}",
                dol.transition_count() as f64 / world.doc.len() as f64
            ),
        ]);
    }
    t.print();
    println!(
        "(Paper shape: ~855 codebook entries at 247 subjects (≈25 KB); transitions for all\n\
         subjects only ~2x the 50-subject count; density below 1-in-10.)\n"
    );
}
