//! `soak` — combined chaos soak: faults, power cuts, deadlines, and
//! breaker trips against a live serving mix (not a paper artifact).
//!
//! One persistent [`SecureXmlDb`] sits on a deliberately hostile disk stack
//! — `MemDisk` → `CrashDisk` (scheduled power cuts) → `FaultDisk` (1%
//! transient read errors, always armed) → `FaultDisk` (100% transient
//! errors, armed only during *brownout* windows) — while reader threads
//! replay the Table-1 mix through [`DbReader::query_with_retry`] snapshots
//! and updater threads toggle one node's access through the
//! [`GroupCommitter`]. A [`secure_xml::CommitObserver`] runs under the
//! committer's write lock after every commit and publishes the toggle's
//! post-commit state keyed by epoch, so a reader pinned to an
//! observer-recorded epoch is classified against *that epoch's* oracle
//! exactly — not merely "one of the two" — while epochs produced outside
//! the committer (the driver's direct poison-latching writes) fall back to
//! the either-oracle check. A driver choreographs repeated chaos cycles:
//!
//! 1. **Brownout** — arm the 100%-fault layer and force cold page reads
//!    until the circuit breaker trips; while open, reads fail fast with
//!    `BreakerOpen`; disarm and keep probing until a half-open probe closes
//!    it again.
//! 2. **Power cut** — give the crash rail a 3-write budget so the next
//!    update dies mid-transaction and poisons the handle; restore power,
//!    observe the *degraded window* (epoch-consistent reads keep flowing
//!    off the stashed mirrors, updates are refused with
//!    [`DbError::Poisoned`]), then heal in process with
//!    [`SecureXmlDb::recover`] + [`SecureXmlDb::verify_integrity`].
//!
//! Readers interleave expired-[`Deadline`] probes (plus one
//! `CancelToken` cancellation) on a reserved (query, subject) pair, so the
//! typed-abort path stays exercised throughout, and *cacheable-pair*
//! probes that warm a result-cache slot before re-issuing it under an
//! expired deadline: the engine serves the warm hit `Ok` (a hit costs no
//! I/O), but the accounting classifies it as a **bounded refusal** — the
//! wire front door (`dol-server`) refuses any request whose deadline
//! lapsed before dispatch, so counting the hit as served would make the
//! in-process and wire availability columns disagree.
//!
//! **Gates (asserted every run, not only `--smoke`):** zero wrong answers —
//! every served result equals the pre- or post-toggle oracle exactly, or is
//! a fail-closed *subset* with `blocks_failed_closed > 0`; zero unexpected
//! errors — only typed availability errors (`BreakerOpen`,
//! `DeadlineExceeded`) and absorbed `StaleReader` retries ever surface;
//! zero unrecovered poison windows; at least one breaker trip, fast-fail,
//! and half-open probe; at least one deadline abort, one warm-hit bounded
//! refusal, and one cancellation, reconciled against
//! [`CacheStats::deadline_aborts`]; and after the final
//! recovery the full suite answers **exactly** (no masking), proving no
//! permanent unavailability. Machine-readable counters go to
//! `BENCH_soak.json`.

use crate::setup::{xmark_doc, TABLE1};
use crate::table::Table;
use crate::Effort;
use dol_acl::SubjectId;
use dol_nok::{QueryError, Security};
use dol_storage::{CrashDisk, CrashState, Disk, FaultConfig, FaultDisk, MemDisk, StorageError};
use dol_workloads::{synth_multi, SynthAclConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secure_xml::{
    CacheStats, DbConfig, DbError, DbReader, Deadline, ExecOptions, GroupCommitConfig,
    GroupCommitStats, GroupCommitter, RetryPolicy, SecureXmlDb,
};
use std::collections::HashMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// The fixed seed used when the caller does not supply one (CI does not).
pub const DEFAULT_SEED: u64 = 0x0D01_50AC;

/// Subjects in the synthetic ACL.
const SUBJECTS: usize = 3;
/// Normal mix draws subjects `0..MIX_SUBJECTS`; subject 2 is reserved for
/// deadline probes, so its probe pair never lands in the result cache (a
/// warm hit is served even under an expired deadline, by design).
const MIX_SUBJECTS: u32 = 2;
const PROBE_SUBJECT: SubjectId = SubjectId(2);
const READERS: usize = 2;
/// Updater threads pushing toggle commits through the group committer.
const UPDATERS: usize = 2;
/// Snapshot-refresh budget per reader operation (`StaleReader` in legacy
/// mode, `RetentionExceeded` past the ring window; the updaters are finite
/// per window, so a retry always lands).
const MAX_STALE_RETRIES: u32 = 100_000;

/// Oracle key: (Table-1 query index, subject, subtree-visibility?).
type OpKey = (usize, u32, bool);
type Oracle = HashMap<OpKey, Vec<u64>>;
/// Epoch → the toggle's post-commit accessibility for subject 1, published
/// by the commit observer under the committer's write lock. A reader
/// pinned to a recorded epoch answers exactly that epoch's oracle.
type EpochStates = Mutex<HashMap<u64, bool>>;

fn security_of(key: OpKey) -> Security {
    let s = SubjectId(key.1);
    if key.2 {
        Security::SubtreeVisibility(s)
    } else {
        Security::BindingLevel(s)
    }
}

/// Everything the soak counts, shared across reader/updater/driver threads.
#[derive(Default)]
struct Counters {
    /// Served answers equal to the pre- or post-toggle oracle.
    exact: AtomicU64,
    /// Fail-closed subsets (`blocks_failed_closed > 0`) during fault or
    /// outage windows — hidden answers, never invented ones.
    masked: AtomicU64,
    /// Answers matching neither oracle and not a flagged subset. Must be 0.
    wrong: AtomicU64,
    /// Typed availability errors (`BreakerOpen` / `DeadlineExceeded`)
    /// surfaced to a normal mix operation.
    availability_errors: AtomicU64,
    /// Anything else a reader saw. Must be 0.
    unexpected_errors: AtomicU64,
    /// Expired-deadline probes aborted with `DbError::DeadlineExceeded`.
    deadline_aborts: AtomicU64,
    /// Expired-deadline probes on a *cacheable* pair that the engine
    /// answered `Ok` from the warm result cache. The wire front door
    /// (`dol-server`) refuses any request whose deadline lapsed before
    /// dispatch, cache or no cache — so these count as bounded refusals,
    /// never as served answers.
    bounded_refusals: AtomicU64,
    /// `CancelToken` cancellations aborted the same way.
    cancel_aborts: AtomicU64,
    /// Fresh snapshots taken inside `query_with_retry` (legacy stale
    /// retries or MVCC retention-window expiries).
    stale_refreshes: AtomicU64,
    /// Answers classified against an observer-recorded *per-epoch* oracle
    /// (the strict check; the rest use the either-oracle fallback).
    epoch_checked: AtomicU64,
    /// Committed updater transactions (group-commit members).
    commits: AtomicU64,
    /// Submissions pushed back by the committer's admission control.
    gc_overloads: AtomicU64,
    /// Updates refused with `DbError::Poisoned` (degraded windows).
    refused_updates: AtomicU64,
    /// Updates that died on the failing disk (the poison moments).
    failed_updates: AtomicU64,
    /// Driver-observed poison windows (one per power cut).
    poison_windows: AtomicU64,
    /// Successful suite queries served off a *degraded* (poisoned-handle)
    /// snapshot.
    degraded_served: AtomicU64,
    /// In-process `recover()` calls that healed a poisoned handle.
    recoveries: AtomicU64,
    /// WAL transactions / pages redone across those recoveries.
    txns_redone: AtomicU64,
    pages_redone: AtomicU64,
}

impl Counters {
    fn bump(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }
}

fn is_availability(e: &DbError) -> bool {
    matches!(e, DbError::DeadlineExceeded(_))
        | matches!(
            e,
            DbError::Storage(StorageError::BreakerOpen | StorageError::DeadlineExceeded)
        )
        | matches!(
            e,
            DbError::Query(QueryError::Storage(
                StorageError::BreakerOpen | StorageError::DeadlineExceeded
            ))
        )
}

/// Classifies one served answer against the two oracle states.
fn classify(c: &Counters, got: &[u64], failed_closed: u64, allow: &[u64], deny: &[u64]) {
    if got == allow || got == deny {
        c.bump(&c.exact);
    } else if failed_closed > 0 && got.iter().all(|m| allow.contains(m) || deny.contains(m)) {
        c.bump(&c.masked);
    } else {
        c.bump(&c.wrong);
        eprintln!("WRONG ANSWER: got {got:?}, expected {allow:?} or {deny:?}");
    }
}

/// All answers for every (query, subject, mode), from an in-memory twin
/// (answers do not depend on the storage stack).
fn oracle_of(db: &SecureXmlDb) -> Oracle {
    let mut oracle = Oracle::new();
    for (qi, (_, query)) in TABLE1.iter().enumerate() {
        for subject in 0..SUBJECTS as u32 {
            for vis in [false, true] {
                let key = (qi, subject, vis);
                let r = db.query(query, security_of(key)).expect("oracle query");
                oracle.insert(key, r.matches);
            }
        }
    }
    oracle
}

/// The node the updater toggles: the deepest answer subject 1 gets from the
/// suite, so toggling it visibly changes query results. Some ACL seeds deny
/// subject 1 every suite answer; then any unsecured suite answer will do —
/// the two oracles are computed *after* the choice, so classification stays
/// sound even if the flip changes no secure answer.
fn pick_toggle(db: &SecureXmlDb) -> u64 {
    for sec in [Security::BindingLevel(SubjectId(1)), Security::None] {
        for (_, query) in &TABLE1 {
            let r = db.query(query, sec).expect("toggle probe");
            if let Some(&m) = r.matches.last() {
                return m;
            }
        }
    }
    panic!("the suite has no answers at all on this document");
}

/// One reader thread: Table-1 mix through `query_with_retry`, with every
/// 9th operation replaced by an expired-deadline probe.
#[allow(clippy::too_many_arguments)]
fn reader_loop(
    db: &RwLock<SecureXmlDb>,
    allow: &Oracle,
    deny: &Oracle,
    epochs: &EpochStates,
    c: &Counters,
    stop: &AtomicBool,
    seed: u64,
    idx: usize,
) {
    let mut rng = StdRng::seed_from_u64(seed ^ (idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let fresh = |c: &Counters| -> DbReader {
        c.bump(&c.stale_refreshes);
        db.read().expect("db lock").reader()
    };
    let mut reader = db.read().expect("db lock").reader();
    let mut op = 0u64;
    while !stop.load(Ordering::Relaxed) {
        op += 1;
        if op.is_multiple_of(18) {
            // Cacheable-pair probe: warm this reader's own (query, subject,
            // epoch) result-cache slot, then re-issue the same pair under
            // an already-expired deadline. The warm hit is served `Ok` by
            // design (a hit costs no I/O) — but the wire front door refuses
            // a pre-expired deadline at dispatch, so the accounting here
            // classifies that `Ok` as a *bounded refusal*; a cold second
            // read (the slot was evicted in between) aborts typed and lands
            // in the reconciled deadline-abort column instead.
            let sec = Security::BindingLevel(SubjectId(0));
            match reader.query(TABLE1[0].1, sec) {
                Ok(_) => {
                    let opts = ExecOptions {
                        deadline: Deadline::after(Duration::ZERO),
                        ..ExecOptions::default()
                    };
                    match reader.query_opts(TABLE1[0].1, sec, opts) {
                        Ok(_) => c.bump(&c.bounded_refusals),
                        Err(DbError::DeadlineExceeded(_)) => c.bump(&c.deadline_aborts),
                        Err(DbError::StaleReader { .. } | DbError::RetentionExceeded { .. }) => {
                            reader = fresh(c)
                        }
                        Err(e) if is_availability(&e) => c.bump(&c.availability_errors),
                        Err(_) => c.bump(&c.unexpected_errors),
                    }
                }
                Err(DbError::StaleReader { .. } | DbError::RetentionExceeded { .. }) => {
                    reader = fresh(c)
                }
                Err(e) if is_availability(&e) => c.bump(&c.availability_errors),
                Err(_) => c.bump(&c.unexpected_errors),
            }
            continue;
        }
        if op.is_multiple_of(9) {
            // Expired-deadline probe on the reserved pair: never cached, so
            // it must abort with the typed error, not a partial answer.
            let opts = ExecOptions {
                deadline: Deadline::after(Duration::ZERO),
                ..ExecOptions::default()
            };
            match reader.query_opts(TABLE1[0].1, Security::BindingLevel(PROBE_SUBJECT), opts) {
                Err(DbError::DeadlineExceeded(stats)) => {
                    assert_eq!(stats.blocks_failed_closed, 0, "abort is not fail-closed");
                    c.bump(&c.deadline_aborts);
                }
                Err(DbError::StaleReader { .. } | DbError::RetentionExceeded { .. }) => {
                    reader = fresh(c)
                }
                Err(e) if is_availability(&e) => c.bump(&c.availability_errors),
                Ok(_) => c.bump(&c.unexpected_errors),
                Err(_) => c.bump(&c.unexpected_errors),
            }
            continue;
        }
        let key = (
            rng.gen_range(0..TABLE1.len()),
            rng.gen_range(0..MIX_SUBJECTS),
            rng.gen_bool(0.25),
        );
        match reader.query_with_retry(TABLE1[key.0].1, security_of(key), MAX_STALE_RETRIES, || {
            fresh(c)
        }) {
            Ok(r) => {
                // The reader is pinned to one epoch; if the commit observer
                // recorded that epoch's toggle state, demand *that* oracle.
                let recorded = epochs
                    .lock()
                    .expect("epoch map")
                    .get(&reader.epoch())
                    .copied();
                match recorded {
                    Some(allowed) => {
                        let expect = if allowed { &allow[&key] } else { &deny[&key] };
                        classify(c, &r.matches, r.stats.blocks_failed_closed, expect, expect);
                        c.bump(&c.epoch_checked);
                    }
                    None => classify(
                        c,
                        &r.matches,
                        r.stats.blocks_failed_closed,
                        &allow[&key],
                        &deny[&key],
                    ),
                }
            }
            Err(e) if is_availability(&e) => c.bump(&c.availability_errors),
            Err(e) => {
                c.bump(&c.unexpected_errors);
                eprintln!("reader {idx}: unexpected error: {e}");
            }
        }
    }
}

/// One updater thread: toggles the node's access for subject 1 through the
/// group committer. Two of these run, so concurrent submissions can fold
/// into one batch. Failures are the chaos working as intended — counted,
/// never fatal here (the driver heals; the final exact-suite check proves
/// nothing was lost).
fn updater_loop(
    gc: &GroupCommitter,
    toggle: u64,
    c: &Counters,
    stop: &AtomicBool,
    enabled: &AtomicBool,
    idx: usize,
) {
    let mut state = idx.is_multiple_of(2);
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_micros(500));
        // The driver parks the updaters during brownout windows: a commit's
        // successful page *writes* would keep resetting the breaker's
        // consecutive-failure run, hiding the read outage it is staging.
        if !enabled.load(Ordering::Relaxed) {
            continue;
        }
        let next = state;
        match gc.submit_fn(move |d| d.set_node_access(toggle, SubjectId(1), next)) {
            Ok(()) => {
                c.bump(&c.commits);
                state = !state;
            }
            // The batch's commit failed (power cut) or the handle was
            // already poisoned when the member ran — either way the member
            // was refused whole, never half-applied.
            Err(DbError::Poisoned) => c.bump(&c.refused_updates),
            Err(DbError::Overloaded) => c.bump(&c.gc_overloads),
            Err(_) => c.bump(&c.failed_updates),
        }
    }
}

/// Forces physical page reads so brownout faults reach the disk. Point
/// lookups won't do: the §3.3 page-skip answers most `code_at` calls from
/// the in-memory directory. An *unsecured* query has no fail-closed mask,
/// so it must walk node records off the pages — on the deliberately tiny
/// pool that is a stream of physical reads, and its errors (the point)
/// feed the breaker.
fn force_reads(db: &RwLock<SecureXmlDb>, salt: u64) {
    let g = db.read().expect("db lock");
    // The six queries' working set can fit even the 6-frame pool once the
    // readers have warmed it, and a fully cached walk never touches the
    // breaker at all — drop the cache so the walk below issues physical
    // reads. Failures (e.g. a dirty flush refused by an open breaker) just
    // leave pages cached; the next call retries.
    let _ = g.drop_page_cache();
    let reader = g.reader();
    let (_, query) = TABLE1[(salt % TABLE1.len() as u64) as usize];
    let _ = reader.query(query, Security::None);
}

/// Heals a poisoned handle in process and records the report.
fn recover_if_poisoned(db: &RwLock<SecureXmlDb>, c: &Counters) {
    let mut g = db.write().expect("db lock");
    if !g.is_poisoned() {
        return;
    }
    let report = g
        .recover()
        .expect("in-process recovery must succeed with power restored")
        .expect("persistent recovery replays the log");
    g.verify_integrity().expect("healed image must verify");
    c.bump(&c.recoveries);
    c.txns_redone
        .fetch_add(report.committed_txns, Ordering::Relaxed);
    c.pages_redone
        .fetch_add(report.pages_redone, Ordering::Relaxed);
}

/// Runs the full suite through one snapshot, counting into `served`;
/// every answer is still oracle-checked.
fn drain_suite(reader: &DbReader, allow: &Oracle, deny: &Oracle, c: &Counters, served: &AtomicU64) {
    for (qi, (_, query)) in TABLE1.iter().enumerate() {
        for subject in 0..MIX_SUBJECTS {
            let key = (qi, subject, false);
            match reader.query(query, security_of(key)) {
                Ok(r) => {
                    classify(
                        c,
                        &r.matches,
                        r.stats.blocks_failed_closed,
                        &allow[&key],
                        &deny[&key],
                    );
                    served.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if is_availability(&e) => c.bump(&c.availability_errors),
                Err(DbError::StaleReader { .. } | DbError::RetentionExceeded { .. }) => {}
                Err(e) => {
                    c.bump(&c.unexpected_errors);
                    eprintln!("degraded suite: unexpected error: {e}");
                }
            }
        }
    }
}

/// Runs the chaos soak. `--smoke` shrinks the schedule to CI size; the
/// gates are asserted in every mode.
pub fn run(effort: Effort, seed: u64, smoke: bool) {
    println!("Chaos soak (seed {seed:#x})\n");
    let scale = if smoke {
        0.02
    } else {
        effort.scale(0.03, 0.15)
    };
    let cycles = if smoke { 2 } else { effort.pick(3, 6) };
    let dwell = Duration::from_millis(if smoke { 15 } else { 40 });

    let doc = xmark_doc(scale);
    let nodes = doc.len();
    let acl = SynthAclConfig {
        propagation_ratio: 0.05,
        accessibility_ratio: 0.6,
        sibling_locality: 0.5,
        seed,
    };
    // Two oracle states: the base map with the toggle node allowed vs
    // denied for subject 1. Every mid-run answer must equal one of them.
    let mut map_allow = synth_multi(&doc, &acl, SUBJECTS);
    let probe = SecureXmlDb::from_document(doc.clone(), &map_allow).expect("probe twin");
    let toggle = pick_toggle(&probe);
    drop(probe);
    map_allow.set(SubjectId(1), dol_xml::NodeId(toggle as u32), true);
    let mut map_deny = synth_multi(&doc, &acl, SUBJECTS);
    map_deny.set(SubjectId(1), dol_xml::NodeId(toggle as u32), false);
    let allow_twin = SecureXmlDb::from_document(doc.clone(), &map_allow).expect("allow twin");
    let deny_twin = SecureXmlDb::from_document(doc.clone(), &map_deny).expect("deny twin");
    let oracle_allow = oracle_of(&allow_twin);
    let oracle_deny = oracle_of(&deny_twin);
    drop(deny_twin);

    // The hostile stack: MemDisk → CrashDisk → FaultDisk(1% transient,
    // always on) → FaultDisk(100% transient, brownout windows only).
    let data_raw = Arc::new(MemDisk::new());
    allow_twin
        .save_to_disk(data_raw.clone())
        .expect("save image");
    drop(allow_twin);
    println!(
        "({} nodes, {}-page image on a 6-frame pool, {cycles} chaos cycles)\n",
        nodes,
        data_raw.num_pages(),
    );
    let crash = CrashState::unlimited();
    let transient = Arc::new(FaultDisk::new(
        Arc::new(CrashDisk::new(data_raw, crash.clone())),
        FaultConfig {
            seed,
            transient_read_error: 0.01,
            ..FaultConfig::default()
        },
    ));
    let brownout = Arc::new(FaultDisk::new(
        transient.clone() as Arc<dyn Disk>,
        FaultConfig {
            seed: seed ^ 0xB0,
            transient_read_error: 1.0,
            ..FaultConfig::default()
        },
    ));
    brownout.set_armed(false);
    let wal_disk: Arc<dyn Disk> = Arc::new(CrashDisk::new(Arc::new(MemDisk::new()), crash.clone()));
    let db = SecureXmlDb::open_on(
        brownout.clone(),
        wal_disk,
        DbConfig {
            // Far smaller than the image, so queries keep evicting and
            // re-reading pages — faults stay reachable all soak long.
            buffer_pool_pages: 6,
            max_records_per_block: 16,
            epoch_retain: 8,
        },
    )
    .expect("open on hostile stack");
    db.set_retry_policy(RetryPolicy {
        max_attempts: 4,
        backoff_start: Duration::from_micros(20),
        backoff_cap: Duration::from_micros(200),
        breaker_threshold: 4,
        breaker_probe_every: 4,
    });
    db.reset_io_stats();
    let io0 = db.io_stats();
    let db = Arc::new(RwLock::new(db));
    let c = Counters::default();
    let stop = AtomicBool::new(false);
    let updates_enabled = AtomicBool::new(true);

    // The group committer owns the write path. Its observer runs under the
    // write lock after every commit attempt and publishes the toggle's
    // post-commit state keyed by the new epoch — the per-epoch oracle the
    // readers hold pinned snapshots against. A probe that fails under
    // chaos just skips the entry (those epochs use the fallback check).
    let epoch_states = Arc::new(EpochStates::default());
    let obs_states = Arc::clone(&epoch_states);
    let gc = GroupCommitter::with_observer(
        Arc::clone(&db),
        GroupCommitConfig {
            queue_capacity: 8,
            max_batch: 4,
            flush_interval: Duration::from_micros(500),
        },
        Some(Box::new(move |d: &SecureXmlDb, healthy: bool| {
            if !healthy {
                return;
            }
            if let Ok(allowed) = d.reader().accessible(toggle, SubjectId(1)) {
                obs_states
                    .lock()
                    .expect("epoch map")
                    .insert(d.epoch(), allowed);
            }
        })),
    );

    std::thread::scope(|scope| {
        for idx in 0..READERS {
            let db = &db;
            let epochs = &*epoch_states;
            let (allow, deny, c, stop) = (&oracle_allow, &oracle_deny, &c, &stop);
            scope.spawn(move || reader_loop(db, allow, deny, epochs, c, stop, seed, idx));
        }
        for idx in 0..UPDATERS {
            let (gc, c, stop, enabled) = (&gc, &c, &stop, &updates_enabled);
            scope.spawn(move || updater_loop(gc, toggle, c, stop, enabled, idx));
        }

        // ---- the driver: one brownout + one power cut per cycle ----
        for cycle in 0..cycles {
            std::thread::sleep(dwell);

            // Brownout: trip the breaker, fast-fail while open, then let a
            // half-open probe close it.
            updates_enabled.store(false, Ordering::Relaxed);
            brownout.set_armed(true);
            let trips0 = db.read().expect("db lock").io_stats().breaker_trips;
            let mut spin = 0u64;
            while db.read().expect("db lock").io_stats().breaker_trips == trips0 && spin < 3000 {
                force_reads(&db, spin);
                spin += 1;
            }
            for i in 0..8 {
                force_reads(&db, 9000 + i); // fast-fails while open
            }
            brownout.set_armed(false);
            let mut spin = 0u64;
            while db.read().expect("db lock").breaker_is_open() && spin < 3000 {
                force_reads(&db, 20_000 + spin);
                spin += 1;
            }
            updates_enabled.store(true, Ordering::Relaxed);
            // A brownout-window update may have poisoned the handle; heal
            // before scheduling the power cut so the cut gets its own window.
            recover_if_poisoned(&db, &c);

            // Power cut: a 3-write budget kills the next transaction
            // mid-flight. Nudge updates until the poison latches.
            crash.restore_power(3);
            let mut flip = cycle % 2 == 0;
            let mut attempts = 0;
            while !db.read().expect("db lock").is_poisoned() && attempts < 50 {
                let mut g = db.write().expect("db lock");
                let _ = g.set_node_access(toggle, SubjectId(1), flip);
                flip = !flip;
                attempts += 1;
            }
            crash.restore_power(u64::MAX);
            // Cut-window read failures may have opened the breaker; that is
            // an availability knob, not poison — clear it for the window.
            db.read().expect("db lock").reset_breaker();

            if db.read().expect("db lock").is_poisoned() {
                c.bump(&c.poison_windows);
                // Degraded window: epoch-consistent reads keep flowing off
                // the stashed mirrors; updates are refused, typed.
                let g = db.read().expect("db lock");
                let degraded = g.reader();
                drain_suite(
                    &degraded,
                    &oracle_allow,
                    &oracle_deny,
                    &c,
                    &c.degraded_served,
                );
                drop(g);
                let mut g = db.write().expect("db lock");
                match g.set_node_access(toggle, SubjectId(1), true) {
                    Err(DbError::Poisoned) => c.bump(&c.refused_updates),
                    other => panic!("poisoned update must be refused, got {other:?}"),
                }
                drop(g);
                std::thread::sleep(dwell); // let the reader threads ride it
            }
            recover_if_poisoned(&db, &c);

            // With power restored and the handle healed, push one toggle
            // commit through the committer and, if the observer recorded
            // the resulting epoch, drain the suite against exactly that
            // epoch's oracle — the strict MVCC classification.
            let desired = cycle % 2 == 0;
            for _ in 0..5 {
                match gc.submit_fn(move |d| d.set_node_access(toggle, SubjectId(1), desired)) {
                    Ok(()) => {
                        c.bump(&c.commits);
                        break;
                    }
                    Err(_) => recover_if_poisoned(&db, &c),
                }
            }
            let reader = db.read().expect("db lock").reader();
            let recorded = epoch_states
                .lock()
                .expect("epoch map")
                .get(&reader.epoch())
                .copied();
            if let Some(allowed) = recorded {
                let oracle = if allowed { &oracle_allow } else { &oracle_deny };
                drain_suite(&reader, oracle, oracle, &c, &c.epoch_checked);
            }
        }

        // One cancellation abort, for `CancelToken` coverage.
        {
            let g = db.read().expect("db lock");
            let reader = g.reader();
            let d = Deadline::never();
            d.token().cancel();
            let opts = ExecOptions {
                deadline: d,
                ..ExecOptions::default()
            };
            match reader.query_opts(TABLE1[0].1, Security::BindingLevel(PROBE_SUBJECT), opts) {
                Err(DbError::DeadlineExceeded(_)) => c.bump(&c.cancel_aborts),
                other => panic!("cancelled query must abort typed, got {other:?}"),
            }
        }

        stop.store(true, Ordering::Relaxed);
    });
    let gc_stats = gc.stats();
    gc.close();

    // ---- final: disarm everything, heal, and demand exact answers ----
    transient.set_armed(false);
    brownout.set_armed(false);
    {
        let mut g = db.write().expect("db lock");
        recover_if_poisoned_mut(&mut g, &c);
        g.reset_breaker();
        g.set_node_access(toggle, SubjectId(1), true)
            .expect("post-recovery update must succeed");
        g.verify_integrity().expect("final image must verify");
    }
    let g = db.read().expect("db lock");
    let mut final_exact = 0u64;
    let reader = g.reader();
    for (qi, (_, query)) in TABLE1.iter().enumerate() {
        for subject in 0..SUBJECTS as u32 {
            for vis in [false, true] {
                let key = (qi, subject, vis);
                let r = reader
                    .query(query, security_of(key))
                    .expect("post-recovery query");
                assert_eq!(
                    r.matches, oracle_allow[&key],
                    "post-recovery answer diverged for {key:?}"
                );
                final_exact += 1;
            }
        }
    }
    // Deterministic warm-cache bounded-refusal coverage: the suite above
    // just warmed every pair for this reader, so re-issuing one under an
    // already-expired deadline must be served from the result cache — and
    // is accounted a bounded refusal, exactly as the wire front door
    // (`dol-server`) refuses a pre-expired deadline at dispatch. The `Ok`
    // bumps no CacheStats abort counter, so the deadline reconciliation
    // below is untouched.
    let opts = ExecOptions {
        deadline: Deadline::after(Duration::ZERO),
        ..ExecOptions::default()
    };
    match reader.query_opts(TABLE1[0].1, Security::BindingLevel(SubjectId(0)), opts) {
        Ok(_) => c.bump(&c.bounded_refusals),
        Err(e) => panic!("a warm pair under an expired deadline must serve the hit: {e}"),
    }
    let io = g.io_stats().since(&io0);
    let caches = g.cache_stats();
    // Injections from both fault layers: the low-rate background schedule
    // plus the brownout windows. (The background layer alone can legally
    // flip zero coins on a short smoke run; the brownout's injections are
    // structurally guaranteed by the trip loop, so the combined count is
    // the right liveness gate for the fault plumbing.)
    let transient_injected = transient
        .stats()
        .transient_read_errors
        .load(Ordering::Relaxed)
        + brownout
            .stats()
            .transient_read_errors
            .load(Ordering::Relaxed);
    drop(g);

    print_tables(
        &c,
        io,
        &caches,
        transient_injected,
        nodes,
        final_exact,
        &gc_stats,
    );
    write_json(seed, nodes, cycles, &c, io, transient_injected, &gc_stats);
    assert_gates(&db, &c, io, &caches, transient_injected, cycles, &gc_stats);
    if smoke {
        println!("soak --smoke: all gates passed\n");
    }
}

/// `recover_if_poisoned` for an already-held write guard.
fn recover_if_poisoned_mut(g: &mut SecureXmlDb, c: &Counters) {
    if !g.is_poisoned() {
        return;
    }
    let report = g
        .recover()
        .expect("final recovery must succeed")
        .expect("persistent recovery replays the log");
    c.bump(&c.recoveries);
    c.txns_redone
        .fetch_add(report.committed_txns, Ordering::Relaxed);
    c.pages_redone
        .fetch_add(report.pages_redone, Ordering::Relaxed);
}

#[allow(clippy::too_many_arguments)]
fn print_tables(
    c: &Counters,
    io: dol_storage::IoStats,
    caches: &CacheStats,
    transient_injected: u64,
    nodes: usize,
    final_exact: u64,
    gc: &GroupCommitStats,
) {
    let ld = |a: &AtomicU64| a.load(Ordering::Relaxed).to_string();
    let mut serving = Table::new(
        &format!(
            "serving under chaos (XMark {nodes} nodes, {READERS} readers + {UPDATERS} \
             group-commit updaters)"
        ),
        &[
            "exact",
            "masked",
            "wrong",
            "avail errors",
            "bounded refusals",
            "deadline aborts",
            "cancel aborts",
            "refreshes",
            "epoch-exact",
            "degraded reads",
            "final exact",
        ],
    );
    serving.row(&[
        ld(&c.exact),
        ld(&c.masked),
        ld(&c.wrong),
        ld(&c.availability_errors),
        ld(&c.bounded_refusals),
        ld(&c.deadline_aborts),
        ld(&c.cancel_aborts),
        ld(&c.stale_refreshes),
        ld(&c.epoch_checked),
        ld(&c.degraded_served),
        final_exact.to_string(),
    ]);
    serving.print();
    println!(
        "(`wrong` must be 0: every answer equals the pre- or post-toggle oracle, or is a\n\
         flagged fail-closed subset. `epoch-exact` answers were held to their pinned\n\
         epoch's observer-recorded oracle specifically. `final exact` is the full suite\n\
         after the last recovery — exact matches only, proving no permanent\n\
         unavailability.)\n"
    );

    let mut healing = Table::new(
        "self-healing and fault plumbing",
        &[
            "poison windows",
            "recoveries",
            "txns redone",
            "pages redone",
            "refused",
            "failed",
            "commits",
            "batches",
            "max batch",
            "trips",
            "fast fails",
            "probes",
            "read retries",
            "backoffs",
            "faults injected",
        ],
    );
    healing.row(&[
        ld(&c.poison_windows),
        ld(&c.recoveries),
        ld(&c.txns_redone),
        ld(&c.pages_redone),
        ld(&c.refused_updates),
        ld(&c.failed_updates),
        ld(&c.commits),
        gc.batches.to_string(),
        gc.max_batch_seen.to_string(),
        io.breaker_trips.to_string(),
        io.breaker_fast_fails.to_string(),
        io.breaker_probes.to_string(),
        io.read_retries.to_string(),
        io.backoffs.to_string(),
        transient_injected.to_string(),
    ]);
    healing.print();
    println!(
        "(Every poison window ends in an in-process recovery; the breaker trips under the\n\
         brownout, fast-fails while open, and a half-open probe closes it. Handle-level\n\
         deadline aborts reconcile: counted {} + {} cancellations = CacheStats {}.)\n",
        c.deadline_aborts.load(Ordering::Relaxed),
        c.cancel_aborts.load(Ordering::Relaxed),
        caches.deadline_aborts,
    );
}

#[allow(clippy::too_many_arguments)]
fn assert_gates(
    db: &RwLock<SecureXmlDb>,
    c: &Counters,
    io: dol_storage::IoStats,
    caches: &CacheStats,
    transient_injected: u64,
    cycles: usize,
    gc: &GroupCommitStats,
) {
    let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
    assert_eq!(ld(&c.wrong), 0, "a served answer matched neither oracle");
    assert_eq!(ld(&c.unexpected_errors), 0, "an untyped error escaped");
    assert!(ld(&c.exact) > 0, "the mix never served an answer");
    assert!(
        ld(&c.epoch_checked) > 0,
        "no answer was ever held to a per-epoch oracle"
    );
    // Group-commit reconciliation: every Ok a submitter saw is a committer
    // commit, every member-level failure a rejection (the driver's
    // unlogged retry rejections make this a lower bound), and nothing
    // else; what remains of `submitted` is poisoned batches.
    assert_eq!(
        gc.committed,
        ld(&c.commits),
        "committer commits failed to reconcile with submitter Oks"
    );
    assert!(
        gc.rejected >= ld(&c.failed_updates),
        "member rejections failed to reconcile"
    );
    assert!(
        gc.submitted >= gc.committed + gc.rejected,
        "the committer accounted more outcomes than submissions"
    );
    assert!(gc.batches >= 1, "the committer never committed a batch");
    assert!(
        ld(&c.poison_windows) >= 1,
        "no power cut ever poisoned the handle"
    );
    assert!(
        ld(&c.recoveries) >= ld(&c.poison_windows),
        "a poison window was never healed in process"
    );
    assert!(
        !db.read().expect("db lock").is_poisoned(),
        "the soak ended poisoned"
    );
    assert!(ld(&c.degraded_served) > 0, "no degraded-window read served");
    assert!(
        ld(&c.refused_updates) >= cycles as u64,
        "updates not refused"
    );
    assert!(io.breaker_trips >= 1, "the breaker never tripped");
    assert!(
        io.breaker_fast_fails >= 1,
        "the open breaker never fast-failed"
    );
    assert!(io.breaker_probes >= 1, "no half-open probe was admitted");
    assert!(
        !db.read().expect("db lock").breaker_is_open(),
        "the breaker ended open"
    );
    assert!(ld(&c.deadline_aborts) >= 1, "no deadline abort happened");
    assert!(
        ld(&c.bounded_refusals) >= 1,
        "no warm-cache hit was reclassified as a bounded refusal"
    );
    assert!(ld(&c.cancel_aborts) >= 1, "no cancellation abort happened");
    assert_eq!(
        ld(&c.deadline_aborts) + ld(&c.cancel_aborts),
        caches.deadline_aborts,
        "deadline aborts failed to reconcile with CacheStats"
    );
    assert!(io.read_retries >= 1, "the retry ladder never ran");
    assert!(transient_injected >= 1, "no transient fault was injected");
    assert!(ld(&c.commits) >= 1, "the updater never committed");
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    seed: u64,
    nodes: usize,
    cycles: usize,
    c: &Counters,
    io: dol_storage::IoStats,
    transient_injected: u64,
    gc: &GroupCommitStats,
) {
    let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
    let out = format!(
        "{{\n  \"experiment\": \"soak\",\n  \"seed\": {seed},\n  \"nodes\": {nodes},\n  \
         \"cycles\": {cycles},\n  \"readers\": {READERS},\n  \"updaters\": {UPDATERS},\n  \
         \"exact\": {},\n  \"masked\": {},\n  \"wrong\": {},\n  \
         \"availability_errors\": {},\n  \"bounded_refusals\": {},\n  \
         \"deadline_aborts\": {},\n  \
         \"cancel_aborts\": {},\n  \"stale_refreshes\": {},\n  \"epoch_checked\": {},\n  \
         \"degraded_served\": {},\n  \"poison_windows\": {},\n  \
         \"recoveries\": {},\n  \"txns_redone\": {},\n  \"pages_redone\": {},\n  \
         \"refused_updates\": {},\n  \"failed_updates\": {},\n  \"commits\": {},\n  \
         \"gc_submitted\": {},\n  \"gc_batches\": {},\n  \"gc_max_batch\": {},\n  \
         \"gc_overloads\": {},\n  \"gc_solo_fallbacks\": {},\n  \
         \"breaker_trips\": {},\n  \"breaker_fast_fails\": {},\n  \
         \"breaker_probes\": {},\n  \"read_retries\": {},\n  \"backoffs\": {},\n  \
         \"transient_faults_injected\": {}\n}}\n",
        ld(&c.exact),
        ld(&c.masked),
        ld(&c.wrong),
        ld(&c.availability_errors),
        ld(&c.bounded_refusals),
        ld(&c.deadline_aborts),
        ld(&c.cancel_aborts),
        ld(&c.stale_refreshes),
        ld(&c.epoch_checked),
        ld(&c.degraded_served),
        ld(&c.poison_windows),
        ld(&c.recoveries),
        ld(&c.txns_redone),
        ld(&c.pages_redone),
        ld(&c.refused_updates),
        ld(&c.failed_updates),
        ld(&c.commits),
        gc.submitted,
        gc.batches,
        gc.max_batch_seen,
        gc.overloads,
        gc.solo_fallbacks,
        io.breaker_trips,
        io.breaker_fast_fails,
        io.breaker_probes,
        io.read_retries,
        io.backoffs,
        transient_injected,
    );
    match std::fs::File::create("BENCH_soak.json").and_then(|mut f| f.write_all(out.as_bytes())) {
        Ok(()) => println!("(wrote BENCH_soak.json)\n"),
        Err(e) => eprintln!("could not write BENCH_soak.json: {e}"),
    }
}
