//! Crash-recovery torture harness: a mixed update workload over the full
//! secure database, power-cut at **every** physical write point.
//!
//! The harness answers the recovery question end to end, not just at the
//! page level: after a crash anywhere inside update `i` — including inside
//! WAL recovery itself on the subsequent open — the reopened database must
//! be in *exactly* the state after `i-1` or after `i` updates. "State" is
//! judged by a fingerprint covering the serialized document, the whole
//! accessibility matrix, every node value, and the answers of a secure
//! query suite under every subject — so a single leaked or lost node, a
//! torn code run, or a stale catalog shows up as a mixed state.
//!
//! Method: an oracle pass applies the workload on healthy disks, forking
//! the data and log images after every update and fingerprinting each
//! state `S_i`. Then, for each update, a fresh database is opened on the
//! `S_{i-1}` image behind a [`CrashDisk`] power rail shared by the data and
//! log disks, the update is re-applied, and the rail is cut after `k`
//! writes for every `k` in the update's write window (odd `k` also tears
//! the fatal write at a sector boundary). The raw disks are then reopened —
//! running real WAL recovery — integrity-checked, and fingerprinted.

use crate::table::Table;
use crate::Effort;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secure_xml::acl::SubjectId;
use secure_xml::storage::{CrashDisk, CrashState, Disk, MemDisk};
use secure_xml::workloads::{synth_multi, SynthAclConfig};
use secure_xml::{DbConfig, DbError, SecureXmlDb, Security};
use std::sync::Arc;

/// The fixed seed used when the caller does not supply one (CI does not).
pub const DEFAULT_SEED: u64 = 13_639_585;

/// The secure query suite every recovered state must answer identically.
const QUERIES: &[&str] = &["//item[name]", "//people/person", "//keyword"];

/// One concrete update of the workload (positions already resolved, so a
/// replay applies exactly the same mutation).
enum Op {
    SetNode(u64, u32, bool),
    SetSubtree(u64, u32, bool),
    Delete(u64),
    Insert(u64, String),
    Move(u64, u64),
    AddSubject(Option<u32>),
    RemoveSubject(u32),
    Checkpoint,
}

impl Op {
    fn kind(&self) -> &'static str {
        match self {
            Op::SetNode(..) => "set-node",
            Op::SetSubtree(..) => "set-subtree",
            Op::Delete(..) => "delete",
            Op::Insert(..) => "insert",
            Op::Move(..) => "move",
            Op::AddSubject(..) => "add-subject",
            Op::RemoveSubject(..) => "remove-subject",
            Op::Checkpoint => "checkpoint",
        }
    }
}

fn apply(db: &mut SecureXmlDb, op: &Op) -> Result<(), DbError> {
    match op {
        Op::SetNode(pos, s, allow) => db.set_node_access(*pos, SubjectId(*s), *allow),
        Op::SetSubtree(pos, s, allow) => db.set_subtree_access(*pos, SubjectId(*s), *allow),
        Op::Delete(pos) => db.delete_subtree(*pos),
        Op::Insert(parent, xml) => {
            let sub = secure_xml::xml::parse(xml).expect("harness subtree parses");
            db.insert_subtree(*parent, &sub).map(|_| ())
        }
        Op::Move(pos, parent) => db.move_subtree(*pos, *parent).map(|_| ()),
        Op::AddSubject(copy) => db.add_subject(copy.map(SubjectId)).map(|_| ()),
        Op::RemoveSubject(s) => db.remove_subject(SubjectId(*s)),
        Op::Checkpoint => db.checkpoint(),
    }
}

/// Draws the next valid update for the current database state.
fn gen_op(rng: &mut StdRng, db: &SecureXmlDb, step: usize) -> Op {
    if step % 9 == 8 {
        return Op::Checkpoint;
    }
    let n = db.len() as u64;
    let width = db.dol().codebook().width() as u32;
    loop {
        match rng.gen_range(0..10u32) {
            0..=2 => {
                return Op::SetNode(
                    rng.gen_range(0..n),
                    rng.gen_range(0..width),
                    rng.gen_bool(0.5),
                )
            }
            3..=4 => {
                return Op::SetSubtree(
                    rng.gen_range(0..n),
                    rng.gen_range(0..width),
                    rng.gen_bool(0.5),
                )
            }
            5 => {
                if n < 60 {
                    continue;
                }
                let pos = rng.gen_range(1..n);
                let size = db.store().node(pos).expect("node").size as u64;
                if size > 25 {
                    continue;
                }
                return Op::Delete(pos);
            }
            6 => {
                let parent = rng.gen_range(0..n);
                let tag = ["extra", "note", "flag"][rng.gen_range(0..3usize)];
                let xml = format!("<{tag}><w>v{}</w></{tag}>", rng.gen_range(0..1000u32));
                return Op::Insert(parent, xml);
            }
            7 => {
                if n < 60 {
                    continue;
                }
                let pos = rng.gen_range(1..n);
                let size = db.store().node(pos).expect("node").size as u64;
                if size > 25 {
                    continue;
                }
                let parent = rng.gen_range(0..n);
                if parent >= pos && parent < pos + size {
                    continue;
                }
                return Op::Move(pos, parent);
            }
            8 => {
                if width >= 8 {
                    continue;
                }
                let copy = rng.gen_bool(0.5).then(|| rng.gen_range(0..width));
                return Op::AddSubject(copy);
            }
            _ => {
                if db.dol().codebook().live_subjects() <= 2 {
                    continue;
                }
                let s = rng.gen_range(0..width);
                if db.dol().codebook().is_removed(SubjectId(s)) {
                    continue;
                }
                return Op::RemoveSubject(s);
            }
        }
    }
}

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// FNV-1a over everything observable: document shape, accessibility matrix,
/// values, and the secure answers of [`QUERIES`] under every subject.
fn fingerprint(db: &SecureXmlDb) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    fnv(&mut h, db.document().to_xml().as_bytes());
    let width = db.dol().codebook().width() as u32;
    fnv(&mut h, &u64::from(width).to_le_bytes());
    let n = db.len() as u64;
    for s in 0..width {
        for p in 0..n {
            fnv(
                &mut h,
                &[u8::from(
                    db.accessible(p, SubjectId(s)).expect("accessible"),
                )],
            );
        }
    }
    for p in 0..n {
        if let Some(v) = db.value(p).expect("value") {
            fnv(&mut h, v.as_bytes());
        }
        fnv(&mut h, b"|");
    }
    for q in QUERIES {
        for s in 0..width {
            let res = db
                .query(q, Security::BindingLevel(SubjectId(s)))
                .expect("query");
            for m in res.matches {
                fnv(&mut h, &m.to_le_bytes());
            }
            fnv(&mut h, b";");
        }
    }
    h
}

fn open(data: Arc<dyn Disk>, log: Arc<dyn Disk>, cfg: DbConfig) -> Result<SecureXmlDb, DbError> {
    SecureXmlDb::open_on(data, log, cfg)
}

/// Runs the torture harness: `--quick` sweeps a smaller workload, `--full`
/// the acceptance-scale one (≥200 mixed updates). Panics on any mixed
/// state, integrity failure, or unrecoverable image — CI treats the run as
/// the assertion.
pub fn run(effort: Effort, seed: u64) {
    let ops_n = effort.pick(60, 220);
    let cfg = DbConfig {
        // Deliberately tiny: transactions must spill, evict and fault pages
        // back in, so data-page writes interleave with WAL writes.
        buffer_pool_pages: 40,
        max_records_per_block: 16,
        epoch_retain: 8,
    };
    println!("Crash-recovery torture harness (seed {seed}, {ops_n} updates)\n");

    // Initial secured document, saved to a memory image.
    let doc = crate::setup::xmark_doc(effort.scale(0.01, 0.04));
    let map = synth_multi(
        &doc,
        &SynthAclConfig {
            propagation_ratio: 0.05,
            accessibility_ratio: 0.6,
            sibling_locality: 0.5,
            seed,
        },
        3,
    );
    let db0 = SecureXmlDb::with_config(doc, &map, cfg).expect("build");
    let base_data = Arc::new(MemDisk::new());
    db0.save_to_disk(base_data.clone()).expect("save image");
    drop(db0);

    // Oracle pass: healthy run, forking both disks after every update.
    let data = base_data;
    let log = Arc::new(MemDisk::new());
    let mut oracle = open(data.clone(), log.clone(), cfg).expect("open oracle");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut snaps: Vec<(MemDisk, MemDisk)> = vec![(data.fork(), log.fork())];
    let mut fps: Vec<u64> = vec![fingerprint(&oracle)];
    let mut ops: Vec<Op> = Vec::with_capacity(ops_n);
    for step in 0..ops_n {
        let op = gen_op(&mut rng, &oracle, step);
        apply(&mut oracle, &op).expect("healthy update");
        ops.push(op);
        snaps.push((data.fork(), log.fork()));
        fps.push(fingerprint(&oracle));
    }
    println!(
        "oracle: {} nodes, {} subjects after {} updates\n",
        oracle.len(),
        oracle.dol().codebook().width(),
        ops_n
    );
    drop(oracle);

    // Crash sweep: for each update, cut the power at every write point of
    // its window (open S_{i-1} + apply op_i), then recover and judge.
    let mut t = Table::new(
        "crash sweep (every physical write point, alternating torn writes)",
        &[
            "op kind",
            "ops",
            "crash points",
            "pre-state",
            "post-state",
            "crashed in recovery",
        ],
    );
    let mut by_kind: std::collections::BTreeMap<&'static str, [u64; 4]> =
        std::collections::BTreeMap::new();
    let mut total_points = 0u64;
    for (i, op) in ops.iter().enumerate() {
        // Write window: replay once with an uncuttable rail.
        let window = {
            let d = Arc::new(snaps[i].0.fork());
            let l = Arc::new(snaps[i].1.fork());
            let state = CrashState::unlimited();
            let mut db = open(
                Arc::new(CrashDisk::new(d, state.clone())),
                Arc::new(CrashDisk::new(l, state.clone())),
                cfg,
            )
            .expect("open replay");
            apply(&mut db, op).expect("healthy replay");
            assert_eq!(
                fingerprint(&db),
                fps[i + 1],
                "replay of op {i} diverged from the oracle"
            );
            state.writes_issued()
        };
        let counts = by_kind.entry(op.kind()).or_default();
        counts[0] += 1;
        for k in 0..window {
            let d = Arc::new(snaps[i].0.fork());
            let l = Arc::new(snaps[i].1.fork());
            let state = CrashState::new(k, k % 2 == 1, seed ^ (i as u64) << 20 ^ k);
            let survived_open = match open(
                Arc::new(CrashDisk::new(d.clone(), state.clone())),
                Arc::new(CrashDisk::new(l.clone(), state.clone())),
                cfg,
            ) {
                Ok(mut db) => {
                    let _ = apply(&mut db, op);
                    true
                }
                Err(_) => false,
            };
            // Reopen the raw disks: recovery must land on a state boundary.
            let db = open(d, l, cfg).unwrap_or_else(|e| {
                panic!(
                    "op {i} ({}) crash at write {k}: unrecoverable image: {e}",
                    op.kind()
                )
            });
            db.store()
                .check_integrity()
                .unwrap_or_else(|e| panic!("op {i} crash at write {k}: integrity: {e}"));
            let f = fingerprint(&db);
            if f == fps[i] {
                counts[1] += 1;
            } else if f == fps[i + 1] {
                counts[2] += 1;
            } else {
                panic!(
                    "MIXED STATE: op {i} ({}) crash at write {k} recovered to \
                     neither S_{i} nor S_{}",
                    op.kind(),
                    i + 1
                );
            }
            if !survived_open {
                counts[3] += 1;
            }
            total_points += 1;
        }
    }
    for (kind, c) in &by_kind {
        t.row(&[
            (*kind).into(),
            c[0].to_string(),
            (c[1] + c[2]).to_string(),
            c[1].to_string(),
            c[2].to_string(),
            c[3].to_string(),
        ]);
    }
    t.print();
    println!(
        "\n{total_points} crash points, every recovery an exact before- or \
         after-state (zero mixed states)\n"
    );
}
