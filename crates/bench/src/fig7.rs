//! Figure 7: ε-NoK vs non-secure NoK as a function of node accessibility.
//!
//! For each of Q1–Q3 the paper plots two series against the percentage of
//! accessible nodes: the processing-time ratio ε-NoK / NoK and the
//! answers-returned ratio. We reproduce both, plus the physical-I/O story
//! behind them: cold-cache page reads for the secured and unsecured runs,
//! and the number of candidates rejected purely from in-memory block
//! headers (the page-skip optimization that can make ε-NoK *faster* at low
//! accessibility).

use crate::setup::{
    synth_column, xmark_doc, BenchDb, ColumnOracle, Q3_SINGLE_PATH, SUBJECT, TABLE1,
};
use crate::table::{f3, Table};
use crate::Effort;
use dol_nok::Security;
use std::time::Instant;

/// One measured cell.
struct Cell {
    time_ratio: f64,
    answer_ratio: f64,
    io_ratio: f64,
    blocks_skipped: u64,
}

fn measure(db: &BenchDb, query: &str, reps: usize) -> Cell {
    let engine = db.engine();
    // Warm-up + answer counts.
    let unsec = engine.execute(query, Security::None).expect("query");
    let sec = engine
        .execute(query, Security::BindingLevel(SUBJECT))
        .expect("query");
    // Cold-cache physical reads.
    db.pool.clear_cache().expect("clear");
    db.pool.reset_stats();
    let _ = engine.execute(query, Security::None).expect("query");
    let unsec_io = db.pool.stats().physical_reads.max(1);
    db.pool.clear_cache().expect("clear");
    db.pool.reset_stats();
    let _ = engine
        .execute(query, Security::BindingLevel(SUBJECT))
        .expect("query");
    let sec_io = db.pool.stats().physical_reads.max(1);
    // Warm timing, best-of-reps on both sides.
    let time = |security: Security| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t = Instant::now();
            let _ = engine.execute(query, security).expect("query");
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };
    let t_unsec = time(Security::None);
    let t_sec = time(Security::BindingLevel(SUBJECT));
    Cell {
        time_ratio: t_sec / t_unsec,
        answer_ratio: sec.matches.len() as f64 / unsec.matches.len().max(1) as f64,
        io_ratio: sec_io as f64 / unsec_io as f64,
        blocks_skipped: sec.stats.blocks_skipped,
    }
}

/// Runs Figure 7 for Q1, Q2 and the single-path Q3' (plus the printed Q3).
///
/// Each cell averages several independent ACL instances, with the document
/// root forced accessible in every instance — with a single subject and one
/// trial, a denied root would zero out every anchored query and the plot
/// would measure coin flips instead of the trend the paper reports.
pub fn run(effort: Effort) {
    let doc = xmark_doc(effort.scale(0.3, 2.5));
    let n = doc.len();
    let reps = effort.pick(3, 7);
    let trials = effort.pick(3, 5);
    println!(
        "Figure 7: e-NoK / NoK ratios on XMark ({} nodes), single subject, synthetic ACLs\n\
         (each cell averages {trials} ACL instances; root forced accessible)\n",
        n
    );
    let queries = [TABLE1[0], TABLE1[1], Q3_SINGLE_PATH, TABLE1[2]];
    for (id, q) in queries {
        let mut t = Table::new(
            &format!("fig7 {id}: {q}"),
            &[
                "access%",
                "time e-NoK/NoK",
                "answers e/plain",
                "cold-IO e/plain",
                "blocks skipped",
            ],
        );
        for acc10 in [1usize, 3, 5, 6, 7, 8, 9] {
            let acc = acc10 as f64 / 10.0;
            let mut sum = Cell {
                time_ratio: 0.0,
                answer_ratio: 0.0,
                io_ratio: 0.0,
                blocks_skipped: 0,
            };
            for trial in 0..trials {
                let mut col = synth_column(&doc, acc, 0.03, 42 + (acc10 * 31 + trial) as u64);
                // Force the shallow structural skeleton (depth ≤ 2: site,
                // regions, the continents, the category list) accessible:
                // with a single subject and a handful of instances, a denied
                // spine node zeroes every anchored query and the plot would
                // measure that coin flip instead of the leaf-level filtering
                // trend the paper reports.
                for id in doc.preorder() {
                    if doc.node(id).depth <= 2 {
                        col.set(id.index(), true);
                    }
                }
                let db = BenchDb::build(doc.clone(), &ColumnOracle(col), 8192);
                let cell = measure(&db, q, reps);
                sum.time_ratio += cell.time_ratio;
                sum.answer_ratio += cell.answer_ratio;
                sum.io_ratio += cell.io_ratio;
                sum.blocks_skipped += cell.blocks_skipped;
            }
            let k = trials as f64;
            t.row(&[
                format!("{}%", acc10 * 10),
                f3(sum.time_ratio / k),
                f3(sum.answer_ratio / k),
                f3(sum.io_ratio / k),
                (sum.blocks_skipped / trials as u64).to_string(),
            ]);
        }
        t.print();
    }
    println!(
        "(Paper shape: the time ratio hovers near 1.0 — within a few percent — independent\n\
         of the accessibility ratio, because accessibility checks ride on pages evaluation\n\
         reads anyway; at very low accessibility the in-memory page-skip test lets the\n\
         secured run do LESS work than the unsecured one, pushing ratios below 1.)\n"
    );
}
