//! Interpreted vs compiled twig execution on the Table-1 mix.
//!
//! Both sides run with a **warm plan cache** (the query is parsed once, so
//! the comparison isolates execution, not lexing) and **no result cache**
//! (the engine has none — every run touches the matcher). The compiled side
//! reuses one [`dol_nok::CompiledPlan`] lowering from the
//! [`dol_nok::PlanCache`]; the interpreted side re-derives its matcher
//! tables per execution, which is exactly what the lowering amortizes. Each
//! query runs under both security modes and against both a cold and a warm
//! buffer pool, reporting p50/p99 latencies, per-query speedups, and the
//! mix-level p50 speedup the acceptance gate reads.
//!
//! Answers are asserted byte-identical between the two paths on **every**
//! run in every configuration (`--smoke` runs a small pinned instance and
//! relies on the same assertions); the speedup ratio is recorded, never
//! gated, so CI stays robust to noisy neighbors.

use crate::setup::{
    synth_column, xmark_doc, BenchDb, ColumnOracle, Q3_SINGLE_PATH, SUBJECT, TABLE1,
};
use crate::table::Table;
use crate::Effort;
use dol_nok::{ExecOptions, PlanCache, QueryEngine, Security};
use std::io::Write;
use std::time::Instant;

/// One (query, security, cache-temperature) measurement pair.
struct Row {
    query_id: &'static str,
    security: &'static str,
    cache: &'static str,
    interpreted_p50_us: f64,
    interpreted_p99_us: f64,
    compiled_p50_us: f64,
    compiled_p99_us: f64,
    answers: usize,
}

impl Row {
    fn speedup_p50(&self) -> f64 {
        if self.compiled_p50_us == 0.0 {
            return 1.0;
        }
        self.interpreted_p50_us / self.compiled_p50_us
    }
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

/// Times `iters` runs of `run`, returning sorted latencies in nanoseconds.
/// `prepare` runs before each iteration outside the timed window (the cold
/// configurations clear the buffer pool there).
fn time_runs(
    iters: usize,
    mut prepare: impl FnMut(),
    mut run: impl FnMut() -> Vec<u64>,
    expect: &[u64],
) -> Vec<u64> {
    let mut ns = Vec::with_capacity(iters);
    for _ in 0..iters {
        prepare();
        let t = Instant::now();
        let matches = run();
        ns.push(t.elapsed().as_nanos() as u64);
        assert_eq!(matches, expect, "answers must be byte-identical every run");
    }
    ns.sort_unstable();
    ns
}

/// Runs the compiled-execution experiment. `smoke` pins a small instance;
/// the byte-identity assertions hold in every mode.
pub fn run(effort: Effort, seed: u64, smoke: bool) {
    let scale = if smoke { 0.05 } else { effort.scale(0.2, 1.0) };
    let warm_iters = if smoke { 9 } else { effort.pick(31, 101) };
    let cold_iters = if smoke { 5 } else { effort.pick(9, 21) };
    let doc = xmark_doc(scale);
    let nodes = doc.len();
    let col = synth_column(&doc, 0.6, 0.05, seed);
    let db = BenchDb::build(doc, &ColumnOracle(col), 4096);
    let engine: QueryEngine<'_> = db.engine();
    let cache = PlanCache::new(16);

    println!(
        "compiled vs interpreted twig execution (XMark {nodes} nodes, seed {seed}, \
         warm plan cache, no result cache)\n"
    );

    let mut queries: Vec<(&str, &str)> = TABLE1.to_vec();
    queries.push(Q3_SINGLE_PATH);
    let mut rows: Vec<Row> = Vec::new();
    for (qid, q) in &queries {
        // Parse once, lower once: the warm plan cache both sides share.
        let (plan, compiled) = cache
            .get_or_compile(q, db.doc.tags())
            .expect("Table-1 query parses");
        for (sec_name, sec) in [
            ("none", Security::None),
            ("binding", Security::BindingLevel(SUBJECT)),
        ] {
            let interp_opts = ExecOptions {
                compiled: false,
                ..ExecOptions::default()
            };
            // The interpreted answer is the reference for both paths.
            let expect = engine
                .execute_plan_opts(&plan, sec, interp_opts.clone())
                .expect("interpreted run")
                .matches;
            for (cache_name, cold) in [("warm", false), ("cold", true)] {
                let iters = if cold { cold_iters } else { warm_iters };
                let prepare = || {
                    if cold {
                        db.pool.clear_cache().expect("clear");
                    }
                };
                let interp = time_runs(
                    iters,
                    prepare,
                    || {
                        engine
                            .execute_plan_opts(&plan, sec, interp_opts.clone())
                            .expect("interpreted run")
                            .matches
                    },
                    &expect,
                );
                let prepare = || {
                    if cold {
                        db.pool.clear_cache().expect("clear");
                    }
                };
                let comp = time_runs(
                    iters,
                    prepare,
                    || {
                        engine
                            .execute_compiled_opts(&plan, &compiled, sec, ExecOptions::default())
                            .expect("compiled run")
                            .matches
                    },
                    &expect,
                );
                rows.push(Row {
                    query_id: qid,
                    security: sec_name,
                    cache: cache_name,
                    interpreted_p50_us: percentile_us(&interp, 0.50),
                    interpreted_p99_us: percentile_us(&interp, 0.99),
                    compiled_p50_us: percentile_us(&comp, 0.50),
                    compiled_p99_us: percentile_us(&comp, 0.99),
                    answers: expect.len(),
                });
            }
        }
    }

    let mut t = Table::new(
        "query -> automaton compilation",
        &[
            "query",
            "security",
            "pool",
            "interp p50",
            "interp p99",
            "compiled p50",
            "compiled p99",
            "speedup",
            "answers",
        ],
    );
    for r in &rows {
        t.row(&[
            r.query_id.to_string(),
            r.security.to_string(),
            r.cache.to_string(),
            format!("{:.1} us", r.interpreted_p50_us),
            format!("{:.1} us", r.interpreted_p99_us),
            format!("{:.1} us", r.compiled_p50_us),
            format!("{:.1} us", r.compiled_p99_us),
            format!("{:.2}x", r.speedup_p50()),
            r.answers.to_string(),
        ]);
    }
    t.print();

    // Mix-level p50 speedup (warm pool): the acceptance-gate number. The
    // Table-1 mix time is the sum of per-query p50s, per security mode.
    let mix = |sec: &str, cache: &str| -> (f64, f64) {
        rows.iter()
            .filter(|r| r.security == sec && r.cache == cache)
            .fold((0.0, 0.0), |(i, c), r| {
                (i + r.interpreted_p50_us, c + r.compiled_p50_us)
            })
    };
    let mut mix_speedups: Vec<(String, f64)> = Vec::new();
    for sec in ["none", "binding"] {
        for cache in ["warm", "cold"] {
            let (i, c) = mix(sec, cache);
            let s = if c == 0.0 { 1.0 } else { i / c };
            println!(
                "Table-1 mix ({sec}, {cache} pool): interpreted {i:.1} us vs compiled {c:.1} us \
                 -> {s:.2}x p50 speedup"
            );
            mix_speedups.push((format!("{sec}_{cache}"), s));
        }
    }
    println!(
        "({} lowerings for {} (query, mode, pool) configurations; every run's answer was \
         byte-identical to the interpreted reference.)\n",
        cache.compiles(),
        rows.len(),
    );

    write_json(seed, scale, nodes, &rows, &mix_speedups);

    if smoke {
        // The identity assertions already ran on every iteration; the smoke
        // gate just confirms the experiment exercised both modes and the
        // lowering was reused across every run of a query.
        assert_eq!(
            cache.compiles() as usize,
            queries.len(),
            "one lowering per query, reused across all runs"
        );
        assert!(
            rows.iter().any(|r| r.answers > 0),
            "the mix answered nothing; the comparison is vacuous"
        );
        println!("compile --smoke: all assertions passed\n");
    }
}

fn write_json(seed: u64, scale: f64, nodes: usize, rows: &[Row], mix: &[(String, f64)]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"compile\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"xmark_scale\": {scale},\n"));
    out.push_str(&format!("  \"nodes\": {nodes},\n"));
    for (name, s) in mix {
        out.push_str(&format!("  \"mix_speedup_p50_{name}\": {s:.3},\n"));
    }
    out.push_str("  \"runs\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"query\": \"{}\", \"security\": \"{}\", \"pool\": \"{}\", \
             \"interpreted_p50_us\": {:.2}, \"interpreted_p99_us\": {:.2}, \
             \"compiled_p50_us\": {:.2}, \"compiled_p99_us\": {:.2}, \
             \"speedup_p50\": {:.3}, \"answers\": {}}}{}",
            r.query_id,
            r.security,
            r.cache,
            r.interpreted_p50_us,
            r.interpreted_p99_us,
            r.compiled_p50_us,
            r.compiled_p99_us,
            r.speedup_p50(),
            r.answers,
            if i + 1 < rows.len() { ",\n" } else { "\n" },
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::File::create("BENCH_compile.json").and_then(|mut f| f.write_all(out.as_bytes()))
    {
        Ok(()) => println!("(wrote BENCH_compile.json)\n"),
        Err(e) => eprintln!("could not write BENCH_compile.json: {e}"),
    }
}
