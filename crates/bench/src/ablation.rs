//! Ablations: isolate the contribution of individual design choices.
//!
//! * **Codebook** — what multi-subject storage would cost if each transition
//!   carried its raw ACL bit-vector instead of a code (no dictionary).
//! * **Page skip** — the §3.3 in-memory header test, on vs off, for a
//!   low-accessibility subject on an unanchored query.
//! * **Block size** — records per block vs cold-cache query I/O and
//!   single-node update cost (the clustering trade-off behind the paper's
//!   4 KB pages).

use crate::setup::{synth_column, xmark_doc, BenchDb, ColumnOracle, SUBJECT};
use crate::table::{bytes, f3, Table};
use crate::Effort;
use dol_core::{Dol, EmbeddedDol};
use dol_nok::{parse_query, ExecOptions, QueryPlan, Security};
use dol_storage::{BufferPool, MemDisk, StoreConfig};

use std::sync::Arc;

/// Runs all three ablations.
pub fn run(effort: Effort) {
    codebook(effort);
    page_skip(effort);
    block_size(effort);
}

/// Dictionary compression: codebook vs raw ACLs on the transitions. Uses
/// the Unix-FS world, where transitions far outnumber distinct ACLs, so the
/// dictionary's effect is visible in isolation.
fn codebook(effort: Effort) {
    let world = dol_workloads::UnixFsWorld::generate(&dol_workloads::UnixFsConfig {
        nodes: effort.pick(8_000, 120_000),
        users: 182,
        groups: 65,
        seed: 65,
    });
    let dol = Dol::build_n(
        world.doc.len() as u64,
        &world.oracle(dol_workloads::UnixMode::Read),
    );
    let s = dol.stats();
    let acl_bytes_per_transition = world.subject_count().div_ceil(8);
    let raw = s.transitions * acl_bytes_per_transition;
    let mut t = Table::new(
        "ablation: codebook vs raw ACLs (Unix-FS-style, read mode)",
        &["scheme", "per-transition", "total"],
    );
    t.row(&[
        "DOL with codebook".into(),
        format!("{} B code", dol.codebook().code_bytes()),
        format!(
            "{} ({} codebook + {} codes)",
            bytes(s.total_bytes()),
            bytes(s.codebook_bytes),
            bytes(s.embedded_code_bytes)
        ),
    ]);
    t.row(&[
        "raw ACL per transition".into(),
        format!("{acl_bytes_per_transition} B ACL"),
        bytes(raw),
    ]);
    t.row(&[
        "codebook advantage".into(),
        "-".into(),
        format!("{:.1}x", raw as f64 / s.total_bytes() as f64),
    ]);
    t.print();
}

/// The in-memory page-skip test, on vs off.
fn page_skip(effort: Effort) {
    let doc = xmark_doc(effort.scale(0.3, 2.0));
    // A subject who can only access one small region: most blocks are
    // uniform-deny and skippable.
    let mut col = synth_column(&doc, 0.05, 0.005, 3);
    col.set(0, true);
    let db = BenchDb::build(doc, &ColumnOracle(col), 8192);
    let engine = db.engine();
    let plan = QueryPlan::new(parse_query("//item[name]").unwrap());
    let mut t = Table::new(
        "ablation: page-skip optimization (//item[name], 5% accessible)",
        &[
            "page skip",
            "blocks skipped",
            "nodes visited",
            "cold physical reads",
        ],
    );
    for on in [true, false] {
        db.pool.clear_cache().expect("clear");
        db.pool.reset_stats();
        let res = engine
            .execute_plan_opts(
                &plan,
                Security::BindingLevel(SUBJECT),
                ExecOptions {
                    page_skip: on,
                    ..ExecOptions::default()
                },
            )
            .expect("query");
        let io = db.pool.stats();
        t.row(&[
            if on { "on" } else { "off" }.into(),
            res.stats.blocks_skipped.to_string(),
            res.stats.nodes_visited.to_string(),
            io.physical_reads.to_string(),
        ]);
    }
    t.print();
}

/// Records-per-block sweep.
fn block_size(effort: Effort) {
    let doc = xmark_doc(effort.scale(0.3, 1.5));
    let col = synth_column(&doc, 0.5, 0.03, 5);
    let mut t = Table::new(
        "ablation: records per block",
        &[
            "records/block",
            "blocks",
            "cold reads //item//emph",
            "node-update pages (r+w)",
        ],
    );
    for max_rec in [50usize, 100, 200, 300] {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 8192));
        let (mut store, mut dol) = EmbeddedDol::build(
            pool.clone(),
            StoreConfig {
                max_records_per_block: max_rec,
            },
            &doc,
            &ColumnOracle(col.clone()),
        )
        .expect("build");
        // Cold-cache query reads.
        let mut values = dol_storage::ValueStore::new(pool.clone());
        for id in doc.preorder() {
            if let Some(v) = &doc.node(id).value {
                values.put(u64::from(id.0), v).expect("values");
            }
        }
        let tag_index = dol_nok::build_tag_index(&store).expect("index");
        let cold_reads = {
            let engine = dol_nok::QueryEngine::with_index(
                &store,
                &values,
                doc.tags(),
                Some(&dol),
                &tag_index,
            );
            pool.clear_cache().expect("clear");
            pool.reset_stats();
            let _ = engine
                .execute("//item//emph", Security::BindingLevel(SUBJECT))
                .expect("query");
            pool.stats().physical_reads
        };
        // Update cost.
        let mut update_io = 0u64;
        let rounds = effort.pick(20, 60) as u64;
        for i in 0..rounds {
            let pos = (i * 7919) % store.total_nodes();
            pool.clear_cache().expect("clear");
            pool.reset_stats();
            dol.set_node(&mut store, pos, SUBJECT, i % 2 == 0)
                .expect("update");
            pool.flush_all().expect("flush");
            let s = pool.stats();
            update_io += s.physical_reads + s.physical_writes;
        }
        t.row(&[
            max_rec.to_string(),
            store.block_count().to_string(),
            cold_reads.to_string(),
            f3(update_io as f64 / rounds as f64),
        ]);
    }
    t.print();
    println!(
        "(Bigger blocks cluster more of the document per page — fewer cold reads per query —\n\
         while update cost stays flat because a code-run update touches O(1) blocks.)\n"
    );
}
