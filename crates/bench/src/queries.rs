//! Table 1: the six benchmark queries — parsed, planned and profiled.

use crate::setup::{xmark_doc, BenchDb, ColumnOracle, Q3_SINGLE_PATH, TABLE1};
use crate::table::Table;
use crate::Effort;
use dol_acl::BitVec;
use dol_nok::{parse_query, QueryPlan, Security};

/// Prints the Table-1 queries with their plan structure and (unsecured)
/// answer counts on a generated XMark document.
pub fn run(effort: Effort) {
    let doc = xmark_doc(effort.scale(0.2, 2.0));
    println!("Table 1 queries over XMark ({} nodes)\n", doc.len());
    let n = doc.len();
    let db = BenchDb::build(doc, &ColumnOracle(BitVec::ones(n)), 4096);
    let engine = db.engine();
    let mut t = Table::new(
        "table1",
        &[
            "id",
            "query",
            "pattern nodes",
            "NoK trees",
            "AD joins",
            "answers",
            "nodes visited",
        ],
    );
    let mut all: Vec<(&str, &str)> = TABLE1.to_vec();
    all.push(Q3_SINGLE_PATH);
    for (id, q) in all {
        let pattern = parse_query(q).expect("query parses");
        let plan = QueryPlan::new(pattern);
        let res = engine.execute(q, Security::None).expect("query runs");
        t.row(&[
            id.to_string(),
            q.to_string(),
            plan.pattern.len().to_string(),
            plan.trees.len().to_string(),
            plan.joins.len().to_string(),
            res.matches.len().to_string(),
            res.stats.nodes_visited.to_string(),
        ]);
    }
    t.print();
    println!("Plans:");
    for (_, q) in TABLE1 {
        let plan = QueryPlan::new(parse_query(q).expect("query parses"));
        print!("{}", plan.explain());
    }
    println!();
    println!(
        "(Q1-Q3 are single NoK pattern trees — branches at the end, in the middle, and the\n\
         single-path class; Q4-Q6 are ancestor-descendant structural joins. The printed Q3\n\
         asks for a description inside a name, which XMark-shaped data never contains, so\n\
         its answer count is 0 by schema; Q3' realizes the single-path class.)\n"
    );
}
