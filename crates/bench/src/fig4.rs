//! Figure 4: CAM labels vs DOL transition nodes for a single subject.

use crate::setup::{column_transitions, synth_column, xmark_doc};
use crate::table::{f3, Table};
use crate::Effort;
use dol_cam::Cam;
use dol_workloads::{LiveLinkConfig, LiveLinkWorld};

/// Figure 4(a): synthetic XMark access controls; the plotted quantity is
/// `#CAM labels / #DOL transition nodes` as the accessibility ratio sweeps
/// 10–90% for three propagation ratios.
pub fn fig4a(effort: Effort) {
    let doc = xmark_doc(effort.scale(0.2, 2.0));
    println!(
        "Figure 4(a): XMark, {} nodes; ratio = CAM labels / DOL transitions (<1 favors CAM)\n",
        doc.len()
    );
    let props = [0.01, 0.03, 0.05];
    let mut t = Table::new(
        "fig4a",
        &[
            "access%",
            "prop=1% CAM",
            "DOL",
            "ratio",
            "prop=3% CAM",
            "DOL",
            "ratio",
            "prop=5% CAM",
            "DOL",
            "ratio",
        ],
    );
    for acc10 in 1..=9 {
        let acc = acc10 as f64 / 10.0;
        let mut cells = vec![format!("{}%", acc10 * 10)];
        for (pi, &p) in props.iter().enumerate() {
            let col = synth_column(&doc, acc, p, 1000 + pi as u64);
            let cam = Cam::build_optimal(&doc, &col);
            cam.verify(&doc, &col).expect("cam correct");
            let dol = column_transitions(&col);
            cells.push(cam.len().to_string());
            cells.push(dol.to_string());
            cells.push(f3(cam.len() as f64 / dol as f64));
        }
        t.row(&cells);
    }
    t.print();
    println!(
        "(Paper shape: ratio < 1 throughout — CAM, being tree-aware, needs fewer labels than\n\
         DOL needs transitions for one subject; the gap is widest at low accessibility and\n\
         narrows as accessibility rises. DOL sizes peak near 50% accessibility, CAM peaks\n\
         asymmetrically around ~60%.)\n"
    );
}

/// Figure 4(b): per-user CAM labels and DOL transitions on LiveLink-style
/// data, one bar pair per action mode (average over sampled users, using
/// each user's effective rights = own subject OR their groups).
pub fn fig4b(effort: Effort) {
    let world = LiveLinkWorld::generate(&LiveLinkConfig {
        departments: effort.pick(4, 10),
        projects_per_dept: effort.pick(3, 6),
        project_size: effort.pick(60, 250),
        users: effort.pick(60, 400),
        modes: 10,
        seed: 2005,
    });
    let sample = world.sample_users(effort.pick(8, 25), 7);
    println!(
        "Figure 4(b): LiveLink-style data, {} nodes, {} subjects; average over {} users\n",
        world.doc.len(),
        world.subject_count(),
        sample.len()
    );
    let mut t = Table::new(
        "fig4b",
        &["mode", "avg CAM labels", "avg DOL transitions", "CAM/DOL"],
    );
    for m in 0..world.modes() {
        let mut cam_sum = 0usize;
        let mut dol_sum = 0usize;
        for &u in &sample {
            let col = world.user_effective_column(u, m);
            let cam = Cam::build_optimal(&world.doc, &col);
            cam_sum += cam.len();
            dol_sum += column_transitions(&col);
        }
        let cam_avg = cam_sum as f64 / sample.len() as f64;
        let dol_avg = dol_sum as f64 / sample.len() as f64;
        t.row(&[
            format!("mode{m}"),
            format!("{cam_avg:.1}"),
            format!("{dol_avg:.1}"),
            f3(cam_avg / dol_avg),
        ]);
    }
    t.print();
    println!(
        "(Paper shape: per single user the two schemes are comparable; in the worst modes\n\
         DOL carries ~20-25% more nodes than CAM.)\n"
    );
}
