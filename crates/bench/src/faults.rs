//! Fault-injection experiment: checksum detection coverage, fail-closed
//! query semantics, and the cost of verification.
//!
//! Three questions, answered on the fig-4 style workload (XMark document,
//! synthetic single-subject column):
//!
//! 1. **Detection** — under a deterministic fault schedule (transient read
//!    errors plus sticky single-bit flips), does the CRC-32C page trailer
//!    catch *every* corrupted page, with zero silent corruptions?
//! 2. **Fail-closed** — do secure queries over the faulty store always
//!    return a *subset* of the fault-free answers (corruption may hide
//!    nodes, never leak them), while unsecured queries surface the error?
//! 3. **Overhead** — what does verify-on-every-read cost on a fault-free
//!    run? (Acceptance: under 5 % wall-clock.)

use crate::setup::{synth_column, xmark_doc, BenchDb, ColumnOracle, SUBJECT, TABLE1};
use crate::table::{f3, Table};
use crate::Effort;
use dol_nok::Security;
use dol_storage::disk::StorageError;
use dol_storage::{BufferPool, Disk, FaultConfig, FaultDisk, MemDisk, PageId};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// The fixed seed used when the caller does not supply one (CI does not).
pub const DEFAULT_SEED: u64 = 0x00D0_1FA1;

/// Runs the full experiment: detection audit, fail-closed sweep, overhead.
pub fn run(effort: Effort, seed: u64) {
    println!("Fault injection (seed {seed:#x})\n");
    let schedules = [
        // The acceptance schedule: 1% transient reads, 0.1% sticky flips.
        ("paper-rate", 0.01, 0.001),
        // Denser corruption, so the corrupt path is exercised even on the
        // small quick-mode image where 0.1% of pages rounds to zero.
        ("10x-flips", 0.01, 0.01),
        ("stress", 0.05, 0.15),
    ];
    let mut audit = Table::new(
        "fault detection audit (full image scan, cold cache)",
        &[
            "schedule",
            "pages",
            "corrupt",
            "detected",
            "silent",
            "transient",
            "retries",
            "backoffs",
            "breaker trips",
        ],
    );
    let mut sweep = Table::new(
        "fail-closed query sweep (secure answers vs fault-free oracle)",
        &[
            "schedule",
            "mode",
            "queries",
            "subset",
            "answers kept",
            "failed closed",
            "unsec errors",
        ],
    );
    let oracle_db = build_db(effort, None, seed);
    for (i, (name, transient, flips)) in schedules.into_iter().enumerate() {
        let cfg = FaultConfig {
            // Decorrelate the schedules: with a shared seed they would all
            // reuse the same underlying coin flips.
            seed: seed.wrapping_add(i as u64),
            transient_read_error: transient,
            sticky_bit_flip: flips,
            ..FaultConfig::default()
        };
        let (db, fault) = build_faulty(effort, cfg, seed);
        audit.row(&audit_row(name, &db, &fault));
        for row in sweep_rows(name, &oracle_db, &db) {
            sweep.row(&row);
        }
    }
    audit.print();
    println!(
        "(Every sticky-corrupt page must be *detected* — surfaced as StorageError::Corrupt —\n\
         and `silent` must be 0: no corrupted page may ever read back Ok.)\n"
    );
    sweep.print();
    println!(
        "(`subset` must equal `queries`: under both secure semantics a faulty store can only\n\
         hide answers, never add them. Unsecured runs have nothing to protect, so corrupt\n\
         reads surface as errors instead — counted in `unsec errors`.)\n"
    );
    overhead(effort, seed);
}

/// The fig-4 style workload column: 50% accessibility, with the shallow
/// structural spine (depth ≤ 2) forced accessible so the anchored queries
/// measure leaf-level filtering rather than a root coin flip (as in fig7).
fn workload(effort: Effort, seed: u64) -> (dol_xml::Document, ColumnOracle) {
    let doc = xmark_doc(effort.scale(0.2, 1.0));
    let mut col = synth_column(&doc, 0.5, 0.03, seed);
    for id in doc.preorder() {
        if doc.node(id).depth <= 2 {
            col.set(id.index(), true);
        }
    }
    (doc, ColumnOracle(col))
}

fn build_db(effort: Effort, disk: Option<Arc<FaultDisk>>, seed: u64) -> BenchDb {
    let (doc, oracle) = workload(effort, seed);
    match disk {
        Some(d) => BenchDb::build_on(d, doc, &oracle, 64),
        None => BenchDb::build(doc, &oracle, 64),
    }
}

/// Builds the faulty twin: same document, same column, same layout (the
/// fault decorator is disarmed during the build, and allocation always
/// passes through, so page numbering matches the fault-free oracle).
fn build_faulty(effort: Effort, cfg: FaultConfig, seed: u64) -> (BenchDb, Arc<FaultDisk>) {
    let fault = Arc::new(FaultDisk::new(Arc::new(MemDisk::new()), cfg));
    fault.set_armed(false);
    let db = build_db(effort, Some(fault.clone()), seed);
    db.pool.flush_all().expect("flush clean build");
    fault.set_armed(true);
    db.pool.clear_cache().expect("no dirty pages after flush");
    (db, fault)
}

/// Reads every page of the image once (cold cache) and classifies the
/// outcome against the disk's own list of sticky-corrupt pages.
fn audit_row(name: &str, db: &BenchDb, fault: &FaultDisk) -> Vec<String> {
    let pages = fault.num_pages();
    let corrupt: Vec<PageId> = fault.sticky_corrupt_pages();
    let io_before = db.pool.stats();
    let mut detected = 0u64;
    let mut silent = 0u64;
    for p in 0..pages {
        let id = PageId(p);
        let is_corrupt = corrupt.contains(&id);
        match db.pool.with_page(id, |_| ()) {
            Ok(()) if is_corrupt => silent += 1,
            Ok(()) => {}
            Err(StorageError::Corrupt { page, .. }) if is_corrupt => {
                assert_eq!(page, id, "corruption reported on the failing page");
                detected += 1;
            }
            Err(e) => panic!("page {id}: unexpected error {e} (corrupt={is_corrupt})"),
        }
    }
    assert_eq!(silent, 0, "{name}: corrupted pages must never read back Ok");
    assert_eq!(
        detected,
        corrupt.len() as u64,
        "{name}: every corrupted page must surface StorageError::Corrupt"
    );
    let io = db.pool.stats().since(&io_before);
    vec![
        name.to_string(),
        pages.to_string(),
        corrupt.len().to_string(),
        detected.to_string(),
        silent.to_string(),
        fault
            .stats()
            .transient_read_errors
            .load(Ordering::Relaxed)
            .to_string(),
        io.read_retries.to_string(),
        io.backoffs.to_string(),
        // The audit runs under the default policy (breaker disabled), so a
        // deterministic fault schedule keeps its exact per-page retry
        // sequence; the column proves the counter stays quiet here (the
        // soak experiment exercises the tripping path).
        io.breaker_trips.to_string(),
    ]
}

/// Runs the Table-1 queries on the faulty store under each security mode and
/// checks them against the fault-free oracle.
fn sweep_rows(name: &str, oracle: &BenchDb, faulty: &BenchDb) -> Vec<Vec<String>> {
    let modes = [
        ("eps-NoK", Security::BindingLevel(SUBJECT)),
        ("eps-STD", Security::SubtreeVisibility(SUBJECT)),
    ];
    let mut rows = Vec::new();
    for (mode_name, sec) in modes {
        let mut subset = 0usize;
        let mut kept = 0usize;
        let mut total = 0usize;
        let mut failed_closed = 0u64;
        for (id, q) in &TABLE1 {
            let expect = oracle.engine().execute(q, sec).expect("oracle query");
            faulty.pool.clear_cache().expect("clean cache");
            let got = faulty
                .engine()
                .execute(q, sec)
                .unwrap_or_else(|e| panic!("{id} must not fail under {mode_name}: {e}"));
            let is_subset = got.matches.iter().all(|m| expect.matches.contains(m));
            assert!(
                is_subset,
                "{name}/{mode_name}/{id}: faulty answers must be a subset of the oracle"
            );
            subset += usize::from(is_subset);
            kept += got.matches.len();
            total += expect.matches.len();
            failed_closed += got.stats.blocks_failed_closed;
        }
        rows.push(vec![
            name.to_string(),
            mode_name.to_string(),
            TABLE1.len().to_string(),
            subset.to_string(),
            format!("{kept}/{total}"),
            failed_closed.to_string(),
            "-".to_string(),
        ]);
    }
    // Unsecured runs: a corrupt read is an error, never a wrong answer.
    let mut unsec_errors = 0usize;
    let mut ok_and_equal = 0usize;
    for (id, q) in &TABLE1 {
        let expect = oracle.engine().execute(q, Security::None).expect("oracle");
        faulty.pool.clear_cache().expect("clean cache");
        match faulty.engine().execute(q, Security::None) {
            Ok(got) => {
                assert_eq!(
                    got.matches, expect.matches,
                    "{name}/None/{id}: a successful unsecured run must be exact"
                );
                ok_and_equal += 1;
            }
            Err(_) => unsec_errors += 1,
        }
    }
    rows.push(vec![
        name.to_string(),
        "none".to_string(),
        TABLE1.len().to_string(),
        ok_and_equal.to_string(),
        "-".to_string(),
        "-".to_string(),
        unsec_errors.to_string(),
    ]);
    rows
}

/// Measures the wall-clock cost of checksums on a fault-free end-to-end
/// workload in the fig5/6 style — build the embedded DOL from scratch
/// (every flushed page is sealed), then run the Table-1 queries cold-cache
/// (every fetched page is verified) — with verification on vs off.
fn overhead(effort: Effort, seed: u64) {
    let (doc, oracle) = workload(effort, seed);
    let reps = effort.pick(15, 7);
    let loops = effort.pick(8, 6);
    let pass = |verify: bool| -> f64 {
        let t = Instant::now();
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 64));
        pool.set_verify_checksums(verify);
        let db = BenchDb::build_with_pool(pool, doc.clone(), &oracle);
        let engine = db.engine();
        for _ in 0..loops {
            // A cold run (every fetched page is verified) followed by a warm
            // one (cache hits, no verification) — the mix a long-lived
            // database actually sees.
            for (_, q) in &TABLE1 {
                db.pool.clear_cache().expect("clean cache");
                engine
                    .execute(q, Security::BindingLevel(SUBJECT))
                    .expect("query");
            }
            for (_, q) in &TABLE1 {
                engine
                    .execute(q, Security::BindingLevel(SUBJECT))
                    .expect("query");
            }
        }
        t.elapsed().as_secs_f64()
    };
    pass(true); // warm-up (allocator, code paths, shift tables)
                // Each rep measures on/off back to back and contributes one ratio, so
                // machine-load drift hits both sides of a rep; the median ratio then
                // discards the reps a background burst still skewed.
    let mut best_on = f64::INFINITY;
    let mut best_off = f64::INFINITY;
    let mut ratios = Vec::with_capacity(reps);
    for _ in 0..reps {
        let on = pass(true);
        let off = pass(false);
        best_on = best_on.min(on);
        best_off = best_off.min(off);
        ratios.push(on / off);
    }
    ratios.sort_unstable_by(|a, b| a.total_cmp(b));
    let median = ratios[ratios.len() / 2];
    let overhead_pct = (median - 1.0) * 100.0;
    let mut t = Table::new(
        "checksum overhead (fault-free build + cold-cache queries)",
        &["verify", "best s", "overhead % (median of per-rep ratios)"],
    );
    t.row(&["off".to_string(), format!("{best_off:.4}"), "-".to_string()]);
    t.row(&["on".to_string(), format!("{best_on:.4}"), f3(overhead_pct)]);
    t.print();
    println!("(Acceptance target: verify-on adds < 5% wall-clock on the fault-free workload.)\n");
}
