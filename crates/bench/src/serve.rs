//! `serve` — multi-client secure-query serving throughput (not a paper
//! artifact).
//!
//! N client threads replay a Zipf-weighted mix of the Table-1 queries over a
//! shared [`SecureXmlDb`], each through its own [`secure_xml::DbReader`]
//! snapshot:
//! readers share the store, indexes, DOL, and the plan/result caches by
//! `Arc`, so the serving path takes no database-wide lock — page accesses on
//! the warm buffer pool take *shared* latches, and warm result-cache hits do
//! no page I/O at all. An optional writer interleaves single-node ACL
//! updates; with the MVCC epoch ring (the default protocol) overtaken
//! readers keep serving their pinned epoch, so a snapshot refresh happens
//! only when a reader outlives the retention window (`RetentionExceeded`,
//! the `query_with_retry` fallback) — a `StaleReader` retry would mean the
//! ring failed and is gated to zero in every mix.
//!
//! Every [`PROBE_EVERY`]-th operation carries an already-expired deadline;
//! whatever the cache holds, its outcome is accounted a **bounded refusal**
//! (a warm result-cache hit is served `Ok` by the engine but the wire front
//! door refuses the same request at dispatch, so counting it as served
//! would let the in-process and wire availability columns disagree).
//!
//! Reported per client count: QPS, p50/p99 latency, plan/result cache hit
//! rates, the shared-vs-exclusive page-latch ratio, stale retries, and an
//! order-independent fingerprint of every result (equal across same-seed
//! runs — re-checked here by running one mix twice). Every read-only result
//! is also compared against a sequential oracle computed up front. Machine-
//! readable output goes to `BENCH_serve.json`.
//!
//! `--smoke` runs a pinned-seed configuration and asserts determinism, zero
//! divergences, zero stale-read errors, and a >90% shared-latch ratio on the
//! read-only mix. Throughput is *reported but not gated*: the CI container
//! has a single CPU, so thread scaling is measured for shape, not asserted.

use crate::setup::{xmark_doc, TABLE1};
use crate::table::{pct, Table};
use crate::Effort;
use dol_acl::{GroupSpace, SubjectId};
use dol_nok::Security;
use dol_storage::IoStats;
use dol_workloads::{synth_multi, SynthAclConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secure_xml::{CacheStats, DbError, Deadline, ExecOptions, SecureXmlDb};
use std::collections::HashMap;
use std::io::Write as _;
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Pinned seed for CI smoke runs (the paper's submission date).
pub const DEFAULT_SEED: u64 = 20050405;

/// Subjects in the synthetic ACL (queries pick one uniformly).
const SUBJECTS: usize = 4;
/// Zipf exponent of the query-mix weights.
const ZIPF_EXPONENT: f64 = 1.0;
/// Per-operation bound on snapshot-refresh retries before
/// [`secure_xml::DbReader::query_with_retry`] gives up and the client
/// counts a stale-read *error* (never hit in practice: the writer is
/// finite, so some retry always lands in a quiet epoch).
const MAX_STALE_RETRIES: u32 = 1000;
/// Every `PROBE_EVERY`-th operation (offset [`PROBE_OFFSET`]) carries an
/// already-expired deadline. Whatever the cache state, the outcome is a
/// **bounded refusal**: a cold probe aborts with the typed
/// `DeadlineExceeded`, and a warm result-cache hit — served `Ok` by the
/// engine, since a hit costs no I/O — is classified the same way, because
/// the wire front door (`dol-server`) refuses any request whose deadline
/// lapsed before dispatch. Counting that hit as *served* here would make
/// the in-process availability column disagree with the wire's.
const PROBE_EVERY: usize = 16;
/// Probe phase offset, coprime with the update cadence so the update mix
/// never swallows a probe slot.
const PROBE_OFFSET: usize = 3;

/// One serving mix configuration.
struct MixConfig {
    clients: usize,
    ops_per_client: usize,
    /// Client 0 replaces every `update_every`-th operation with an ACL
    /// update through the write lock; `0` = read-only mix.
    update_every: usize,
    seed: u64,
    /// Subject ids the mix draws from (flat ids, or sampled factored
    /// users under `--subjects=N`).
    pool: Vec<u32>,
}

/// Everything one mix run reports.
struct MixReport {
    clients: usize,
    read_only: bool,
    queries: u64,
    updates: u64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    plan_hit_rate: f64,
    /// Query→automaton lowerings during the mix. After the first mix warms
    /// the plan cache this stays 0: serving reuses cached lowerings.
    plan_compiles: u64,
    result_hit_rate: f64,
    shared_reads: u64,
    exclusive_fallbacks: u64,
    /// Snapshot refreshes caused by `StaleReader` — the legacy protocol's
    /// cost. With the epoch ring enabled this must stay 0: pinned readers
    /// are never evicted by writers.
    stale_retries: u64,
    /// Snapshot refreshes caused by `RetentionExceeded` — the MVCC
    /// fallback for readers held past the retention window.
    retention_refreshes: u64,
    stale_errors: u64,
    divergences: u64,
    /// Expired-deadline probe operations — all of them refused, whether the
    /// refusal was a typed `DeadlineExceeded` abort (cold) or a warm
    /// result-cache hit reclassified to match the wire semantics.
    bounded_refusals: u64,
    /// The warm-hit share of [`bounded_refusals`](Self::bounded_refusals):
    /// probes the engine answered `Ok` from the result cache.
    warm_refusals: u64,
    /// Queries aborted by a deadline during the mix. Only the expired
    /// probes set deadlines, so this must reconcile as
    /// `bounded_refusals - warm_refusals`.
    deadline_aborts: u64,
    fingerprint: u64,
}

impl MixReport {
    fn shared_ratio(&self) -> f64 {
        let total = self.shared_reads + self.exclusive_fallbacks;
        if total == 0 {
            return 1.0; // no page access at all (fully cache-served)
        }
        self.shared_reads as f64 / total as f64
    }

    /// Fraction of query operations that produced an answer. Both failure
    /// classes are subtracted: exhausted stale-retry budgets *and* bounded
    /// refusals — a warm-cache `Ok` under an expired deadline counts as
    /// refused, exactly as the wire front door accounts it.
    fn availability(&self) -> f64 {
        if self.queries == 0 {
            return 1.0;
        }
        (self.queries - self.stale_errors - self.bounded_refusals) as f64 / self.queries as f64
    }
}

struct ClientOutcome {
    latencies_ns: Vec<u64>,
    queries: u64,
    updates: u64,
    stale_retries: u64,
    retention_refreshes: u64,
    stale_errors: u64,
    divergences: u64,
    bounded_refusals: u64,
    warm_refusals: u64,
    fingerprint: u64,
}

/// Oracle key: (Table-1 query index, subject, subtree-visibility?).
type OpKey = (usize, u32, bool);

fn fnv_fold(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x0000_0100_0000_01b3)
}

/// Zipf cumulative weights over the Table-1 queries.
fn zipf_cumulative() -> Vec<f64> {
    let mut cum = Vec::with_capacity(TABLE1.len());
    let mut total = 0.0;
    for i in 0..TABLE1.len() {
        total += 1.0 / ((i + 1) as f64).powf(ZIPF_EXPONENT);
        cum.push(total);
    }
    cum
}

fn pick_weighted(rng: &mut StdRng, cum: &[f64]) -> usize {
    let total = *cum.last().expect("nonempty mix");
    let r = rng.gen_range(0.0..total);
    cum.partition_point(|&c| c <= r).min(cum.len() - 1)
}

/// Draws one operation of the mix (shared by clients and the oracle).
fn draw_op(rng: &mut StdRng, cum: &[f64], pool: &[u32]) -> OpKey {
    let qi = pick_weighted(rng, cum);
    let subject = pool[rng.gen_range(0..pool.len())];
    let subtree_vis = rng.gen_bool(0.25);
    (qi, subject, subtree_vis)
}

fn security_of(key: OpKey) -> Security {
    let s = SubjectId(key.1);
    if key.2 {
        Security::SubtreeVisibility(s)
    } else {
        Security::BindingLevel(s)
    }
}

/// Sequential answers for every possible operation, through the uncached
/// `SecureXmlDb::query` path.
fn sequential_oracle(db: &SecureXmlDb, pool: &[u32]) -> HashMap<OpKey, Vec<u64>> {
    let mut oracle = HashMap::new();
    for (qi, (_, query)) in TABLE1.iter().enumerate() {
        for &subject in pool {
            for subtree_vis in [false, true] {
                let key = (qi, subject, subtree_vis);
                let r = db.query(query, security_of(key)).expect("oracle query");
                oracle.insert(key, r.matches);
            }
        }
    }
    oracle
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1e3
}

fn cache_delta(after: CacheStats, before: CacheStats) -> CacheStats {
    CacheStats {
        plan_hits: after.plan_hits - before.plan_hits,
        plan_misses: after.plan_misses - before.plan_misses,
        plan_compiles: after.plan_compiles - before.plan_compiles,
        result_hits: after.result_hits - before.result_hits,
        result_misses: after.result_misses - before.result_misses,
        deadline_aborts: after.deadline_aborts - before.deadline_aborts,
    }
}

fn hit_rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        return 0.0;
    }
    hits as f64 / total as f64
}

/// Runs one serving mix and gathers its report. The oracle check only
/// applies to read-only mixes (updates change the answers mid-run).
fn run_mix(
    db: &Arc<RwLock<SecureXmlDb>>,
    oracle: &HashMap<OpKey, Vec<u64>>,
    cfg: &MixConfig,
) -> MixReport {
    let (io0, cache0) = {
        let g = db.read().expect("db lock");
        (g.io_stats(), g.cache_stats())
    };
    let cum = zipf_cumulative();
    let start = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|client| {
                let cum = &cum;
                scope.spawn(move || run_client(db, oracle, cfg, client, cum))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    let elapsed = start.elapsed();
    let (io1, cache1) = {
        let g = db.read().expect("db lock");
        (g.io_stats(), g.cache_stats())
    };
    let io = io1.since(&io0);
    let caches = cache_delta(cache1, cache0);

    let mut latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_ns.iter().copied())
        .collect();
    latencies.sort_unstable();
    let queries: u64 = outcomes.iter().map(|o| o.queries).sum();
    MixReport {
        clients: cfg.clients,
        read_only: cfg.update_every == 0,
        queries,
        updates: outcomes.iter().map(|o| o.updates).sum(),
        qps: queries as f64 / elapsed.as_secs_f64(),
        p50_us: percentile_us(&latencies, 0.50),
        p99_us: percentile_us(&latencies, 0.99),
        plan_hit_rate: hit_rate(caches.plan_hits, caches.plan_misses),
        plan_compiles: caches.plan_compiles,
        result_hit_rate: hit_rate(caches.result_hits, caches.result_misses),
        shared_reads: io.read_shared,
        exclusive_fallbacks: io.read_exclusive_fallback,
        stale_retries: outcomes.iter().map(|o| o.stale_retries).sum(),
        retention_refreshes: outcomes.iter().map(|o| o.retention_refreshes).sum(),
        stale_errors: outcomes.iter().map(|o| o.stale_errors).sum(),
        divergences: outcomes.iter().map(|o| o.divergences).sum(),
        bounded_refusals: outcomes.iter().map(|o| o.bounded_refusals).sum(),
        warm_refusals: outcomes.iter().map(|o| o.warm_refusals).sum(),
        deadline_aborts: caches.deadline_aborts,
        // Order-independent across clients: XOR of per-client streams.
        fingerprint: outcomes.iter().fold(0, |h, o| h ^ o.fingerprint),
    }
}

fn run_client(
    db: &Arc<RwLock<SecureXmlDb>>,
    oracle: &HashMap<OpKey, Vec<u64>>,
    cfg: &MixConfig,
    client: usize,
    cum: &[f64],
) -> ClientOutcome {
    let mut rng =
        StdRng::seed_from_u64(cfg.seed ^ (client as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut reader = db.read().expect("db lock").reader();
    let mut out = ClientOutcome {
        latencies_ns: Vec::with_capacity(cfg.ops_per_client),
        queries: 0,
        updates: 0,
        stale_retries: 0,
        retention_refreshes: 0,
        stale_errors: 0,
        divergences: 0,
        bounded_refusals: 0,
        warm_refusals: 0,
        fingerprint: 0xcbf2_9ce4_8422_2325, // FNV-1a offset basis
    };
    for op in 0..cfg.ops_per_client {
        if cfg.update_every > 0 && client == 0 && (op + 1) % cfg.update_every == 0 {
            let mut g = db.write().expect("db lock");
            let pos = rng.gen_range(1..g.len() as u64);
            let subject = SubjectId(cfg.pool[rng.gen_range(0..cfg.pool.len())]);
            let allow = rng.gen_bool(0.5);
            g.set_node_access(pos, subject, allow)
                .expect("serve update");
            out.updates += 1;
            continue;
        }
        if op % PROBE_EVERY == PROBE_OFFSET {
            // Expired-deadline probe: dol-server refuses any request whose
            // deadline lapsed before dispatch, warm cache or not, so both
            // outcomes here are bounded refusals — never "served".
            let key = draw_op(&mut rng, cum, &cfg.pool);
            let t0 = Instant::now();
            loop {
                let opts = ExecOptions {
                    deadline: Deadline::after(Duration::ZERO),
                    ..ExecOptions::default()
                };
                match reader.query_opts(TABLE1[key.0].1, security_of(key), opts) {
                    Ok(_) => {
                        out.warm_refusals += 1;
                        break;
                    }
                    Err(DbError::DeadlineExceeded(_)) => break,
                    Err(DbError::StaleReader { .. }) => {
                        out.stale_retries += 1;
                        reader = db.read().expect("db lock").reader();
                    }
                    Err(DbError::RetentionExceeded { .. }) => {
                        out.retention_refreshes += 1;
                        reader = db.read().expect("db lock").reader();
                    }
                    Err(e) => panic!("client {client} probe failed: {e}"),
                }
            }
            out.bounded_refusals += 1;
            out.latencies_ns.push(t0.elapsed().as_nanos() as u64);
            out.queries += 1;
            continue;
        }
        let key = draw_op(&mut rng, cum, &cfg.pool);
        let security = security_of(key);
        let t0 = Instant::now();
        // The same refresh loop `query_with_retry` runs, unrolled here so
        // the two snapshot-refresh causes are counted apart: `StaleReader`
        // is the legacy protocol's eviction (gated to zero under the epoch
        // ring), `RetentionExceeded` the MVCC fallback for a snapshot held
        // past the retention window.
        let mut attempts = 0u32;
        let outcome = loop {
            match reader.query(TABLE1[key.0].1, security) {
                Err(e) if attempts < MAX_STALE_RETRIES => {
                    match e {
                        DbError::StaleReader { .. } => out.stale_retries += 1,
                        DbError::RetentionExceeded { .. } => out.retention_refreshes += 1,
                        other => break Err(other),
                    }
                    attempts += 1;
                    reader = db.read().expect("db lock").reader();
                }
                other => break other,
            }
        };
        let result = match outcome {
            Ok(r) => Some(r),
            Err(DbError::StaleReader { .. } | DbError::RetentionExceeded { .. }) => {
                out.stale_errors += 1;
                None
            }
            Err(e) => panic!("client {client} query failed: {e}"),
        };
        out.latencies_ns.push(t0.elapsed().as_nanos() as u64);
        out.queries += 1;
        let Some(result) = result else { continue };
        // Fingerprint the (operation, answer) pair, order-sensitively
        // within this client's deterministic stream.
        let mut h = out.fingerprint;
        h = fnv_fold(h, op as u64);
        h = fnv_fold(h, key.0 as u64);
        h = fnv_fold(h, u64::from(key.1));
        h = fnv_fold(h, u64::from(key.2));
        h = fnv_fold(h, result.matches.len() as u64);
        for &m in &result.matches {
            h = fnv_fold(h, m);
        }
        out.fingerprint = h;
        if cfg.update_every == 0 {
            match oracle.get(&key) {
                Some(expect) if *expect == result.matches => {}
                _ => out.divergences += 1,
            }
        }
    }
    out
}

/// Escapes nothing (the emitted strings are plain identifiers); formats one
/// report as a JSON object.
fn json_object(r: &MixReport) -> String {
    format!(
        "{{\"clients\": {}, \"read_only\": {}, \"queries\": {}, \"updates\": {}, \
         \"qps\": {:.1}, \"p50_us\": {:.2}, \"p99_us\": {:.2}, \
         \"plan_hit_rate\": {:.4}, \"plan_compiles\": {}, \"result_hit_rate\": {:.4}, \
         \"shared_reads\": {}, \"exclusive_fallbacks\": {}, \"shared_ratio\": {:.4}, \
         \"stale_retries\": {}, \"retention_refreshes\": {}, \
         \"stale_errors\": {}, \"bounded_refusals\": {}, \"warm_refusals\": {}, \
         \"availability\": {:.4}, \
         \"deadline_aborts\": {}, \"divergences\": {}, \
         \"fingerprint\": \"{:#018x}\"}}",
        r.clients,
        r.read_only,
        r.queries,
        r.updates,
        r.qps,
        r.p50_us,
        r.p99_us,
        r.plan_hit_rate,
        r.plan_compiles,
        r.result_hit_rate,
        r.shared_reads,
        r.exclusive_fallbacks,
        r.shared_ratio(),
        r.stale_retries,
        r.retention_refreshes,
        r.stale_errors,
        r.bounded_refusals,
        r.warm_refusals,
        r.availability(),
        r.deadline_aborts,
        r.divergences,
        r.fingerprint,
    )
}

fn write_json(
    seed: u64,
    scale: f64,
    nodes: usize,
    subject_count: usize,
    runs: &[MixReport],
    deterministic: bool,
    session_io: IoStats,
) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"serve\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"xmark_scale\": {scale},\n"));
    out.push_str(&format!("  \"nodes\": {nodes},\n"));
    out.push_str(&format!("  \"subjects\": {subject_count},\n"));
    out.push_str(&format!("  \"zipf_exponent\": {ZIPF_EXPONENT},\n"));
    out.push_str(&format!("  \"deterministic\": {deterministic},\n"));
    out.push_str(&format!(
        "  \"session_shared_ratio\": {:.4},\n",
        shared_ratio_of(session_io)
    ));
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str("    ");
        out.push_str(&json_object(r));
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    match std::fs::File::create("BENCH_serve.json").and_then(|mut f| f.write_all(out.as_bytes())) {
        Ok(()) => println!("(wrote BENCH_serve.json)\n"),
        Err(e) => eprintln!("could not write BENCH_serve.json: {e}"),
    }
}

fn shared_ratio_of(io: IoStats) -> f64 {
    let total = io.read_shared + io.read_exclusive_fallback;
    if total == 0 {
        return 1.0;
    }
    io.read_shared as f64 / total as f64
}

/// Builds the corporate group hierarchy (company -> departments -> teams)
/// the `--subjects=N` serving population factors through; team group ids
/// double as physical columns (groups are created first, in column order).
fn corporate_space(departments: usize, teams_per_dept: usize) -> (GroupSpace, Vec<SubjectId>) {
    let mut space = GroupSpace::new();
    let company = space.add_subject(&[]);
    space.bind_direct(company, company.0);
    let mut depts = Vec::with_capacity(departments);
    for _ in 0..departments {
        let g = space.add_subject(&[company]);
        space.bind_direct(g, g.0);
        depts.push(g);
    }
    let mut teams = Vec::with_capacity(departments * teams_per_dept);
    for &dept in &depts {
        for _ in 0..teams_per_dept {
            let g = space.add_subject(&[dept]);
            space.bind_direct(g, g.0);
            teams.push(g);
        }
    }
    (space, teams)
}

/// Runs the serving benchmark. `max_clients` caps the thread-scaling sweep
/// (`0` = default of 4); `smoke` pins a small deterministic configuration
/// and asserts the invariants CI depends on. `subjects` lifts the serving
/// population off the hardcoded 4: `0` keeps the legacy flat build
/// byte-for-byte (the smoke gate's configuration); `N > 0` labels the same
/// document over the corporate group hierarchy's physical columns, registers
/// `N` users through the membership table, and serves the mix from a sampled
/// user pool — the factored serving path at population scale.
pub fn run(effort: Effort, seed: u64, max_clients: usize, smoke: bool, subjects: usize) {
    let max_clients = match max_clients {
        0 => 4,
        n => n,
    };
    let scale = if smoke { 0.05 } else { effort.scale(0.08, 0.5) };
    let ops = if smoke { 300 } else { effort.pick(500, 3000) };
    let doc = xmark_doc(scale);
    let nodes = doc.len();
    let acl_cfg = SynthAclConfig {
        propagation_ratio: 0.05,
        accessibility_ratio: 0.6,
        sibling_locality: 0.5,
        seed,
    };
    let (db, pool) = if subjects == 0 {
        let map = synth_multi(&doc, &acl_cfg, SUBJECTS);
        let db = SecureXmlDb::from_document(doc, &map).expect("build db");
        (db, (0..SUBJECTS as u32).collect::<Vec<u32>>())
    } else {
        let (space, teams) = corporate_space(8, 8);
        let physical = space.len();
        let map = synth_multi(&doc, &acl_cfg, physical);
        let mut db =
            SecureXmlDb::from_document_factored(doc, &map, space).expect("build factored db");
        // Register the population purely through the membership table,
        // chunked per team; user ids are contiguous from `physical`.
        for (ti, &team) in teams.iter().enumerate() {
            let count = subjects / teams.len() + usize::from(ti < subjects % teams.len());
            if count > 0 {
                db.add_grouped_subjects(count, &[team])
                    .expect("register users");
            }
        }
        let n_pool = subjects.min(32);
        let pool = (0..n_pool)
            .map(|k| (physical + k * subjects / n_pool) as u32)
            .collect();
        (db, pool)
    };
    let subject_count = if subjects == 0 { SUBJECTS } else { subjects };
    let oracle = sequential_oracle(&db, &pool);
    db.reset_io_stats(); // exclude build + oracle I/O from the lock ratios
    let session_io0 = db.io_stats();
    let db = Arc::new(RwLock::new(db));

    let mut t = Table::new(
        &format!(
            "secure serving throughput (XMark {nodes} nodes, {subject_count} subjects \
             ({} in the mix pool), Zipf Table-1 mix, {ops} ops/client, seed {seed})",
            pool.len()
        ),
        &[
            "clients",
            "mode",
            "QPS",
            "p50",
            "p99",
            "result hits",
            "plan hits",
            "compiles",
            "shared latch",
            "stale retries",
            "refreshes",
            "avail",
            "refused",
            "deadline aborts",
            "divergences",
        ],
    );
    let mut runs: Vec<MixReport> = Vec::new();

    // Read-only thread-scaling sweep. On the 1-CPU CI container the QPS
    // column measures overhead, not scaling — reported, never gated.
    let mut clients = 1usize;
    while clients <= max_clients {
        let cfg = MixConfig {
            clients,
            ops_per_client: ops,
            update_every: 0,
            seed,
            pool: pool.clone(),
        };
        let r = run_mix(&db, &oracle, &cfg);
        push_row(&mut t, &r);
        runs.push(r);
        clients *= 2;
    }

    // Determinism: replay the first configuration with the same seed; the
    // result fingerprints must be bit-identical (the result cache is warm
    // now, so this also proves cached answers equal executed answers).
    let replay = run_mix(
        &db,
        &oracle,
        &MixConfig {
            clients: 1,
            ops_per_client: ops,
            update_every: 0,
            seed,
            pool: pool.clone(),
        },
    );
    let deterministic = replay.fingerprint == runs[0].fingerprint;
    push_row(&mut t, &replay);
    runs.push(replay);

    // Update mix: client 0 interleaves ACL updates; stale readers retry.
    let update_cfg = MixConfig {
        clients: 2,
        ops_per_client: ops,
        update_every: 8,
        seed: seed ^ 0xffff,
        pool: pool.clone(),
    };
    let upd = run_mix(&db, &oracle, &update_cfg);
    push_row(&mut t, &upd);
    runs.push(upd);
    t.print();

    let session_io = db.read().expect("db lock").io_stats().since(&session_io0);
    println!(
        "(Session shared-latch ratio {} over {} page reads; determinism replay {}.)\n",
        pct(shared_ratio_of(session_io)),
        session_io.read_shared + session_io.read_exclusive_fallback,
        if deterministic { "matched" } else { "DIVERGED" },
    );
    write_json(
        seed,
        scale,
        nodes,
        subject_count,
        &runs,
        deterministic,
        session_io,
    );

    if smoke {
        assert!(deterministic, "same-seed replay fingerprint diverged");
        for r in &runs {
            assert_eq!(
                r.stale_errors, 0,
                "stale-read errors escaped the retry loop"
            );
            // The headline MVCC gate: with the epoch ring enabled (the
            // default protocol) a writer never evicts a pinned reader, so
            // no mix — updates included — may retry on StaleReader.
            assert_eq!(
                r.stale_retries, 0,
                "a StaleReader retry under the epoch ring: a writer evicted a reader"
            );
            // Bounded-refusal accounting: every expired-deadline probe is
            // deterministic in count, and each one resolves either as a
            // typed cold abort (CacheStats::deadline_aborts) or as a
            // warm-cache hit reclassified to a refusal — never as served.
            assert_eq!(
                r.bounded_refusals,
                probes_per_client(ops) * r.clients as u64,
                "an expired-deadline probe escaped the bounded-refusal column"
            );
            assert!(
                r.availability() < 1.0,
                "bounded refusals were counted as served availability"
            );
            assert_eq!(
                (r.queries - r.bounded_refusals) as f64 / r.queries as f64,
                r.availability(),
                "non-probe operations went unanswered"
            );
            assert_eq!(
                r.deadline_aborts + r.warm_refusals,
                r.bounded_refusals,
                "cold aborts + warm-hit reclassifications failed to cover the probes"
            );
            if r.read_only {
                assert_eq!(
                    r.retention_refreshes, 0,
                    "a read-only mix cannot age past the retention window"
                );
                assert_eq!(r.divergences, 0, "reader answers diverged from the oracle");
            }
        }
        assert!(
            session_io.read_shared > 0,
            "serving mix never took the shared read path"
        );
        assert!(
            shared_ratio_of(session_io) > 0.90,
            "shared-latch ratio {:.4} <= 0.90",
            shared_ratio_of(session_io)
        );
        println!("serve --smoke: all assertions passed\n");
    }
}

/// Deterministic expired-deadline probe count of one client's op stream
/// (the update cadence never collides with a probe slot).
fn probes_per_client(ops: usize) -> u64 {
    (0..ops)
        .filter(|op| op % PROBE_EVERY == PROBE_OFFSET)
        .count() as u64
}

fn push_row(t: &mut Table, r: &MixReport) {
    t.row(&[
        r.clients.to_string(),
        if r.read_only {
            "read-only".into()
        } else {
            format!("updates/{}", 8)
        },
        format!("{:.0}", r.qps),
        format!("{:.1} us", r.p50_us),
        format!("{:.1} us", r.p99_us),
        pct(r.result_hit_rate),
        pct(r.plan_hit_rate),
        r.plan_compiles.to_string(),
        pct(r.shared_ratio()),
        r.stale_retries.to_string(),
        r.retention_refreshes.to_string(),
        pct(r.availability()),
        r.bounded_refusals.to_string(),
        r.deadline_aborts.to_string(),
        r.divergences.to_string(),
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_weights_are_cumulative_and_skewed() {
        let cum = zipf_cumulative();
        assert_eq!(cum.len(), TABLE1.len());
        assert!(cum.windows(2).all(|w| w[0] < w[1]));
        // The head query carries the largest single weight.
        let w0 = cum[0];
        let w_last = cum[TABLE1.len() - 1] - cum[TABLE1.len() - 2];
        assert!(w0 > w_last * 2.0);
        // Sampling respects the skew, roughly.
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 6];
        for _ in 0..6000 {
            counts[pick_weighted(&mut rng, &cum)] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn smoke_mix_on_a_tiny_db() {
        let doc = xmark_doc(0.01);
        let map = synth_multi(
            &doc,
            &SynthAclConfig {
                propagation_ratio: 0.05,
                accessibility_ratio: 0.6,
                sibling_locality: 0.5,
                seed: 3,
            },
            SUBJECTS,
        );
        let db = SecureXmlDb::from_document(doc, &map).unwrap();
        let pool: Vec<u32> = (0..SUBJECTS as u32).collect();
        let oracle = sequential_oracle(&db, &pool);
        db.reset_io_stats();
        let db = Arc::new(RwLock::new(db));
        let cfg = MixConfig {
            clients: 2,
            ops_per_client: 40,
            update_every: 0,
            seed: 11,
            pool: pool.clone(),
        };
        let a = run_mix(&db, &oracle, &cfg);
        let b = run_mix(&db, &oracle, &cfg);
        assert_eq!(a.fingerprint, b.fingerprint, "same-seed mixes must agree");
        assert_eq!(a.divergences + b.divergences, 0);
        assert_eq!(a.stale_retries + b.stale_retries, 0);
        assert_eq!(a.retention_refreshes + b.retention_refreshes, 0);
        assert!(b.result_hit_rate > 0.9, "second run must be cache-warm");

        // And with updates: under the epoch ring the writer never evicts a
        // reader, so nothing is stale and nothing escapes.
        let upd = run_mix(
            &db,
            &oracle,
            &MixConfig {
                clients: 2,
                ops_per_client: 40,
                update_every: 4,
                seed: 11,
                pool,
            },
        );
        assert!(upd.updates > 0);
        assert_eq!(upd.stale_errors, 0);
        assert_eq!(
            upd.stale_retries, 0,
            "the ring must keep pinned readers servable"
        );
    }
}
