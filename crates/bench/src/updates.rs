//! §3.4 / Proposition 1: update costs.
//!
//! Measures (a) the page I/O of single-node vs subtree accessibility
//! updates — the paper's claim is one page read + one write for a node, and
//! `N/B` page I/Os for an `N`-node subtree thanks to clustering — and
//! (b) the net transition-node growth per update, which Proposition 1
//! bounds by 2.

use crate::setup::{synth_column, xmark_doc, ColumnOracle, SUBJECT};
use crate::table::Table;
use crate::Effort;
use dol_core::EmbeddedDol;
use dol_storage::{BufferPool, MemDisk, StoreConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Runs the update experiment.
pub fn run(effort: Effort) {
    let doc = xmark_doc(effort.scale(0.2, 1.0));
    let col = synth_column(&doc, 0.5, 0.03, 9);
    let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 4096));
    let (mut store, mut dol) = EmbeddedDol::build(
        pool.clone(),
        StoreConfig::default(),
        &doc,
        &ColumnOracle(col),
    )
    .expect("build");
    println!(
        "Update costs on XMark ({} nodes, {} blocks of {} records)\n",
        store.total_nodes(),
        store.block_count(),
        store.config().max_records_per_block
    );
    let mut rng = StdRng::seed_from_u64(99);
    let n = store.total_nodes();
    let rounds = effort.pick(60, 300);

    let mut t = Table::new(
        "updates",
        &[
            "kind",
            "updates",
            "avg subtree nodes",
            "avg pages read",
            "avg pages written",
            "max transition growth",
        ],
    );
    // Single-node updates.
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut max_growth = 0i64;
    for _ in 0..rounds {
        let pos = rng.gen_range(0..n);
        let before = store.logical_transition_count().expect("count");
        pool.clear_cache().expect("clear");
        pool.reset_stats();
        dol.set_node(&mut store, pos, SUBJECT, rng.gen_bool(0.5))
            .expect("update");
        pool.flush_all().expect("flush");
        let s = pool.stats();
        reads += s.physical_reads;
        writes += s.physical_writes;
        let after = store.logical_transition_count().expect("count");
        max_growth = max_growth.max(after as i64 - before as i64);
    }
    t.row(&[
        "single node".into(),
        rounds.to_string(),
        "1".into(),
        format!("{:.1}", reads as f64 / rounds as f64),
        format!("{:.1}", writes as f64 / rounds as f64),
        max_growth.to_string(),
    ]);

    // Subtree updates.
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut sizes = 0u64;
    let mut max_growth = 0i64;
    for _ in 0..rounds {
        let pos = rng.gen_range(0..n);
        let size = store.node(pos).expect("node").size as u64;
        sizes += size;
        let before = store.logical_transition_count().expect("count");
        pool.clear_cache().expect("clear");
        pool.reset_stats();
        dol.set_subtree(&mut store, pos, pos + size, SUBJECT, rng.gen_bool(0.5))
            .expect("update");
        pool.flush_all().expect("flush");
        let s = pool.stats();
        reads += s.physical_reads;
        writes += s.physical_writes;
        let after = store.logical_transition_count().expect("count");
        max_growth = max_growth.max(after as i64 - before as i64);
    }
    t.row(&[
        "whole subtree".into(),
        rounds.to_string(),
        format!("{:.1}", sizes as f64 / rounds as f64),
        format!("{:.1}", reads as f64 / rounds as f64),
        format!("{:.1}", writes as f64 / rounds as f64),
        max_growth.to_string(),
    ]);
    t.print();
    store
        .check_integrity()
        .expect("integrity after update storm");
    println!(
        "(Paper shape: node updates touch ~a page; an N-node subtree costs on the order of\n\
         N/B pages because the preorder layout clusters the subtree; Proposition 1 bounds\n\
         net transition growth by 2 per update — the max column must never exceed 2.)\n"
    );
}
