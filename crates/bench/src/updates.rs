//! §3.4 / Proposition 1: update costs.
//!
//! Measures (a) the page I/O of single-node vs subtree accessibility
//! updates — the paper's claim is one page read + one write for a node, and
//! `N/B` page I/Os for an `N`-node subtree thanks to clustering — and
//! (b) the net transition-node growth per update, which Proposition 1
//! bounds by 2, and (c) the overhead of crash consistency: the same
//! logical updates with and without the physical WAL, plus the log bytes
//! appended per update, the fsyncs each transaction pays, and how much of
//! that cost group commit recovers by folding batches of updates into one
//! WAL transaction and one fsync.

use crate::setup::{synth_column, xmark_doc, ColumnOracle, SUBJECT};
use crate::table::Table;
use crate::Effort;
use dol_core::EmbeddedDol;
use dol_storage::{BufferPool, MemDisk, StoreConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secure_xml::acl::SubjectId;
use secure_xml::workloads::{synth_multi, SynthAclConfig};
use secure_xml::{DbConfig, SecureXmlDb, UpdateFn};
use std::sync::Arc;
use std::time::Instant;

/// Runs the update experiment.
pub fn run(effort: Effort) {
    let doc = xmark_doc(effort.scale(0.2, 1.0));
    let col = synth_column(&doc, 0.5, 0.03, 9);
    let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 4096));
    let (mut store, mut dol) = EmbeddedDol::build(
        pool.clone(),
        StoreConfig::default(),
        &doc,
        &ColumnOracle(col),
    )
    .expect("build");
    println!(
        "Update costs on XMark ({} nodes, {} blocks of {} records)\n",
        store.total_nodes(),
        store.block_count(),
        store.config().max_records_per_block
    );
    let mut rng = StdRng::seed_from_u64(99);
    let n = store.total_nodes();
    let rounds = effort.pick(60, 300);

    let mut t = Table::new(
        "updates",
        &[
            "kind",
            "updates",
            "avg subtree nodes",
            "avg pages read",
            "avg pages written",
            "max transition growth",
        ],
    );
    // Single-node updates.
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut max_growth = 0i64;
    for _ in 0..rounds {
        let pos = rng.gen_range(0..n);
        let before = store.logical_transition_count().expect("count");
        pool.clear_cache().expect("clear");
        pool.reset_stats();
        dol.set_node(&mut store, pos, SUBJECT, rng.gen_bool(0.5))
            .expect("update");
        pool.flush_all().expect("flush");
        let s = pool.stats();
        reads += s.physical_reads;
        writes += s.physical_writes;
        let after = store.logical_transition_count().expect("count");
        max_growth = max_growth.max(after as i64 - before as i64);
    }
    t.row(&[
        "single node".into(),
        rounds.to_string(),
        "1".into(),
        format!("{:.1}", reads as f64 / rounds as f64),
        format!("{:.1}", writes as f64 / rounds as f64),
        max_growth.to_string(),
    ]);

    // Subtree updates.
    let mut reads = 0u64;
    let mut writes = 0u64;
    let mut sizes = 0u64;
    let mut max_growth = 0i64;
    for _ in 0..rounds {
        let pos = rng.gen_range(0..n);
        let size = store.node(pos).expect("node").size as u64;
        sizes += size;
        let before = store.logical_transition_count().expect("count");
        pool.clear_cache().expect("clear");
        pool.reset_stats();
        dol.set_subtree(&mut store, pos, pos + size, SUBJECT, rng.gen_bool(0.5))
            .expect("update");
        pool.flush_all().expect("flush");
        let s = pool.stats();
        reads += s.physical_reads;
        writes += s.physical_writes;
        let after = store.logical_transition_count().expect("count");
        max_growth = max_growth.max(after as i64 - before as i64);
    }
    t.row(&[
        "whole subtree".into(),
        rounds.to_string(),
        format!("{:.1}", sizes as f64 / rounds as f64),
        format!("{:.1}", reads as f64 / rounds as f64),
        format!("{:.1}", writes as f64 / rounds as f64),
        max_growth.to_string(),
    ]);
    t.print();
    store
        .check_integrity()
        .expect("integrity after update storm");
    println!(
        "(Paper shape: node updates touch ~a page; an N-node subtree costs on the order of\n\
         N/B pages because the preorder layout clusters the subtree; Proposition 1 bounds\n\
         net transition growth by 2 per update — the max column must never exceed 2.)\n"
    );

    wal_overhead(effort);
}

/// One measured update kind of the WAL-overhead comparison.
#[derive(Clone, Copy)]
enum WalOp {
    SetNode(u64, bool),
    SetSubtree(u64, bool),
    /// Insert a small subtree under the parent, then delete it again (net
    /// zero, so the two databases stay in lockstep across rounds).
    InsertDelete(u64),
}

/// Group-commit batch width of the WAL-overhead comparison.
const BATCH: usize = 8;

/// Crash-consistency overhead: identical update sequences through the
/// database facade on (a) an in-memory database with no log, (b) a
/// persistent database whose every update commits through the physical
/// WAL — including the per-transaction catalog + meta rewrite and an
/// fsync per commit — and (c) the same WAL-backed database committing
/// the updates through `run_batch` in groups of [`BATCH`], which folds
/// every group into one WAL transaction and one fsync.
fn wal_overhead(effort: Effort) {
    let doc = xmark_doc(effort.scale(0.02, 0.1));
    let map = synth_multi(
        &doc,
        &SynthAclConfig {
            propagation_ratio: 0.05,
            accessibility_ratio: 0.6,
            sibling_locality: 0.5,
            seed: 9,
        },
        3,
    );
    let cfg = DbConfig::default();
    let mut plain = SecureXmlDb::with_config(doc, &map, cfg).expect("build");
    let data = Arc::new(MemDisk::new());
    plain.save_to_disk(data.clone()).expect("save image");
    let mut logged =
        SecureXmlDb::open_on(data, Arc::new(MemDisk::new()), cfg).expect("open logged");
    let wal = logged.store().pool().wal().expect("wal attached");
    let data_b = Arc::new(MemDisk::new());
    plain.save_to_disk(data_b.clone()).expect("save image");
    let mut batched =
        SecureXmlDb::open_on(data_b, Arc::new(MemDisk::new()), cfg).expect("open batched");
    let batched_wal = batched.store().pool().wal().expect("wal attached");

    let n = plain.len() as u64;
    println!(
        "WAL overhead on XMark ({n} nodes): same updates, no log vs physical WAL vs \
         group commit (batches of {BATCH})\n"
    );
    let rounds = effort.pick(40, 200);
    let mut rng = StdRng::seed_from_u64(13);
    let mut t = Table::new(
        "crash-consistency overhead",
        &[
            "kind",
            "updates",
            "µs/update (no WAL)",
            "µs/update (WAL)",
            "µs/update (batched)",
            "log bytes/update",
            "fsyncs/txn",
            "fsyncs/txn (batched)",
        ],
    );
    type GenFn = fn(&mut StdRng, u64) -> WalOp;
    let kinds: [(&str, GenFn); 3] = [
        ("single-node access", |r, n| {
            WalOp::SetNode(r.gen_range(0..n), r.gen_bool(0.5))
        }),
        ("subtree access", |r, n| {
            WalOp::SetSubtree(r.gen_range(0..n), r.gen_bool(0.5))
        }),
        ("insert + delete", |r, n| {
            WalOp::InsertDelete(r.gen_range(0..n))
        }),
    ];
    for (kind, gen) in kinds {
        let ops: Vec<WalOp> = (0..rounds).map(|_| gen(&mut rng, n)).collect();
        let mut micros = [0f64; 2];
        let before = wal.stats().bytes_logged;
        let fsyncs_before = wal.stats().commits;
        for (which, db) in [&mut plain, &mut logged].into_iter().enumerate() {
            let start = Instant::now();
            for op in &ops {
                match op {
                    WalOp::SetNode(pos, allow) => {
                        db.set_node_access(*pos, SUBJECT_ID, *allow).expect("set")
                    }
                    WalOp::SetSubtree(pos, allow) => db
                        .set_subtree_access(*pos, SUBJECT_ID, *allow)
                        .expect("set subtree"),
                    WalOp::InsertDelete(parent) => {
                        let sub =
                            secure_xml::xml::parse("<extra><w>v</w></extra>").expect("parses");
                        let at = db.insert_subtree(*parent, &sub).expect("insert");
                        db.delete_subtree(at).expect("delete");
                    }
                }
            }
            micros[which] = start.elapsed().as_secs_f64() * 1e6 / rounds as f64;
        }
        // The same ops again, folded through the group-commit path: every
        // chunk of BATCH members commits as one WAL transaction and one
        // fsync, so the batched database visits the identical final state
        // through rounds/BATCH durable points instead of `txns`.
        let batched_fsyncs_before = batched_wal.stats().commits;
        let start = Instant::now();
        for chunk in ops.chunks(BATCH) {
            let members: Vec<UpdateFn> = chunk.iter().map(member).collect();
            let results = batched.run_batch(&members).expect("batch commit");
            for r in results {
                r.expect("batch member");
            }
        }
        let micros_batched = start.elapsed().as_secs_f64() * 1e6 / rounds as f64;
        let batched_fsyncs = batched_wal.stats().commits - batched_fsyncs_before;
        // An insert+delete round is two transactions on the solo path (one
        // batched member covers both halves).
        let txns = match ops[0] {
            WalOp::InsertDelete(_) => 2 * rounds,
            _ => rounds,
        };
        t.row(&[
            kind.into(),
            txns.to_string(),
            format!("{:.1}", micros[0]),
            format!("{:.1}", micros[1]),
            format!("{:.1}", micros_batched),
            format!(
                "{:.0}",
                (wal.stats().bytes_logged - before) as f64 / txns as f64
            ),
            format!(
                "{:.2}",
                (wal.stats().commits - fsyncs_before) as f64 / txns as f64
            ),
            format!("{:.2}", batched_fsyncs as f64 / txns as f64),
        ]);
    }
    t.print();
    // Lockstep check: the solo-WAL and batched databases applied the same
    // ops, so they must agree on every sampled accessibility bit.
    let (lr, br) = (logged.reader(), batched.reader());
    for pos in (0..n).step_by((n as usize / 32).max(1)) {
        assert_eq!(
            lr.accessible(pos, SUBJECT_ID).expect("solo probe"),
            br.accessible(pos, SUBJECT_ID).expect("batched probe"),
            "group commit diverged from solo commits at node {pos}"
        );
    }
    println!(
        "(The WAL column pays for full page images of every dirtied page plus the\n\
         per-transaction catalog + meta rewrite, an fsync per commit, and periodic\n\
         checkpoints — the price of recovering to an exact update boundary. The\n\
         batched column commits the identical updates through `run_batch` in\n\
         groups of {BATCH}: one WAL transaction and one fsync per group, which is\n\
         where the fsyncs/txn column collapses — at the same all-or-nothing\n\
         durability per batch.)\n"
    );
}

/// Lowers one [`WalOp`] to a group-commit batch member.
fn member(op: &WalOp) -> UpdateFn {
    match *op {
        WalOp::SetNode(pos, allow) => {
            Box::new(move |db: &mut SecureXmlDb| db.set_node_access(pos, SUBJECT_ID, allow))
        }
        WalOp::SetSubtree(pos, allow) => {
            Box::new(move |db: &mut SecureXmlDb| db.set_subtree_access(pos, SUBJECT_ID, allow))
        }
        WalOp::InsertDelete(parent) => Box::new(move |db: &mut SecureXmlDb| {
            let sub = secure_xml::xml::parse("<extra><w>v</w></extra>").expect("parses");
            let at = db.insert_subtree(parent, &sub)?;
            db.delete_subtree(at)?;
            Ok(())
        }),
    }
}

/// The facade-level subject the WAL-overhead updates target.
const SUBJECT_ID: SubjectId = SubjectId(1);
