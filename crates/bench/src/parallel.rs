//! Parallel candidate matching: wall-clock scaling of
//! [`ExecOptions::parallelism`] on the descendant-join queries, whose large
//! candidate lists are what the contiguous-chunk fan-out splits.
//!
//! Every worker count must return exactly the sequential answer set — the
//! table re-checks that on each run.

use crate::setup::{synth_column, xmark_doc, BenchDb, ColumnOracle, SUBJECT};
use crate::table::{f3, Table};
use crate::Effort;
use dol_nok::{parse_query, ExecOptions, QueryPlan, Security};
use std::time::{Duration, Instant};

/// Times one configuration: best of `reps` runs on a warm cache.
fn best_time(
    engine: &dol_nok::QueryEngine<'_>,
    plan: &QueryPlan,
    opts: ExecOptions,
    reps: usize,
) -> (Duration, Vec<u64>) {
    let mut best = Duration::MAX;
    let mut matches = Vec::new();
    for _ in 0..reps {
        let start = Instant::now();
        let res = engine
            .execute_plan_opts(plan, Security::BindingLevel(SUBJECT), opts.clone())
            .expect("query");
        let t = start.elapsed();
        if t < best {
            best = t;
        }
        matches = res.matches;
    }
    (best, matches)
}

/// Runs the parallelism sweep up to `max_workers` threads (0 = all cores).
pub fn run(effort: Effort, max_workers: usize) {
    let max_workers = match max_workers {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    };
    let doc = xmark_doc(effort.scale(0.5, 3.0));
    let col = synth_column(&doc, 0.5, 0.03, 7);
    let db = BenchDb::build(doc, &ColumnOracle(col), 8192);
    let engine = db.engine();
    let reps = effort.pick(5, 9);
    let mut t = Table::new(
        &format!(
            "parallel candidate matching (XMark {} nodes, warm cache, best of {reps})",
            db.doc.len()
        ),
        &["query", "workers", "time", "speedup", "answers"],
    );
    for (id, q) in [("Q5", "//listitem//keyword"), ("Q6", "//item//emph")] {
        let plan = QueryPlan::new(parse_query(q).expect("query parses"));
        let (base, base_matches) = best_time(&engine, &plan, ExecOptions::default(), reps);
        let mut workers = 1usize;
        while workers <= max_workers {
            let opts = ExecOptions {
                parallelism: workers,
                ..ExecOptions::default()
            };
            let (time, matches) = best_time(&engine, &plan, opts, reps);
            assert_eq!(matches, base_matches, "{id}: parallel answers diverged");
            t.row(&[
                id.to_string(),
                workers.to_string(),
                format!("{:.3} ms", time.as_secs_f64() * 1e3),
                f3(base.as_secs_f64() / time.as_secs_f64()),
                matches.len().to_string(),
            ]);
            workers *= 2;
        }
    }
    t.print();
    println!(
        "(Candidates are split into contiguous chunks over scoped workers sharing one decoded\n\
         subject column; outputs are concatenated in chunk order, so answers are byte-identical\n\
         to sequential evaluation at every worker count.)\n"
    );
}
