//! MVCC epoch ring + group commit: the acceptance gate for "writers that
//! never evict readers".
//!
//! Three sections, one database protocol:
//!
//! 1. **Throughput at equal durability** — the same update sequence on a
//!    real file-backed database, committed solo (one WAL transaction and
//!    one fsync per update) vs group-committed (`run_batch`, K updates
//!    per WAL transaction and fsync). Both end in byte-equal query
//!    answers; the batched column amortizes the per-transaction catalog +
//!    meta rewrite and the sync, which is where the throughput headline
//!    comes from.
//! 2. **Pinned readers under a writer** — snapshot readers pinned to
//!    every retained epoch keep answering their own epoch's oracle
//!    exactly while batches commit over them; a reader that outlives the
//!    retention window gets typed [`DbError::RetentionExceeded`] (never a
//!    wrong or torn answer) and [`DbReader::query_with_retry`] refreshes
//!    it onto the live epoch.
//! 3. **Concurrent group commit** — writer threads submit two-node
//!    atomic updates through the [`GroupCommitter`] while reader threads
//!    check the pair invariant on every snapshot: members land whole or
//!    not at all, rejected members never disturb their batch peers, and
//!    the committer's counters reconcile exactly.
//!
//! The correctness gates (zero stale errors, zero invariant violations,
//! solo ≡ batched answers, counter reconciliation, batched fsyncs/update
//! at most a fifth of solo) are asserted in **every** mode; `--smoke`
//! only pins the effort so CI runs a deterministic small instance. The
//! throughput ratio is recorded in `BENCH_mvcc.json`, never gated — it
//! depends on the disk behind the temp dir.

use crate::table::Table;
use crate::Effort;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secure_xml::acl::SubjectId;
use secure_xml::storage::{Disk, FileDisk};
use secure_xml::workloads::{synth_multi, xmark, SynthAclConfig, XmarkConfig};
use secure_xml::{
    DbConfig, DbError, DbReader, GroupCommitConfig, GroupCommitter, SecureXmlDb, Security, UpdateFn,
};
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Epochs the version ring retains in every section.
const RETAIN: usize = 4;
/// Members folded into one WAL transaction by the batched column.
const BATCH_K: usize = 16;
/// The subject whose accessibility the update storm flips.
const SUBJECT: SubjectId = SubjectId(1);

/// The query suite every oracle check replays.
const SUITE: &[&str] = &["//listitem//keyword", "//item//emph", "//category[name]"];
/// The security modes the suite runs under.
const MODES: &[Security] = &[Security::None, Security::BindingLevel(SUBJECT)];

/// Runs the MVCC + group-commit experiment.
pub fn run(effort: Effort, seed: u64, smoke: bool) {
    let effort = if smoke { Effort::Quick } else { effort };
    println!("MVCC epoch ring + group commit (seed {seed}, retain {RETAIN}, K={BATCH_K})\n");

    let tp = throughput(effort, seed);
    let pr = pinned_readers(effort, seed);
    let cc = concurrent(effort, seed);

    let mut t = Table::new("mvcc", &["section", "updates", "metric", "value"]);
    t.row(&[
        "throughput".into(),
        tp.updates.to_string(),
        "solo updates/s".into(),
        format!("{:.0}", tp.solo_ups),
    ]);
    t.row(&[
        "throughput".into(),
        tp.updates.to_string(),
        "batched updates/s".into(),
        format!("{:.0}", tp.batched_ups),
    ]);
    t.row(&[
        "throughput".into(),
        tp.updates.to_string(),
        "batched/solo ratio".into(),
        format!("{:.2}x", tp.ratio),
    ]);
    t.row(&[
        "throughput".into(),
        tp.updates.to_string(),
        "fsyncs/update solo".into(),
        format!("{:.3}", tp.solo_fsyncs_per_update),
    ]);
    t.row(&[
        "throughput".into(),
        tp.updates.to_string(),
        "fsyncs/update batched".into(),
        format!("{:.3}", tp.batched_fsyncs_per_update),
    ]);
    t.row(&[
        "pinned readers".into(),
        pr.commits.to_string(),
        "oracle checks".into(),
        pr.oracle_checks.to_string(),
    ]);
    t.row(&[
        "pinned readers".into(),
        pr.commits.to_string(),
        "stale errors".into(),
        pr.stale_errors.to_string(),
    ]);
    t.row(&[
        "pinned readers".into(),
        pr.commits.to_string(),
        "retention refusals".into(),
        pr.retention_refusals.to_string(),
    ]);
    t.row(&[
        "group commit".into(),
        cc.submitted.to_string(),
        "batches".into(),
        cc.batches.to_string(),
    ]);
    t.row(&[
        "group commit".into(),
        cc.submitted.to_string(),
        "max batch".into(),
        cc.max_batch_seen.to_string(),
    ]);
    t.row(&[
        "group commit".into(),
        cc.submitted.to_string(),
        "rejected members".into(),
        cc.rejected.to_string(),
    ]);
    t.row(&[
        "group commit".into(),
        cc.submitted.to_string(),
        "overload pushbacks".into(),
        cc.overloads.to_string(),
    ]);
    t.row(&[
        "group commit".into(),
        cc.submitted.to_string(),
        "reader snapshots".into(),
        cc.reader_checks.to_string(),
    ]);
    t.print();
    println!(
        "(Solo and batched columns run the identical update sequence to byte-equal\n\
         answers; the batched column folds {BATCH_K} updates into one WAL transaction\n\
         and one fsync. Pinned readers replay their epoch's oracle after every\n\
         commit; past the {RETAIN}-epoch window they fail typed and refresh.)\n"
    );

    write_json(seed, &tp, &pr, &cc);

    if smoke {
        println!("mvcc --smoke: all assertions passed\n");
    }
}

/// Section 1 results: solo vs group-committed update throughput.
struct Throughput {
    updates: usize,
    solo_ups: f64,
    batched_ups: f64,
    ratio: f64,
    solo_fsyncs_per_update: f64,
    batched_fsyncs_per_update: f64,
}

/// Section 2 results: pinned readers against per-epoch oracles.
struct Pinned {
    commits: usize,
    oracle_checks: usize,
    stale_errors: usize,
    retention_refusals: usize,
}

/// Section 3 results: the concurrent committer's reconciled counters.
struct Concurrent {
    submitted: u64,
    committed: u64,
    rejected: u64,
    batches: u64,
    max_batch_seen: u64,
    overloads: u64,
    solo_fallbacks: u64,
    reader_checks: u64,
    retry_refreshes: u64,
    probe_refusals: u64,
}

fn acl_config() -> SynthAclConfig {
    SynthAclConfig {
        propagation_ratio: 0.05,
        accessibility_ratio: 0.6,
        sibling_locality: 0.5,
        seed: 9,
    }
}

fn build_mem(effort: Effort, scale_quick: f64, scale_full: f64) -> SecureXmlDb {
    let doc = xmark(&XmarkConfig {
        scale: effort.scale(scale_quick, scale_full),
        seed: 20050405,
    });
    let map = synth_multi(&doc, &acl_config(), 3);
    SecureXmlDb::with_config(
        doc,
        &map,
        DbConfig {
            epoch_retain: RETAIN,
            ..DbConfig::default()
        },
    )
    .expect("build")
}

/// The full suite's answers on one handle, used as a whole-epoch oracle.
fn suite_answers(reader: &DbReader) -> Vec<Vec<u64>> {
    let mut out = Vec::new();
    for q in SUITE {
        for &sec in MODES {
            out.push(reader.query(q, sec).expect("oracle query").matches);
        }
    }
    out
}

/// Solo vs batched commits of the same update sequence on file-backed
/// disks (real fsyncs), ending in identical states.
fn throughput(effort: Effort, seed: u64) -> Throughput {
    let dir = std::env::temp_dir().join(format!("dol-bench-mvcc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    let doc = xmark(&XmarkConfig {
        scale: effort.scale(0.02, 0.1),
        seed: 20050405,
    });
    let map = synth_multi(&doc, &acl_config(), 3);
    let cfg = DbConfig {
        epoch_retain: RETAIN,
        ..DbConfig::default()
    };
    let image = SecureXmlDb::with_config(doc, &map, cfg).expect("build");
    let n = image.len() as u64;
    let updates = effort.pick(12, 120) * BATCH_K;
    let ops: Vec<(u64, bool)> = {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..updates)
            .map(|_| (rng.gen_range(1..n), rng.gen_bool(0.5)))
            .collect()
    };

    let open = |name: &str| -> SecureXmlDb {
        let data: Arc<dyn Disk> =
            Arc::new(FileDisk::create(&dir.join(format!("{name}.img"))).expect("data disk"));
        image.save_to_disk(data.clone()).expect("save image");
        let wal: Arc<dyn Disk> =
            Arc::new(FileDisk::create(&dir.join(format!("{name}.wal"))).expect("wal disk"));
        SecureXmlDb::open_on(data, wal, cfg).expect("open")
    };

    // Solo: every update is its own WAL transaction and fsync.
    let mut solo = open("solo");
    let wal = solo.store().pool().wal().expect("wal attached");
    let fsyncs_before = wal.stats().commits;
    let start = Instant::now();
    for &(pos, allow) in &ops {
        solo.set_node_access(pos, SUBJECT, allow).expect("solo set");
    }
    let solo_secs = start.elapsed().as_secs_f64();
    let solo_fsyncs = wal.stats().commits - fsyncs_before;

    // Batched: K updates fold into one WAL transaction and one fsync.
    let mut batched = open("batched");
    let wal = batched.store().pool().wal().expect("wal attached");
    let fsyncs_before = wal.stats().commits;
    let epoch_before = batched.epoch();
    let start = Instant::now();
    for chunk in ops.chunks(BATCH_K) {
        let members: Vec<UpdateFn> = chunk
            .iter()
            .map(|&(pos, allow)| -> UpdateFn {
                Box::new(move |db: &mut SecureXmlDb| db.set_node_access(pos, SUBJECT, allow))
            })
            .collect();
        let results = batched.run_batch(&members).expect("batch commit");
        assert!(
            results.iter().all(|r| r.is_ok()),
            "every throughput member is a valid update"
        );
    }
    let batched_secs = start.elapsed().as_secs_f64();
    let batched_fsyncs = wal.stats().commits - fsyncs_before;
    let batches = updates.div_ceil(BATCH_K) as u64;
    assert_eq!(
        batched.epoch() - epoch_before,
        batches,
        "one epoch per batch, not per member"
    );
    let ws = wal.stats();
    assert_eq!(
        ws.batch_commits, batches,
        "every batch logged a batch record"
    );
    assert_eq!(
        ws.batched_members, updates as u64,
        "the WAL accounted every batch member"
    );

    // Equal durability must also mean equal answers: the two databases saw
    // the same updates and must agree query-for-query.
    let solo_answers = suite_answers(&solo.reader());
    let batched_answers = suite_answers(&batched.reader());
    assert_eq!(
        solo_answers, batched_answers,
        "solo and group-committed histories diverged"
    );

    std::fs::remove_dir_all(&dir).ok();

    let solo_fpu = solo_fsyncs as f64 / updates as f64;
    let batched_fpu = batched_fsyncs as f64 / updates as f64;
    assert!(
        solo_fpu >= 1.0,
        "solo commits must fsync at least once per update (got {solo_fpu:.3})"
    );
    assert!(
        batched_fpu * 5.0 <= solo_fpu,
        "group commit must amortize fsyncs at least 5x \
         (solo {solo_fpu:.3}/update, batched {batched_fpu:.3}/update)"
    );
    Throughput {
        updates,
        solo_ups: updates as f64 / solo_secs,
        batched_ups: updates as f64 / batched_secs,
        ratio: solo_secs / batched_secs,
        solo_fsyncs_per_update: solo_fpu,
        batched_fsyncs_per_update: batched_fpu,
    }
}

/// Readers pinned to every retained epoch answer their own oracle after
/// every group commit; past the window they fail typed and refresh.
fn pinned_readers(effort: Effort, seed: u64) -> Pinned {
    let mut db = build_mem(effort, 0.02, 0.05);
    let n = db.len() as u64;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    let commits = RETAIN + effort.pick(3, 8);
    let mut pinned: Vec<(DbReader, Vec<Vec<u64>>)> = Vec::new();
    let mut oracle_checks = 0usize;
    let stale_errors = 0usize;
    let mut retention_refusals = 0usize;

    for _ in 0..commits {
        let r = db.reader();
        let oracle = suite_answers(&r);
        pinned.push((r, oracle));

        let members: Vec<UpdateFn> = (0..4)
            .map(|_| -> UpdateFn {
                let pos = rng.gen_range(1..n);
                let allow = rng.gen_bool(0.5);
                Box::new(move |db: &mut SecureXmlDb| db.set_node_access(pos, SUBJECT, allow))
            })
            .collect();
        let results = db.run_batch(&members).expect("batch");
        assert!(results.iter().all(|r| r.is_ok()));

        let floor = db.retention_floor();
        assert_eq!(
            floor,
            db.epoch().saturating_sub(RETAIN as u64),
            "the ring floor tracks the epoch minus the retention window"
        );
        for (r, oracle) in &pinned {
            let mut i = 0;
            for q in SUITE {
                for &sec in MODES {
                    match r.query(q, sec) {
                        Ok(res) if r.epoch() >= floor => {
                            oracle_checks += 1;
                            assert_eq!(
                                res.matches,
                                oracle[i],
                                "pinned epoch {} answered off its own oracle on {q}",
                                r.epoch()
                            );
                        }
                        Ok(_) => panic!(
                            "reader pinned below the floor ({} < {floor}) must refuse, not answer",
                            r.epoch()
                        ),
                        Err(DbError::RetentionExceeded { seen, oldest, now }) => {
                            retention_refusals += 1;
                            assert!(seen < floor, "refusal for a servable epoch {seen}");
                            assert_eq!(seen, r.epoch());
                            assert_eq!(oldest, floor);
                            assert_eq!(now, db.epoch());
                        }
                        Err(e) => panic!("pinned reader failed untyped on {q}: {e}"),
                    }
                    i += 1;
                }
            }
        }
    }

    // Zero StaleReader by construction — any would have panicked above.
    assert_eq!(stale_errors, 0);
    assert!(
        retention_refusals > 0,
        "the sweep must outlive the window to exercise RetentionExceeded"
    );
    // The refresh path: the oldest reader re-snapshots and serves the
    // *live* epoch's answers.
    let (mut oldest, _) = pinned.swap_remove(0);
    let live = suite_answers(&db.reader());
    let refreshed = oldest
        .query_with_retry(SUITE[0], MODES[1], 1, || db.reader())
        .expect("refresh path");
    assert_eq!(
        refreshed.matches, live[1],
        "refreshed reader serves the live epoch"
    );
    Pinned {
        commits,
        oracle_checks,
        stale_errors,
        retention_refusals,
    }
}

/// Writer threads push two-node atomic members through the group
/// committer while reader threads check the pair invariant on every
/// snapshot; the counters must reconcile exactly.
fn concurrent(effort: Effort, seed: u64) -> Concurrent {
    let mut db = build_mem(effort, 0.02, 0.05);
    let n = db.len() as u64;
    // Two probe nodes whose accessibility every member sets *together*:
    // readers must never observe them split.
    let (a, b) = (1u64, n / 2);
    db.run_update(|d| {
        d.set_node_access(a, SUBJECT, true)?;
        d.set_node_access(b, SUBJECT, true)
    })
    .expect("seed the probe pair");

    let gc = GroupCommitter::new(
        Arc::new(RwLock::new(db)),
        GroupCommitConfig {
            queue_capacity: 32,
            max_batch: 8,
            flush_interval: std::time::Duration::from_millis(1),
        },
    );
    let writers = 4;
    let per_writer = effort.pick(40, 200);
    let done = AtomicBool::new(false);
    let committed_ok = AtomicU64::new(0);
    let rejected_members = AtomicU64::new(0);
    let overload_retries = AtomicU64::new(0);
    let reader_checks = AtomicU64::new(0);
    let invariant_violations = AtomicU64::new(0);
    let stale_errors = AtomicU64::new(0);
    let retry_refreshes = AtomicU64::new(0);
    let probe_refusals = AtomicU64::new(0);

    std::thread::scope(|s| {
        for w in 0..writers {
            let gc = &gc;
            let committed_ok = &committed_ok;
            let rejected_members = &rejected_members;
            let overload_retries = &overload_retries;
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ (w as u64) << 32);
                for i in 0..per_writer {
                    // Every 11th member fails validation on purpose: it must
                    // be rejected alone, leaving its batch peers intact.
                    let poison_pill = i % 11 == 10;
                    let v = rng.gen_bool(0.5);
                    let submit = || {
                        gc.submit_fn(move |db| {
                            if poison_pill {
                                return db.set_node_access(u64::MAX, SUBJECT, v);
                            }
                            db.set_node_access(a, SUBJECT, v)?;
                            db.set_node_access(b, SUBJECT, v)
                        })
                    };
                    loop {
                        match submit() {
                            Ok(()) => {
                                assert!(!poison_pill, "an invalid member cannot commit");
                                committed_ok.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(DbError::Overloaded) => {
                                // Backpressure: nothing was queued; yield and
                                // resubmit.
                                overload_retries.fetch_add(1, Ordering::Relaxed);
                                std::thread::yield_now();
                            }
                            Err(DbError::InvalidNode(_)) if poison_pill => {
                                rejected_members.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(e) => panic!("writer {w} update {i} failed: {e}"),
                        }
                    }
                }
            });
        }
        for _ in 0..3 {
            let gc = &gc;
            let done = &done;
            let reader_checks = &reader_checks;
            let invariant_violations = &invariant_violations;
            let stale_errors = &stale_errors;
            let retry_refreshes = &retry_refreshes;
            let probe_refusals = &probe_refusals;
            s.spawn(move || {
                while !done.load(Ordering::Acquire) {
                    let mut r = gc.reader();
                    // A snapshot is a whole epoch: the pair moves together.
                    match (r.accessible(a, SUBJECT), r.accessible(b, SUBJECT)) {
                        (Ok(x), Ok(y)) => {
                            reader_checks.fetch_add(1, Ordering::Relaxed);
                            if x != y {
                                invariant_violations.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        (Err(DbError::StaleReader { .. }), _)
                        | (_, Err(DbError::StaleReader { .. })) => {
                            stale_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        // The snapshot aged past the window between mint and
                        // probe: legal under a fast writer storm, typed,
                        // never wrong — the next loop iteration refreshes.
                        (Err(DbError::RetentionExceeded { .. }), _)
                        | (_, Err(DbError::RetentionExceeded { .. })) => {
                            probe_refusals.fetch_add(1, Ordering::Relaxed);
                        }
                        (Err(e), _) | (_, Err(e)) => panic!("reader probe failed: {e}"),
                    }
                    let before = r.epoch();
                    let res = r.query_with_retry(SUITE[0], MODES[1], 8, || gc.reader());
                    res.expect("retry query rides through the writer storm");
                    if r.epoch() != before {
                        retry_refreshes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        // The writer threads spawned first; wait for them by joining the
        // scope's writer handles implicitly: spawn a sentinel that flips
        // `done` once all submissions are accounted for.
        let gc = &gc;
        let done = &done;
        let committed_ok = &committed_ok;
        let rejected_members = &rejected_members;
        s.spawn(move || {
            let total = (writers * per_writer) as u64;
            while committed_ok.load(Ordering::Relaxed) + rejected_members.load(Ordering::Relaxed)
                < total
            {
                std::thread::yield_now();
            }
            // One final coherent look before stopping the readers.
            let r = gc.reader();
            let x = r.accessible(a, SUBJECT).expect("final probe");
            let y = r.accessible(b, SUBJECT).expect("final probe");
            assert_eq!(x, y, "the final epoch must hold the pair invariant");
            done.store(true, Ordering::Release);
        });
    });

    let stats = gc.stats();
    let db = Arc::clone(gc.db());
    gc.close();
    let db = db.read().unwrap_or_else(|e| e.into_inner());
    assert!(!db.is_poisoned(), "the storm must end on a healthy handle");

    // Counter reconciliation: every submission is accounted exactly once.
    let ok = committed_ok.load(Ordering::Relaxed);
    let rejected = rejected_members.load(Ordering::Relaxed);
    assert_eq!(ok + rejected, (writers * per_writer) as u64);
    assert_eq!(stats.committed, ok, "committer lost or invented commits");
    assert_eq!(stats.rejected, rejected, "committer miscounted rejections");
    assert_eq!(
        stats.submitted,
        stats.committed + stats.rejected,
        "submissions must partition into commits and rejections"
    );
    assert_eq!(
        stats.overloads,
        overload_retries.load(Ordering::Relaxed),
        "every Overloaded the writers saw is an admission-control pushback"
    );
    assert_eq!(
        stats.solo_fallbacks, 0,
        "no batch needed the solo-replay path"
    );
    assert!(stats.batches >= 1);
    assert_eq!(
        invariant_violations.load(Ordering::Relaxed),
        0,
        "a reader saw the probe pair split: a batch member tore"
    );
    assert_eq!(
        stale_errors.load(Ordering::Relaxed),
        0,
        "with the epoch ring enabled no reader may see StaleReader"
    );

    Concurrent {
        submitted: stats.submitted,
        committed: stats.committed,
        rejected: stats.rejected,
        batches: stats.batches,
        max_batch_seen: stats.max_batch_seen,
        overloads: stats.overloads,
        solo_fallbacks: stats.solo_fallbacks,
        reader_checks: reader_checks.load(Ordering::Relaxed),
        retry_refreshes: retry_refreshes.load(Ordering::Relaxed),
        probe_refusals: probe_refusals.load(Ordering::Relaxed),
    }
}

fn write_json(seed: u64, tp: &Throughput, pr: &Pinned, cc: &Concurrent) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"mvcc\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"epoch_retain\": {RETAIN},\n"));
    out.push_str(&format!("  \"batch_k\": {BATCH_K},\n"));
    out.push_str(&format!("  \"updates\": {},\n", tp.updates));
    out.push_str(&format!(
        "  \"solo_updates_per_sec\": {:.1},\n",
        tp.solo_ups
    ));
    out.push_str(&format!(
        "  \"batched_updates_per_sec\": {:.1},\n",
        tp.batched_ups
    ));
    out.push_str(&format!("  \"throughput_ratio\": {:.2},\n", tp.ratio));
    out.push_str(&format!(
        "  \"fsyncs_per_update_solo\": {:.4},\n",
        tp.solo_fsyncs_per_update
    ));
    out.push_str(&format!(
        "  \"fsyncs_per_update_batched\": {:.4},\n",
        tp.batched_fsyncs_per_update
    ));
    out.push_str(&format!("  \"pinned_commits\": {},\n", pr.commits));
    out.push_str(&format!(
        "  \"pinned_oracle_checks\": {},\n",
        pr.oracle_checks
    ));
    out.push_str(&format!("  \"stale_errors\": {},\n", pr.stale_errors));
    out.push_str(&format!(
        "  \"retention_refusals\": {},\n",
        pr.retention_refusals
    ));
    out.push_str(&format!("  \"gc_submitted\": {},\n", cc.submitted));
    out.push_str(&format!("  \"gc_committed\": {},\n", cc.committed));
    out.push_str(&format!("  \"gc_rejected\": {},\n", cc.rejected));
    out.push_str(&format!("  \"gc_batches\": {},\n", cc.batches));
    out.push_str(&format!("  \"gc_max_batch\": {},\n", cc.max_batch_seen));
    out.push_str(&format!("  \"gc_overloads\": {},\n", cc.overloads));
    out.push_str(&format!(
        "  \"gc_solo_fallbacks\": {},\n",
        cc.solo_fallbacks
    ));
    out.push_str(&format!("  \"gc_reader_checks\": {},\n", cc.reader_checks));
    out.push_str(&format!(
        "  \"gc_retry_refreshes\": {},\n",
        cc.retry_refreshes
    ));
    out.push_str(&format!("  \"gc_probe_refusals\": {}\n", cc.probe_refusals));
    out.push_str("}\n");
    match std::fs::File::create("BENCH_mvcc.json").and_then(|mut f| f.write_all(out.as_bytes())) {
        Ok(()) => println!("(wrote BENCH_mvcc.json)\n"),
        Err(e) => eprintln!("could not write BENCH_mvcc.json: {e}"),
    }
}
