//! `experiments` — regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [--quick|--full] [--parallelism=N] [--seed=N] [--clients=N] [--subjects=N]
//!             [--smoke]
//!             [fig4a fig4b fig5 fig6 storage queries fig7 fig8 updates compile parallel faults crash mvcc serve soak shard subjects net | all]
//! ```
//!
//! `--parallelism=N` caps the worker sweep of the `parallel` experiment
//! (`0` = all available cores, the default). `--seed=N` re-seeds the
//! `faults`, `crash`, `mvcc`, `serve`, `soak`, and `compile` experiments'
//! deterministic schedules. `--clients=N` caps the `serve` experiment's
//! client sweep, and `--smoke` makes `serve` run a small pinned
//! configuration that asserts determinism, zero oracle divergences, zero
//! stale-read errors, and a >90% shared-latch ratio, shrinks the `soak`
//! chaos schedule to CI size (its gates — zero wrong answers, zero
//! unrecovered poison windows, breaker trip/probe and deadline-abort
//! coverage — are asserted in every mode), and pins the `compile`
//! experiment to a small instance whose byte-identity assertions
//! (compiled answers ≡ interpreted answers, one lowering per query) gate
//! CI while the speedup ratio is recorded, never gated.
//!
//! The `net` experiment re-execs this binary into server and client
//! processes via the hidden `__net-server` / `__net-client` argv modes,
//! handled before normal argument parsing.

use dol_bench::{
    ablation, compile, crash, faults, fig4, fig56, fig7, fig8, mvcc, net, parallel, queries, serve,
    shard, soak, storage, subjects, updates, Effort,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Hidden re-exec modes of the `net` loopback harness: this process IS
    // the server (or a wire client), not the experiment driver.
    match args.first().map(String::as_str) {
        Some("__net-server") => return net::server_child(&args[1..]),
        Some("__net-client") => return net::client_child(&args[1..]),
        _ => {}
    }
    let mut effort = Effort::Quick;
    let mut parallelism = 0usize;
    let mut seed = faults::DEFAULT_SEED;
    let mut clients = 0usize;
    let mut subjects = 0usize;
    let mut smoke = false;
    let mut selected: Vec<String> = Vec::new();
    for a in &args {
        match a.as_str() {
            "--quick" => effort = Effort::Quick,
            "--full" => effort = Effort::Full,
            "--smoke" => smoke = true,
            other => match other.strip_prefix("--parallelism=") {
                Some(n) => match n.parse() {
                    Ok(n) => parallelism = n,
                    Err(_) => eprintln!("bad --parallelism value `{n}` (ignored)"),
                },
                None => match (
                    other.strip_prefix("--seed="),
                    other.strip_prefix("--clients="),
                    other.strip_prefix("--subjects="),
                ) {
                    (Some(n), _, _) => match n.parse() {
                        Ok(n) => seed = n,
                        Err(_) => eprintln!("bad --seed value `{n}` (ignored)"),
                    },
                    (None, Some(n), _) => match n.parse() {
                        Ok(n) => clients = n,
                        Err(_) => eprintln!("bad --clients value `{n}` (ignored)"),
                    },
                    (None, None, Some(n)) => match n.parse() {
                        Ok(n) => subjects = n,
                        Err(_) => eprintln!("bad --subjects value `{n}` (ignored)"),
                    },
                    (None, None, None) => selected.push(other.to_string()),
                },
            },
        }
    }
    if selected.is_empty() || selected.iter().any(|s| s == "all") {
        selected = vec![
            "queries".into(),
            "fig4a".into(),
            "fig4b".into(),
            "fig5".into(),
            "storage".into(),
            "fig7".into(),
            "fig8".into(),
            "updates".into(),
            "ablation".into(),
            "compile".into(),
            "parallel".into(),
            "faults".into(),
            "crash".into(),
            "mvcc".into(),
            "serve".into(),
            "soak".into(),
            "shard".into(),
            "subjects".into(),
            "net".into(),
        ];
    }
    println!(
        "DOL experiment harness ({} mode)\n{}\n",
        match effort {
            Effort::Quick => "quick",
            Effort::Full => "full",
        },
        "=".repeat(72)
    );
    for s in selected {
        match s.as_str() {
            "fig4a" => fig4::fig4a(effort),
            "fig4b" => fig4::fig4b(effort),
            // Figures 5 and 6 come from the same subject-scaling runs.
            "fig5" | "fig6" => {
                fig56::livelink(effort);
                fig56::unixfs(effort);
            }
            "storage" => storage::run(effort),
            "queries" => queries::run(effort),
            "fig7" => fig7::run(effort),
            "fig8" => fig8::run(effort),
            "updates" => updates::run(effort),
            "ablation" => ablation::run(effort),
            "compile" => compile::run(effort, seed, smoke),
            "parallel" => parallel::run(effort, parallelism),
            "faults" => faults::run(effort, seed),
            "crash" => crash::run(effort, seed),
            "mvcc" => mvcc::run(effort, seed, smoke),
            "serve" => serve::run(effort, seed, clients, smoke, subjects),
            "soak" => soak::run(effort, seed, smoke),
            "shard" => shard::run(effort, seed, smoke),
            "subjects" => subjects::run(effort, seed, smoke),
            "net" => net::run(effort, seed, smoke),
            other => eprintln!("unknown experiment `{other}` (skipped)"),
        }
    }
}
