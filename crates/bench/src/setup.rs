//! Shared experiment fixtures: secured XMark databases and worlds.

use dol_acl::{AccessOracle, BitVec, SubjectId};
use dol_core::EmbeddedDol;
use dol_nok::build_tag_index;
use dol_storage::{BPlusTree, BufferPool, Disk, MemDisk, StoreConfig, StructStore, ValueStore};
use dol_workloads::{xmark, SynthAclConfig, XmarkConfig};
use dol_xml::{Document, NodeId, TagId};
use std::sync::Arc;

/// A fully-built secured database over a generated document, owning
/// everything a `QueryEngine` borrows.
pub struct BenchDb {
    /// The master document.
    pub doc: Document,
    /// The block store with embedded codes.
    pub store: StructStore,
    /// Character data.
    pub values: ValueStore,
    /// The embedded DOL.
    pub dol: EmbeddedDol,
    /// The tag index.
    pub tag_index: BPlusTree<TagId, Vec<u64>>,
    /// The buffer pool (for I/O accounting and cache clearing).
    pub pool: Arc<BufferPool>,
}

impl BenchDb {
    /// Builds a secured database from a document and oracle.
    pub fn build(doc: Document, oracle: &impl AccessOracle, pool_pages: usize) -> BenchDb {
        Self::build_on(Arc::new(MemDisk::new()), doc, oracle, pool_pages)
    }

    /// Builds a secured database on an explicit disk (the fault-injection
    /// experiment passes a [`dol_storage::FaultDisk`] here).
    pub fn build_on(
        disk: Arc<dyn Disk>,
        doc: Document,
        oracle: &impl AccessOracle,
        pool_pages: usize,
    ) -> BenchDb {
        Self::build_with_pool(Arc::new(BufferPool::new(disk, pool_pages)), doc, oracle)
    }

    /// Builds a secured database through a caller-configured buffer pool
    /// (e.g. with checksum verification toggled for overhead measurements).
    pub fn build_with_pool(
        pool: Arc<BufferPool>,
        doc: Document,
        oracle: &impl AccessOracle,
    ) -> BenchDb {
        let (store, dol) = EmbeddedDol::build(pool.clone(), StoreConfig::default(), &doc, oracle)
            .expect("bulk build");
        let mut values = ValueStore::new(pool.clone());
        for id in doc.preorder() {
            if let Some(v) = &doc.node(id).value {
                values.put(u64::from(id.0), v).expect("value store");
            }
        }
        let tag_index = build_tag_index(&store).expect("tag index");
        BenchDb {
            doc,
            store,
            values,
            dol,
            tag_index,
            pool,
        }
    }

    /// A query engine borrowing this database.
    pub fn engine(&self) -> dol_nok::QueryEngine<'_> {
        dol_nok::QueryEngine::with_index(
            &self.store,
            &self.values,
            self.doc.tags(),
            Some(&self.dol),
            &self.tag_index,
        )
    }
}

/// A single-subject column as an oracle.
pub struct ColumnOracle(pub BitVec);

impl AccessOracle for ColumnOracle {
    fn subject_count(&self) -> usize {
        1
    }
    fn acl_row(&self, node: NodeId, out: &mut BitVec) {
        out.resize(1);
        out.set(0, self.0.get(node.index()));
    }
}

/// Generates the standard XMark document for query experiments.
pub fn xmark_doc(scale: f64) -> Document {
    xmark(&XmarkConfig {
        scale,
        seed: 20050405,
    })
}

/// A synthetic single-subject column at the given accessibility ratio.
pub fn synth_column(doc: &Document, accessibility: f64, propagation: f64, seed: u64) -> BitVec {
    dol_workloads::synth_single(
        doc,
        &SynthAclConfig {
            propagation_ratio: propagation,
            accessibility_ratio: accessibility,
            sibling_locality: 0.5,
            seed,
        },
    )
}

/// Counts document-order transitions of a single-subject column — the
/// single-subject DOL size without building the structure.
pub fn column_transitions(col: &BitVec) -> usize {
    let mut t = 1;
    for i in 1..col.len() {
        if col.get(i) != col.get(i - 1) {
            t += 1;
        }
    }
    t
}

/// Percentage of accessible nodes in a column.
pub fn density(col: &BitVec) -> f64 {
    col.count_ones() as f64 / col.len().max(1) as f64
}

/// The six Table-1 queries, in paper order.
pub const TABLE1: [(&str, &str); 6] = [
    ("Q1", "/site/regions/africa/item[location][name][quantity]"),
    (
        "Q2",
        "/site/categories/category[name]/description/text/bold",
    ),
    (
        "Q3",
        "/site/categories/category/name[description/text/bold]",
    ),
    ("Q4", "//parlist//parlist"),
    ("Q5", "//listitem//keyword"),
    ("Q6", "//item//emph"),
];

/// A schema-matching single-path stand-in for Q3 (the printed Q3 requires a
/// `description` *inside* `name`, which XMark-shaped data never contains, so
/// its answer set is empty by construction; the paper describes Q3's class
/// as "a single path", which this query realizes). Both are reported.
pub const Q3_SINGLE_PATH: (&str, &str) = ("Q3'", "/site/categories/category/description/text/bold");

/// `SubjectId(0)` — the subject used by single-subject experiments.
pub const SUBJECT: SubjectId = SubjectId(0);

#[cfg(test)]
mod tests {
    use super::*;
    use dol_nok::Security;

    #[test]
    fn table1_queries_parse_and_plan() {
        for (id, q) in TABLE1.iter().chain(std::iter::once(&Q3_SINGLE_PATH)) {
            let pattern = dol_nok::parse_query(q).unwrap_or_else(|e| panic!("{id}: {e}"));
            let plan = dol_nok::QueryPlan::new(pattern);
            assert!(!plan.trees.is_empty(), "{id}");
        }
    }

    #[test]
    fn column_helpers() {
        let col = dol_acl::BitVec::from_fn(10, |i| (4..7).contains(&i));
        assert_eq!(column_transitions(&col), 3); // 0−, 4+, 7−
        assert!((density(&col) - 0.3).abs() < 1e-9);
        let empty = dol_acl::BitVec::zeros(5);
        assert_eq!(column_transitions(&empty), 1);
        assert_eq!(density(&empty), 0.0);
    }

    #[test]
    fn bench_db_smoke() {
        let doc = xmark_doc(0.02);
        let col = synth_column(&doc, 0.7, 0.03, 1);
        let n = doc.len();
        assert_eq!(col.len(), n);
        let db = BenchDb::build(doc, &ColumnOracle(col), 64);
        let engine = db.engine();
        let all = engine.execute("//item", Security::None).unwrap();
        let secure = engine
            .execute("//item", Security::BindingLevel(SUBJECT))
            .unwrap();
        assert!(secure.matches.len() <= all.matches.len());
        db.store.check_integrity().unwrap();
    }
}
