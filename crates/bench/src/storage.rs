//! §5.1.1 in-text storage comparison: a single subject vs the whole subject
//! population, DOL (codebook + embedded codes) against per-subject CAMs.

use crate::setup::column_transitions;
use crate::table::{bytes, Table};
use crate::Effort;
use dol_cam::Cam;
use dol_core::Dol;
use dol_workloads::{LiveLinkConfig, LiveLinkWorld, UnixFsConfig, UnixFsWorld, UnixMode};

/// Runs the comparison on both multi-user worlds.
pub fn run(effort: Effort) {
    livelink(effort);
    unixfs(effort);
}

fn report(
    system: &str,
    nodes: usize,
    single_dol_transitions: usize,
    single_cam_labels: usize,
    dol: &Dol,
    all_cam_labels: usize,
) {
    let mut t = Table::new(
        &format!("storage: {system}"),
        &["quantity", "DOL", "CAM (per-subject)"],
    );
    t.row(&[
        "single subject: transitions / labels".into(),
        single_dol_transitions.to_string(),
        single_cam_labels.to_string(),
    ]);
    let s = dol.stats();
    t.row(&[
        "all subjects: transitions / labels".into(),
        s.transitions.to_string(),
        all_cam_labels.to_string(),
    ]);
    t.row(&[
        "all subjects: codebook entries".into(),
        s.codebook_entries.to_string(),
        "-".into(),
    ]);
    // Paper accounting: DOL = codebook (1 bit/subject/entry) + one code per
    // transition; CAM = 2 bits + a 1-byte pointer per label.
    let cam_bytes = (all_cam_labels * 10).div_ceil(8);
    t.row(&[
        "all subjects: total bytes".into(),
        format!(
            "{} ({} codebook + {} codes)",
            bytes(s.total_bytes()),
            bytes(s.codebook_bytes),
            bytes(s.embedded_code_bytes)
        ),
        bytes(cam_bytes),
    ]);
    t.row(&[
        "labels-to-transitions factor".into(),
        "1.0".into(),
        format!("{:.1}x", all_cam_labels as f64 / s.transitions as f64),
    ]);
    t.print();
    let _ = nodes;
}

fn livelink(effort: Effort) {
    let world = LiveLinkWorld::generate(&LiveLinkConfig {
        departments: effort.pick(5, 12),
        projects_per_dept: effort.pick(3, 6),
        project_size: effort.pick(60, 220),
        users: effort.pick(100, 800),
        modes: 10,
        seed: 2005,
    });
    // Mode 1: a substantive mode (mode 0 grants the whole company a view of
    // the workspace, which makes every column trivially uniform).
    let mode = 1;
    println!(
        "\n§5.1.1 storage comparison — LiveLink-style ({} nodes, {} subjects, mode {mode})\n",
        world.doc.len(),
        world.subject_count()
    );
    // Single subject: among a few sampled users, the one with the richest
    // (most fragmented) rights, so the single-subject row is representative.
    let (single_dol, single_cam) = world
        .sample_users(8, 3)
        .into_iter()
        .map(|u| {
            let col = world.user_effective_column(u, mode);
            (
                column_transitions(&col),
                Cam::build_optimal(&world.doc, &col).len(),
            )
        })
        .max_by_key(|&(d, _)| d)
        .unwrap();
    // All subjects.
    let stream = world.row_stream(mode, None);
    let dol = Dol::from_row_stream(world.doc.len() as u64, world.subject_count(), &stream);
    let mut all_cam = 0usize;
    for s in world.subjects.iter() {
        let col = world.subject_column(s, mode);
        all_cam += Cam::build_optimal(&world.doc, &col).len();
    }
    report(
        "LiveLink-style (mode 1)",
        world.doc.len(),
        single_dol,
        single_cam,
        &dol,
        all_cam,
    );
    println!(
        "(Paper shape: single-subject DOL vs CAM roughly comparable; with every subject,\n\
         per-subject CAM labels exceed shared DOL transitions by orders of magnitude —\n\
         subject correlation is what DOL monetizes and CAM cannot.)\n"
    );
}

fn unixfs(effort: Effort) {
    let world = UnixFsWorld::generate(&UnixFsConfig {
        nodes: effort.pick(8_000, 120_000),
        users: 182,
        groups: 65,
        seed: 65,
    });
    println!(
        "§5.1.1 storage comparison — Unix-FS-style ({} nodes, {} subjects, read mode)\n",
        world.doc.len(),
        world.subject_count()
    );
    let user = dol_acl::SubjectId(7);
    let ucol = world.user_effective_column(user, UnixMode::Read);
    let single_dol = column_transitions(&ucol);
    let single_cam = Cam::build_optimal(&world.doc, &ucol).len();
    let oracle = world.oracle(UnixMode::Read);
    let dol = Dol::build_n(world.doc.len() as u64, &oracle);
    let mut all_cam = 0usize;
    for s in world.subjects.iter() {
        let col = world.subject_column(s, UnixMode::Read);
        all_cam += Cam::build_optimal(&world.doc, &col).len();
    }
    report(
        "Unix-FS-style (read)",
        world.doc.len(),
        single_dol,
        single_cam,
        &dol,
        all_cam,
    );
}
