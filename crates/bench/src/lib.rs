#![warn(missing_docs)]

//! Experiment harness reproducing every table and figure of the paper.
//!
//! The `experiments` binary drives these modules; each module regenerates
//! one paper artifact and prints the same rows/series the paper reports
//! (absolute numbers differ — the substrate is a simulator, not the authors'
//! 2005 testbed — but the *shapes* are the reproduction target; see
//! EXPERIMENTS.md for the side-by-side reading).
//!
//! | module | paper artifact |
//! |---|---|
//! | [`fig4`] | Figure 4(a)/(b): CAM labels vs DOL transitions, single subject |
//! | [`fig56`] | Figures 5(a)/(b) and 6(a)/(b): codebook entries and transition nodes vs number of subjects |
//! | [`storage`] | §5.1.1 in-text storage comparison (DOL vs per-subject CAMs) |
//! | [`queries`] | Table 1: the six benchmark queries and their plans |
//! | [`fig7`] | Figure 7(a–c): ε-NoK / NoK time and answer ratios vs accessibility |
//! | [`fig8`] | §4.2 extension: (ε-)STD joins under both secure semantics |
//! | [`updates`] | Proposition 1 / §3.4: update costs and transition growth |
//! | [`ablation`] | design-choice ablations: codebook, page skip, block size |
//! | [`compile`] | interpreted vs compiled twig execution on the Table-1 mix (not a paper artifact) |
//! | [`parallel`] | parallel candidate matching: worker-count scaling (not a paper artifact) |
//! | [`serve`] | multi-client secure-query serving: snapshot readers, caches, shared latches (not a paper artifact) |
//! | [`faults`] | fault injection: checksum detection, fail-closed semantics, verify overhead (not a paper artifact) |
//! | [`crash`] | crash-recovery torture: power cut at every physical write point, recovery must land on a state boundary (not a paper artifact) |
//! | [`mvcc`] | MVCC epoch ring + group commit: pinned-reader oracles, retention refusals, solo vs batched update throughput at equal durability (not a paper artifact) |
//! | [`soak`] | combined chaos soak: brownouts, power cuts, deadlines, in-process recovery under a live serving mix (not a paper artifact) |
//! | [`shard`] | ShardedDb: crash-consistent cross-shard commit sweep + fault-isolated scatter-gather quarantine soak (not a paper artifact) |
//! | [`net`] | `dol-server` wire gate: loopback multi-process byte-identity, crash/restart, overload, poison, and drain phases (not a paper artifact) |

pub mod ablation;
pub mod compile;
pub mod crash;
pub mod faults;
pub mod fig4;
pub mod fig56;
pub mod fig7;
pub mod fig8;
pub mod mvcc;
pub mod net;
pub mod parallel;
pub mod queries;
pub mod serve;
pub mod setup;
pub mod shard;
pub mod soak;
pub mod storage;
pub mod subjects;
pub mod table;
pub mod updates;

/// Global effort level: `quick` shrinks data sizes for smoke runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Small instances (CI-friendly, seconds).
    Quick,
    /// Paper-scale shapes (minutes).
    Full,
}

impl Effort {
    /// Scales a size parameter.
    pub fn scale(self, quick: f64, full: f64) -> f64 {
        match self {
            Effort::Quick => quick,
            Effort::Full => full,
        }
    }

    /// Picks a usize parameter.
    pub fn pick(self, quick: usize, full: usize) -> usize {
        match self {
            Effort::Quick => quick,
            Effort::Full => full,
        }
    }
}
