//! `shard` — [`ShardedDb`] chaos harness: crash-consistent cross-shard
//! commit and fault-isolated scatter-gather, tortured end to end (not a
//! paper artifact).
//!
//! Two phases, both gated (the run *is* the assertion — any violation
//! panics):
//!
//! 1. **Every-write-point multi-shard crash sweep.** A mixed stream of ACL
//!    updates — cross-shard (position 0: a two-phase commit over every
//!    shard's WAL plus the shard catalog) and single-shard — runs on an
//!    oracle pass that forks every shard's data and log disk plus the
//!    catalog disk after each update and fingerprints each state `S_i`
//!    (the full accessibility matrix + the secure answers of a query suite
//!    spanning all three scatter classes). Then, for each update, ONE
//!    [`CrashState`] power rail spanning *all seven disks* is cut after
//!    `k` writes for every sampled `k` in the update's write window
//!    (odd `k` tears the fatal write at a sector boundary; the window
//!    includes the reopen itself, so crashes *inside recovery* are swept
//!    too). The raw disks are then reopened — running catalog-driven
//!    recovery on every shard — integrity-checked and fingerprinted.
//!    Gates: **zero unrecoverable images, zero cross-shard mixed epochs**
//!    (every fingerprint is exactly `S_i` or `S_{i+1}`, and the catalog's
//!    decided count always agrees with the surviving state).
//!
//! 2. **Quarantine/brownout soak.** A fresh sharded database serves
//!    reader threads (the query suite under three subjects and both
//!    secure semantics) and one cross-shard updater (root-subtree access
//!    toggles through 2PC) while the driver repeatedly (a) arms a
//!    100%-transient-fault layer under one shard's data disk until that
//!    shard's circuit breaker trips — the shard is quarantined, queries
//!    touching it fail whole with the typed [`DbError::ShardUnavailable`],
//!    queries provably confined to the healthy shards keep answering
//!    exactly — then heals it **in process** with
//!    [`ShardedDb::recover_shard`], concurrently with serving; and then
//!    (b) cuts the shared power rail mid-commit, "reboots" by reopening
//!    the facade from the surviving disks, and asserts the interrupted
//!    toggle landed all-or-nothing across every shard. Gates: **zero
//!    wrong answers, zero unexpected errors, zero cross-shard mixed
//!    epochs, zero unrecovered quarantine windows**, and the typed
//!    refusal, healthy-confined-exactness and breaker-trip paths all
//!    observed at least once.
//!
//! Per-shard counters (breaker state, poison latch, epochs, quarantines,
//! in-process recoveries) are printed as result-table columns and written
//! to `BENCH_shard.json`.

use crate::setup::xmark_doc;
use crate::table::Table;
use crate::Effort;
use dol_acl::SubjectId;
use dol_storage::{CrashDisk, CrashState, Disk, FaultConfig, FaultDisk, MemDisk};
use dol_workloads::{synth_multi, SynthAclConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use secure_xml::{DbConfig, DbError, RetryPolicy, SecureXmlDb, Security, ShardedDb};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The fixed seed used when the caller does not supply one (CI does not).
pub const DEFAULT_SEED: u64 = 13_639_585;

const SHARDS: usize = 3;
const SUBJECTS: usize = 3;
/// The toggled subject of the soak's cross-shard updater.
const TOGGLE: SubjectId = SubjectId(1);

/// Query suite spanning all three scatter classes over the XMark shape:
/// *Local* (the pattern root cannot bind the document root),
/// *Root-decompose* (anchored at / compatible with `site`), and *Global*
/// (a following-sibling step at depth 1 can straddle a shard boundary).
const SUITE: &[(&str, &str)] = &[
    ("L1", "//item[name]"),
    ("L2", "//listitem//keyword"),
    ("L3", "//person[name]/emailaddress"),
    ("R1", "/site/regions//item[name]"),
    ("R2", "/site[regions][people]"),
    ("R3", "//site//keyword"),
    ("G1", "/site/regions~categories"),
];

fn cfg() -> DbConfig {
    DbConfig {
        // Deliberately tiny: commits must spill and fault pages back in, so
        // each shard's data-page writes interleave with its WAL writes and
        // the catalog append inside the crash window.
        buffer_pool_pages: 24,
        max_records_per_block: 16,
        epoch_retain: 4,
    }
}

fn acl_config(seed: u64) -> SynthAclConfig {
    SynthAclConfig {
        propagation_ratio: 0.05,
        accessibility_ratio: 0.6,
        sibling_locality: 0.5,
        seed,
    }
}

// ---------------------------------------------------------------------------
// Disk images
// ---------------------------------------------------------------------------

/// Per-shard `(data, wal)` disk pairs plus the catalog disk, ready for
/// [`ShardedDb::build_on`] / [`ShardedDb::open_on`].
type Stacks = (Vec<secure_xml::DiskPair>, Arc<dyn Disk>);

/// The seven raw disks of one sharded database: per-shard (data, wal)
/// pairs plus the shard catalog.
struct Images {
    shards: Vec<(Arc<MemDisk>, Arc<MemDisk>)>,
    catalog: Arc<MemDisk>,
}

impl Images {
    fn fresh() -> Self {
        Self {
            shards: (0..SHARDS)
                .map(|_| (Arc::new(MemDisk::new()), Arc::new(MemDisk::new())))
                .collect(),
            catalog: Arc::new(MemDisk::new()),
        }
    }

    /// Copy-snapshot of the current contents.
    fn snapshot(&self) -> Self {
        Self {
            shards: self
                .shards
                .iter()
                .map(|(d, w)| (Arc::new(d.fork()), Arc::new(w.fork())))
                .collect(),
            catalog: Arc::new(self.catalog.fork()),
        }
    }

    /// The raw disks as trait objects (no fault layers).
    fn raw(&self) -> Stacks {
        (
            self.shards
                .iter()
                .map(|(d, w)| (d.clone() as Arc<dyn Disk>, w.clone() as Arc<dyn Disk>))
                .collect(),
            self.catalog.clone() as Arc<dyn Disk>,
        )
    }

    /// Every disk behind one shared power rail.
    fn railed(&self, rail: &Arc<CrashState>) -> Stacks {
        (
            self.shards
                .iter()
                .map(|(d, w)| {
                    (
                        Arc::new(CrashDisk::new(d.clone(), rail.clone())) as Arc<dyn Disk>,
                        Arc::new(CrashDisk::new(w.clone(), rail.clone())) as Arc<dyn Disk>,
                    )
                })
                .collect(),
            Arc::new(CrashDisk::new(self.catalog.clone(), rail.clone())) as Arc<dyn Disk>,
        )
    }
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// FNV-1a over everything observable through the facade: the whole
/// accessibility matrix plus the secure answers of [`SUITE`] under every
/// subject. One shard serving the wrong epoch flips the fingerprint.
fn fingerprint(db: &ShardedDb) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    let n = db.len() as u64;
    for s in 0..SUBJECTS as u32 {
        for p in 0..n {
            fnv(
                &mut h,
                &[u8::from(
                    db.accessible(p, SubjectId(s)).expect("accessible"),
                )],
            );
        }
    }
    for (_, q) in SUITE {
        for s in 0..SUBJECTS as u32 {
            let res = db
                .query(q, Security::BindingLevel(SubjectId(s)))
                .expect("suite query");
            for m in res.matches {
                fnv(&mut h, &m.to_le_bytes());
            }
            fnv(&mut h, b";");
        }
    }
    h
}

// ---------------------------------------------------------------------------
// Phase 1: every-write-point crash sweep
// ---------------------------------------------------------------------------

/// One ACL update of the sweep workload, positions pre-resolved so replays
/// are exact.
#[derive(Clone, Copy)]
enum Op {
    Node(u64, u32, bool),
    Subtree(u64, u32, bool),
}

impl Op {
    fn kind(&self) -> &'static str {
        match self {
            Op::Node(0, ..) => "set-node (cross-shard)",
            Op::Node(..) => "set-node",
            Op::Subtree(0, ..) => "set-subtree (cross-shard)",
            Op::Subtree(..) => "set-subtree",
        }
    }

    fn apply(&self, db: &ShardedDb) -> Result<(), DbError> {
        match *self {
            Op::Node(p, s, a) => db.set_node_access(p, SubjectId(s), a),
            Op::Subtree(p, s, a) => db.set_subtree_access(p, SubjectId(s), a),
        }
    }
}

fn gen_op(rng: &mut StdRng, total: u64) -> Op {
    // Cross-shard commits (position 0) are the interesting torture target:
    // keep them frequent.
    let pos = if rng.gen_bool(0.35) {
        0
    } else {
        rng.gen_range(1..total)
    };
    let subject = rng.gen_range(0..SUBJECTS as u32);
    let allow = rng.gen_bool(0.5);
    if rng.gen_bool(0.5) {
        Op::Subtree(pos, subject, allow)
    } else {
        Op::Node(pos, subject, allow)
    }
}

struct SweepOutcome {
    ops: usize,
    crash_points: u64,
    pre_states: u64,
    post_states: u64,
    died_in_flight: u64,
    by_kind: BTreeMap<&'static str, [u64; 3]>,
}

fn crash_sweep(effort: Effort, seed: u64, smoke: bool) -> SweepOutcome {
    let ops_n = if smoke { 6 } else { effort.pick(12, 24) };
    // Sampling stride over each write window: full sweeps every point.
    let stride = if smoke {
        4
    } else {
        match effort {
            Effort::Quick => 2,
            Effort::Full => 1,
        }
    };
    let doc = xmark_doc(effort.scale(0.004, 0.01));
    let map = synth_multi(&doc, &acl_config(seed), SUBJECTS);

    // Build onto the live images, then run the healthy oracle pass,
    // snapshotting and fingerprinting after every update.
    let live = Images::fresh();
    let (pairs, cat) = live.raw();
    let oracle = ShardedDb::build_on(&doc, &map, cfg(), &pairs, cat).expect("build shards");
    println!(
        "phase 1: {} nodes over {} shards (lens {:?}), {ops_n} updates, write-window stride {stride}",
        oracle.len(),
        oracle.shard_count(),
        oracle.status().iter().map(|s| s.len).collect::<Vec<_>>(),
    );
    let total = oracle.len() as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut snaps: Vec<Images> = vec![live.snapshot()];
    let mut fps: Vec<u64> = vec![fingerprint(&oracle)];
    let mut ops: Vec<Op> = Vec::with_capacity(ops_n);
    for _ in 0..ops_n {
        let op = gen_op(&mut rng, total);
        op.apply(&oracle).expect("healthy update");
        ops.push(op);
        snaps.push(live.snapshot());
        fps.push(fingerprint(&oracle));
    }
    drop(oracle);

    let mut out = SweepOutcome {
        ops: ops_n,
        crash_points: 0,
        pre_states: 0,
        post_states: 0,
        died_in_flight: 0,
        by_kind: BTreeMap::new(),
    };
    for (i, op) in ops.iter().enumerate() {
        // Measure the write window of reopen + this update (deterministic
        // replay; its end state must reproduce the oracle exactly).
        let window = {
            let trial = snaps[i].snapshot();
            let rail = CrashState::unlimited();
            let (pairs, cat) = trial.railed(&rail);
            let db = ShardedDb::open_on(cfg(), &pairs, cat).expect("replay open");
            op.apply(&db).expect("healthy replay");
            assert_eq!(
                fingerprint(&db),
                fps[i + 1],
                "replay of op {i} diverged from the oracle"
            );
            rail.writes_issued()
        };
        let counts = out.by_kind.entry(op.kind()).or_default();
        // Stride-sample the window, but always include its tail: the
        // decided-but-unfinished region after the catalog append is only a
        // handful of writes wide and must be crashed into every op.
        let mut points: Vec<u64> = (0..window).step_by(stride).collect();
        points.extend(window.saturating_sub(6)..window);
        points.sort_unstable();
        points.dedup();
        for k in points {
            let trial = snaps[i].snapshot();
            let rail = CrashState::new(k, k % 2 == 1, seed ^ ((i as u64) << 20) ^ k);
            let (pairs, cat) = trial.railed(&rail);
            let survived = match ShardedDb::open_on(cfg(), &pairs, cat) {
                Ok(db) => op.apply(&db).is_ok(),
                Err(_) => false,
            };
            if !survived {
                out.died_in_flight += 1;
            }
            // Post-reboot: reopen the raw post-crash images. Recovery reads
            // the catalog first; its decided set drives every shard's WAL
            // replay, so the whole system lands on one state boundary.
            let (pairs, cat) = trial.raw();
            let db = ShardedDb::open_on(cfg(), &pairs, cat).unwrap_or_else(|e| {
                panic!(
                    "op {i} ({}) crash at write {k}: unrecoverable: {e}",
                    op.kind()
                )
            });
            db.verify_integrity()
                .unwrap_or_else(|e| panic!("op {i} crash at write {k}: integrity: {e}"));
            let f = fingerprint(&db);
            let decided = db.commit_count();
            // A no-op update (setting a bit to its current value) leaves
            // fps[i] == fps[i+1]; the catalog's decided count then picks
            // the side. Fingerprint and catalog must agree jointly.
            if f == fps[i + 1] && decided == i as u64 + 1 {
                out.post_states += 1;
                counts[1] += 1;
            } else if f == fps[i] && decided == i as u64 {
                out.pre_states += 1;
                counts[0] += 1;
            } else if f != fps[i] && f != fps[i + 1] {
                panic!(
                    "CROSS-SHARD MIXED EPOCH: op {i} ({}) crash at write {k} \
                     recovered to neither S_{i} nor S_{}",
                    op.kind(),
                    i + 1
                );
            } else {
                panic!(
                    "op {i} ({}) crash at write {k}: recovered state and catalog \
                     disagree (decided {decided}, expected {} or {})",
                    op.kind(),
                    i,
                    i + 1
                );
            }
            counts[2] += 1;
            out.crash_points += 1;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Phase 2: quarantine/brownout soak
// ---------------------------------------------------------------------------

/// Soak counters shared across reader/updater/driver threads.
#[derive(Default)]
struct Counters {
    /// Served answers equal to the pre- or post-toggle oracle.
    exact: AtomicU64,
    /// Fail-closed subsets flagged by `blocks_failed_closed`. Hidden
    /// answers, never invented ones.
    masked: AtomicU64,
    /// Answers matching neither oracle and not a flagged subset. Must be 0.
    wrong: AtomicU64,
    /// Typed whole-query refusals naming a quarantined shard.
    refusals: AtomicU64,
    /// Transient storage errors surfaced during fault windows.
    availability: AtomicU64,
    /// Anything else. Must be 0.
    unexpected: AtomicU64,
    /// Healthy-confined queries answered exactly *while* a shard was
    /// quarantined.
    confined_exact: AtomicU64,
    /// Cross-shard toggle commits that succeeded.
    toggles: AtomicU64,
    /// Toggle attempts refused or failed during fault windows.
    toggle_errors: AtomicU64,
}

/// Per-(query, subject, semantics) oracle: the exact answers under the
/// toggle-allowed and toggle-denied states.
struct SoakOracle {
    allow: Vec<Vec<Vec<u64>>>,
    deny: Vec<Vec<Vec<u64>>>,
    subtree_allow: Vec<Vec<u64>>,
    subtree_deny: Vec<Vec<u64>>,
}

fn oracle_answers(db: &SecureXmlDb) -> (Vec<Vec<Vec<u64>>>, Vec<Vec<u64>>) {
    let binding = SUITE
        .iter()
        .map(|(_, q)| {
            (0..SUBJECTS as u32)
                .map(|s| {
                    db.query(q, Security::BindingLevel(SubjectId(s)))
                        .expect("oracle query")
                        .matches
                })
                .collect()
        })
        .collect();
    let subtree = SUITE
        .iter()
        .map(|(_, q)| {
            db.query(q, Security::SubtreeVisibility(TOGGLE))
                .expect("oracle query")
                .matches
        })
        .collect();
    (binding, subtree)
}

impl SoakOracle {
    fn build(doc: &dol_xml::Document, base: &dol_acl::AccessibilityMap) -> Self {
        let mut allow_map = base.clone();
        let mut deny_map = base.clone();
        for p in 0..doc.len() as u32 {
            allow_map.set(TOGGLE, dol_xml::NodeId(p), true);
            deny_map.set(TOGGLE, dol_xml::NodeId(p), false);
        }
        let allow_db = SecureXmlDb::from_document(doc.clone(), &allow_map).expect("oracle build");
        let deny_db = SecureXmlDb::from_document(doc.clone(), &deny_map).expect("oracle build");
        let (allow, subtree_allow) = oracle_answers(&allow_db);
        let (deny, subtree_deny) = oracle_answers(&deny_db);
        Self {
            allow,
            deny,
            subtree_allow,
            subtree_deny,
        }
    }

    fn expected(&self, qi: usize, subject: u32, subtree: bool) -> (&[u64], &[u64]) {
        if subtree {
            (&self.subtree_allow[qi], &self.subtree_deny[qi])
        } else {
            (
                &self.allow[qi][subject as usize],
                &self.deny[qi][subject as usize],
            )
        }
    }
}

fn is_subset(sub: &[u64], sup: &[u64]) -> bool {
    // Both document-ordered.
    let mut it = sup.iter();
    sub.iter().all(|x| it.any(|y| y == x))
}

/// Classifies one served result against the two toggle oracles.
fn classify(
    c: &Counters,
    got: &Result<secure_xml::QueryResult, DbError>,
    want_allow: &[u64],
    want_deny: &[u64],
) {
    match got {
        Ok(res) => {
            if res.matches == want_allow || res.matches == want_deny {
                c.exact.fetch_add(1, Ordering::Relaxed);
            } else if res.stats.blocks_failed_closed > 0
                && (is_subset(&res.matches, want_allow) || is_subset(&res.matches, want_deny))
            {
                c.masked.fetch_add(1, Ordering::Relaxed);
            } else {
                c.wrong.fetch_add(1, Ordering::Relaxed);
            }
        }
        Err(DbError::ShardUnavailable { .. }) => {
            c.refusals.fetch_add(1, Ordering::Relaxed);
        }
        Err(DbError::Storage(_)) | Err(DbError::Query(_)) => {
            c.availability.fetch_add(1, Ordering::Relaxed);
        }
        Err(_) => {
            c.unexpected.fetch_add(1, Ordering::Relaxed);
        }
    }
}

struct SoakOutcome {
    cycles: usize,
    quarantine_windows: u64,
    recovered_windows: u64,
    power_cuts: u64,
    reboots: u64,
    quarantines_by_shard: Vec<u64>,
    recoveries_by_shard: Vec<u64>,
    counters: Counters,
    final_status: Vec<secure_xml::ShardStatus>,
    final_stats: secure_xml::ShardedStats,
}

/// The shard targeted by brownouts (its data disk carries the fault layer).
const TARGET: usize = 1;

#[allow(clippy::too_many_lines)]
fn quarantine_soak(effort: Effort, seed: u64, smoke: bool) -> SoakOutcome {
    let cycles = if smoke { 1 } else { effort.pick(2, 5) };
    let doc = xmark_doc(effort.scale(0.004, 0.01));
    let map = synth_multi(&doc, &acl_config(seed ^ 0x5A), SUBJECTS);
    let oracle = SoakOracle::build(&doc, &map);

    // The hostile stack: every disk behind one power rail; the target
    // shard's data disk additionally behind a 100%-transient-fault layer
    // armed only during brownout windows.
    let images = Images::fresh();
    let rail = CrashState::unlimited();
    let (mut pairs, cat) = images.railed(&rail);
    let brownout = Arc::new(FaultDisk::new(
        pairs[TARGET].0.clone(),
        FaultConfig {
            seed: seed ^ 0xB0,
            transient_read_error: 1.0,
            transient_write_error: 1.0,
            ..FaultConfig::default()
        },
    ));
    brownout.set_armed(false);
    pairs[TARGET].0 = brownout.clone() as Arc<dyn Disk>;

    let mut db = Arc::new(
        ShardedDb::build_on(&doc, &map, cfg(), &pairs, cat.clone()).expect("build shards"),
    );
    println!(
        "\nphase 2: {} nodes over {} shards, {cycles} chaos cycle(s), target shard {TARGET}",
        db.len(),
        db.shard_count()
    );
    let arm_breaker = |db: &ShardedDb| {
        for s in 0..SHARDS {
            db.with_shard(s, |sdb| {
                sdb.set_retry_policy(RetryPolicy {
                    max_attempts: 2,
                    backoff_start: Duration::ZERO,
                    backoff_cap: Duration::ZERO,
                    breaker_threshold: 2,
                    breaker_probe_every: 2,
                });
            });
        }
    };
    arm_breaker(&db);

    // Establish a known toggle state before serving starts (phase B re-pins
    // it after every reboot).
    db.set_subtree_access(0, TOGGLE, true)
        .expect("initial toggle");

    // A probe tag present in the target shard (for the typed-refusal check)
    // and one absent from it but present elsewhere (for the
    // healthy-confined check).
    let target_tags: std::collections::HashSet<String> = db.with_shard(TARGET, |sdb| {
        let d = sdb.document();
        d.preorder().map(|n| d.name_of(n).to_string()).collect()
    });
    let other_tags: std::collections::HashSet<String> = (0..SHARDS)
        .filter(|&s| s != TARGET)
        .flat_map(|s| {
            db.with_shard(s, |sdb| {
                let d = sdb.document();
                d.preorder()
                    .map(|n| d.name_of(n).to_string())
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let in_target = target_tags
        .iter()
        .find(|t| t.as_str() != "site")
        .expect("target shard has a tag")
        .clone();
    let confined = other_tags
        .iter()
        .find(|t| !target_tags.contains(*t))
        .expect("some tag is absent from the target shard")
        .clone();
    let confined_query = format!("//{confined}");
    let confined_want = SecureXmlDb::from_document(doc.clone(), &map)
        .expect("confined oracle")
        .query(&confined_query, Security::None)
        .expect("confined oracle query")
        .matches;

    let mut out = SoakOutcome {
        cycles,
        quarantine_windows: 0,
        recovered_windows: 0,
        power_cuts: 0,
        reboots: 0,
        quarantines_by_shard: vec![0; SHARDS],
        recoveries_by_shard: vec![0; SHARDS],
        counters: Counters::default(),
        final_status: Vec::new(),
        final_stats: secure_xml::ShardedStats::default(),
    };
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    let oracle = &oracle;

    for cycle in 0..cycles {
        // ---- phase A: brownout → quarantine → in-process recovery ------
        let stop = AtomicBool::new(false);
        let c = &out.counters;
        let facade = db.clone();
        std::thread::scope(|scope| {
            for r in 0..2usize {
                let facade = facade.clone();
                let stop = &stop;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed ^ (r as u64) << 8 ^ cycle as u64);
                    while !stop.load(Ordering::Relaxed) {
                        let qi = rng.gen_range(0..SUITE.len());
                        let subject = rng.gen_range(0..SUBJECTS as u32);
                        let subtree = subject == TOGGLE.0 && rng.gen_bool(0.3);
                        let sec = if subtree {
                            Security::SubtreeVisibility(TOGGLE)
                        } else {
                            Security::BindingLevel(SubjectId(subject))
                        };
                        let got = facade.query(SUITE[qi].1, sec);
                        let (wa, wd) = oracle.expected(qi, subject, subtree);
                        classify(c, &got, wa, wd);
                    }
                });
            }
            // Cross-shard updater: root-subtree toggles through 2PC.
            {
                let facade = facade.clone();
                let stop = &stop;
                scope.spawn(move || {
                    let mut next = false;
                    while !stop.load(Ordering::Relaxed) {
                        match facade.set_subtree_access(0, TOGGLE, next) {
                            Ok(()) => {
                                c.toggles.fetch_add(1, Ordering::Relaxed);
                                next = !next;
                            }
                            Err(_) => {
                                c.toggle_errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        std::thread::sleep(Duration::from_millis(2));
                    }
                });
            }

            // Driver: brownout until the target's breaker trips.
            brownout.set_armed(true);
            let deadline = Instant::now() + Duration::from_secs(30);
            while !facade.status()[TARGET].poisoned && !facade.status()[TARGET].breaker_open {
                // Cold physical reads through the armed layer.
                let _ = facade.query(SUITE[0].1, Security::BindingLevel(SubjectId(0)));
                let _ = facade.query(&format!("//{in_target}"), Security::None);
                assert!(
                    Instant::now() < deadline,
                    "cycle {cycle}: breaker never tripped under a 100% fault layer"
                );
            }
            out.quarantine_windows += 1;
            out.quarantines_by_shard[TARGET] += 1;

            // Quarantined: a query naming the target fails whole and typed…
            let refusal_deadline = Instant::now() + Duration::from_secs(30);
            loop {
                match facade.query(&format!("//{in_target}"), Security::None) {
                    Err(DbError::ShardUnavailable { shard, .. }) => {
                        assert_eq!(shard, TARGET, "refusal names the quarantined shard");
                        c.refusals.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    // Pre-trip transient errors or a concurrent recovery
                    // race: keep probing until the typed refusal surfaces.
                    _ => assert!(
                        Instant::now() < refusal_deadline,
                        "cycle {cycle}: typed refusal never surfaced"
                    ),
                }
            }
            // …while a query provably confined to healthy shards answers
            // exactly, byte-identical to the unsharded oracle.
            let got = facade
                .query(&confined_query, Security::None)
                .expect("healthy-confined query must answer during quarantine");
            assert_eq!(
                got.matches, confined_want,
                "cycle {cycle}: healthy-confined answer diverged under quarantine"
            );
            out.counters.confined_exact.fetch_add(1, Ordering::Relaxed);

            // Heal in process, concurrently with the serving threads.
            brownout.set_armed(false);
            facade.recover_shard(TARGET).expect("in-process recovery");
            assert!(
                !facade.status()[TARGET].poisoned && !facade.status()[TARGET].breaker_open,
                "cycle {cycle}: recovery left the target quarantined"
            );
            out.recovered_windows += 1;
            out.recoveries_by_shard[TARGET] += 1;
            facade.verify_integrity().expect("post-recovery integrity");

            // Full service restored: the cross-shard updater must land at
            // least one 2PC commit against the healed facade…
            let landed = Instant::now() + Duration::from_secs(20);
            let toggles_before = c.toggles.load(Ordering::Relaxed);
            while c.toggles.load(Ordering::Relaxed) == toggles_before {
                assert!(
                    Instant::now() < landed,
                    "cycle {cycle}: no cross-shard commit landed after recovery"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
            // …and the whole suite answers exactly.
            for (qi, (_, q)) in SUITE.iter().enumerate() {
                for s in 0..SUBJECTS as u32 {
                    let got = facade
                        .query(q, Security::BindingLevel(SubjectId(s)))
                        .expect("post-recovery query");
                    let (wa, wd) = oracle.expected(qi, s, false);
                    assert!(
                        got.matches == wa || got.matches == wd,
                        "cycle {cycle}: post-recovery answer for {q} subject {s} \
                         matches neither toggle oracle"
                    );
                }
            }
            stop.store(true, Ordering::Relaxed);
        });

        // ---- phase B: power cut mid-commit, reboot, all-or-nothing -----
        // The toggle is pinned `true` here; cut the rail mid-flip-to-false.
        let budget = rng.gen_range(3..60u64);
        rail.restore_power(budget);
        let res = db.set_subtree_access(0, TOGGLE, false);
        out.power_cuts += 1;
        rail.restore_power(u64::MAX);
        for (s, st) in db.status().iter().enumerate() {
            if st.poisoned {
                out.quarantines_by_shard[s] += 1;
            }
        }
        drop(res);
        // Reboot: drop the facade, reopen from the surviving disks. The
        // catalog decides which side of the commit the system is on.
        drop(db);
        let reopened = ShardedDb::open_on(cfg(), &pairs, cat.clone()).expect("post-cut reopen");
        out.reboots += 1;
        reopened.verify_integrity().expect("post-reboot integrity");
        // All-or-nothing across shards: the toggled subject's access is
        // uniform over every position of every shard.
        let first = reopened.accessible(1, TOGGLE).expect("accessible");
        for p in 1..reopened.len() as u64 {
            assert_eq!(
                reopened.accessible(p, TOGGLE).expect("accessible"),
                first,
                "cycle {cycle}: CROSS-SHARD MIXED EPOCH at position {p} after power cut"
            );
        }
        db = Arc::new(reopened);
        arm_breaker(&db);
        // Re-pin the toggle to a known state for the next cycle.
        db.set_subtree_access(0, TOGGLE, true)
            .expect("re-pin toggle");
    }

    out.final_status = db.status();
    out.final_stats = db.stats();
    out
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

fn write_json(seed: u64, sweep: &SweepOutcome, soak: &SoakOutcome) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"shards\": {SHARDS},\n"));
    out.push_str("  \"crash_sweep\": {\n");
    out.push_str(&format!("    \"updates\": {},\n", sweep.ops));
    out.push_str(&format!("    \"crash_points\": {},\n", sweep.crash_points));
    out.push_str(&format!("    \"pre_states\": {},\n", sweep.pre_states));
    out.push_str(&format!("    \"post_states\": {},\n", sweep.post_states));
    out.push_str(&format!(
        "    \"died_in_flight\": {},\n",
        sweep.died_in_flight
    ));
    out.push_str("    \"mixed_epochs\": 0\n  },\n");
    out.push_str("  \"quarantine_soak\": {\n");
    out.push_str(&format!("    \"cycles\": {},\n", soak.cycles));
    let c = &soak.counters;
    out.push_str(&format!(
        "    \"exact\": {}, \"masked\": {}, \"wrong\": {},\n",
        c.exact.load(Ordering::Relaxed),
        c.masked.load(Ordering::Relaxed),
        c.wrong.load(Ordering::Relaxed)
    ));
    out.push_str(&format!(
        "    \"refusals\": {}, \"availability_errors\": {}, \"unexpected_errors\": {},\n",
        c.refusals.load(Ordering::Relaxed),
        c.availability.load(Ordering::Relaxed),
        c.unexpected.load(Ordering::Relaxed)
    ));
    out.push_str(&format!(
        "    \"confined_exact\": {}, \"toggles\": {}, \"toggle_errors\": {},\n",
        c.confined_exact.load(Ordering::Relaxed),
        c.toggles.load(Ordering::Relaxed),
        c.toggle_errors.load(Ordering::Relaxed)
    ));
    out.push_str(&format!(
        "    \"quarantine_windows\": {}, \"recovered_windows\": {}, \
         \"power_cuts\": {}, \"reboots\": {},\n",
        soak.quarantine_windows, soak.recovered_windows, soak.power_cuts, soak.reboots
    ));
    out.push_str("    \"per_shard\": [\n");
    for (s, st) in soak.final_status.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"shard\": {s}, \"base\": {}, \"len\": {}, \"epoch\": {}, \
             \"breaker_open\": {}, \"poisoned\": {}, \"quarantines\": {}, \"recoveries\": {}}}{}\n",
            st.base,
            st.len,
            st.epoch,
            st.breaker_open,
            st.poisoned,
            soak.quarantines_by_shard[s],
            soak.recoveries_by_shard[s],
            if s + 1 < soak.final_status.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("    ]\n  }\n}\n");
    match std::fs::File::create("BENCH_shard.json").and_then(|mut f| f.write_all(out.as_bytes())) {
        Ok(()) => println!("(wrote BENCH_shard.json)\n"),
        Err(e) => eprintln!("could not write BENCH_shard.json: {e}"),
    }
}

/// Runs the sharded-database chaos harness (`--smoke` shrinks both phases
/// to a CI-scale pinned-seed run; every gate still applies).
pub fn run(effort: Effort, seed: u64, smoke: bool) {
    println!(
        "ShardedDb chaos harness (seed {seed}{})\n",
        if smoke { ", smoke" } else { "" }
    );
    let sweep = crash_sweep(effort, seed, smoke);
    assert!(
        sweep.post_states > 0,
        "sweep never crashed past a commit point — window sampling is broken"
    );
    let mut t = Table::new(
        "crash sweep (one power rail over all shard + catalog disks)",
        &["op kind", "pre-state", "post-state", "crash points"],
    );
    for (kind, c) in &sweep.by_kind {
        t.row(&[
            (*kind).into(),
            c[0].to_string(),
            c[1].to_string(),
            c[2].to_string(),
        ]);
    }
    t.print();
    println!(
        "\n{} crash points over {} updates: every recovery an exact before- or \
         after-state on ALL shards (zero cross-shard mixed epochs)\n",
        sweep.crash_points, sweep.ops
    );

    let soak = quarantine_soak(effort, seed, smoke);
    let mut t = Table::new(
        "quarantine soak: per-shard columns",
        &[
            "shard",
            "base",
            "nodes",
            "epoch",
            "breaker",
            "poisoned",
            "quarantines",
            "recoveries",
        ],
    );
    for (s, st) in soak.final_status.iter().enumerate() {
        t.row(&[
            s.to_string(),
            st.base.to_string(),
            st.len.to_string(),
            st.epoch.to_string(),
            if st.breaker_open { "open" } else { "closed" }.into(),
            st.poisoned.to_string(),
            soak.quarantines_by_shard[s].to_string(),
            soak.recoveries_by_shard[s].to_string(),
        ]);
    }
    t.print();
    let c = &soak.counters;
    println!(
        "\nserved: {} exact, {} masked (fail-closed subsets), {} wrong; \
         {} typed refusals, {} availability errors, {} unexpected",
        c.exact.load(Ordering::Relaxed),
        c.masked.load(Ordering::Relaxed),
        c.wrong.load(Ordering::Relaxed),
        c.refusals.load(Ordering::Relaxed),
        c.availability.load(Ordering::Relaxed),
        c.unexpected.load(Ordering::Relaxed)
    );
    println!(
        "quarantine windows: {} opened, {} recovered in process; {} power cuts, {} reboots; \
         facade stats since last reboot: {:?}",
        soak.quarantine_windows,
        soak.recovered_windows,
        soak.power_cuts,
        soak.reboots,
        soak.final_stats
    );

    // The gates.
    assert_eq!(c.wrong.load(Ordering::Relaxed), 0, "wrong answers served");
    assert_eq!(
        c.unexpected.load(Ordering::Relaxed),
        0,
        "unexpected errors surfaced"
    );
    assert_eq!(
        soak.quarantine_windows, soak.recovered_windows,
        "unrecovered quarantine window"
    );
    assert!(
        soak.quarantine_windows > 0,
        "no quarantine window exercised"
    );
    assert!(
        c.refusals.load(Ordering::Relaxed) > 0,
        "typed refusal path never observed"
    );
    assert!(
        c.confined_exact.load(Ordering::Relaxed) > 0,
        "healthy-confined exactness never observed"
    );
    assert!(
        c.toggles.load(Ordering::Relaxed) > 0,
        "no cross-shard commit landed"
    );
    println!(
        "\nall gates green: zero wrong answers, zero mixed epochs, zero unrecovered quarantines\n"
    );

    write_json(seed, &sweep, &soak);
}
