//! `subjects` — subject-count scaling on the group-factored codebook
//! (ROADMAP open item 1; the paper's Fig. 10/11 claims pushed three orders
//! of magnitude past the measured LiveLink deployment).
//!
//! One fixed document and one fixed group structure (company → departments
//! → teams, 73 physical columns at the default shape); the sweep then
//! registers users purely through the membership table
//! ([`SecureXmlDb::add_grouped_subjects`]) and at every step measures
//!
//! * p50/p99 secure-query latency over a sampled user pool (both secure
//!   semantics), **gated** to stay within 1.25× of the 4-subject baseline
//!   (+300 µs noise floor) — derived columns are cached and version-fenced,
//!   so per-query cost must not grow with the population;
//! * codebook + membership bytes, **gated** sub-linear in subject count and
//!   reported against the flat one-column-per-subject equivalent;
//! * answer correctness: sampled users' visible sets equal the OR of their
//!   transitive group closure computed independently from the rule set.
//!
//! A final segment exercises **incremental compaction** under churn: direct
//! per-subject columns are created and removed, then the backlog is drained
//! in bounded ticks ([`COMPACT_TICK_BLOCKS`]) with the per-step block bound
//! asserted and query answers checked *mid-compaction* — readers are never
//! blocked behind a full remap.
//!
//! `--smoke` pins a small deterministic configuration for CI; `--full`
//! extends the sweep to 10^6 subjects. Machine-readable output goes to
//! `BENCH_subjects.json`.

use crate::table::{bytes as fmt_bytes, Table};
use crate::Effort;
use dol_acl::SubjectId;
use dol_nok::Security;
use dol_workloads::{GroupedConfig, GroupedWorld};
use secure_xml::{SecureXmlDb, COMPACT_TICK_BLOCKS};
use std::io::Write as _;
use std::time::Instant;

/// Latency-gate slack: p50 at every step must stay within
/// `P50_RATIO × baseline + P50_EPSILON`.
const P50_RATIO: f64 = 1.25;
/// Absolute noise floor for the latency gate (seconds) — sub-millisecond
/// queries on a shared CI box jitter by more than 25%.
const P50_EPSILON: f64 = 300e-6;
/// Bytes gate: growing the population by `r` may grow codebook+membership
/// bytes by at most `0.9 × r` (strictly sub-linear).
const BYTES_RATIO: f64 = 0.9;
/// Sampled users measured per step.
const POOL: usize = 12;
/// Positions spot-checked per sampled user for answer correctness.
const SPOT_POSITIONS: usize = 64;

/// Queries over the grouped-portal document (paths + descendant steps, so
/// both the streaming and structural-join paths are exercised).
const QUERIES: [&str; 3] = [
    "/workspace/department/team",
    "/workspace/department/team//folder",
    "//folder//doc",
];

/// One user batch registered during the sweep: `count` contiguous ids
/// starting at `first`, all direct members of `team`.
struct Batch {
    first: u32,
    count: usize,
    team: SubjectId,
}

/// Evenly samples `n` users (id + team) out of the registered batches.
fn sample_pool(batches: &[Batch], n: usize) -> Vec<(SubjectId, SubjectId)> {
    let total: usize = batches.iter().map(|b| b.count).sum();
    let n = n.min(total);
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut idx = k * total / n;
        for b in batches {
            if idx < b.count {
                out.push((SubjectId(b.first + idx as u32), b.team));
                break;
            }
            idx -= b.count;
        }
    }
    out
}

struct StepReport {
    subjects: usize,
    p50: f64,
    p99: f64,
    bytes: usize,
    membership_bytes: usize,
    flat_bytes: usize,
    entries: usize,
}

/// Measures the query mix over the pool, returning (p50, p99) in seconds.
/// One warm-up pass first: the gate is about steady-state serving, not the
/// one-off derivation of a cold subject column.
fn measure(db: &SecureXmlDb, pool: &[(SubjectId, SubjectId)], reps: usize) -> (f64, f64) {
    for q in QUERIES {
        for &(u, _) in pool {
            let _ = db.query(q, Security::BindingLevel(u)).expect("warmup");
        }
    }
    let mut lat = Vec::with_capacity(reps * QUERIES.len() * pool.len() * 2);
    for _ in 0..reps {
        for q in QUERIES {
            for &(u, _) in pool {
                let t = Instant::now();
                let _ = db.query(q, Security::BindingLevel(u)).expect("query");
                lat.push(t.elapsed().as_secs_f64());
                let t = Instant::now();
                let _ = db.query(q, Security::SubtreeVisibility(u)).expect("query");
                lat.push(t.elapsed().as_secs_f64());
            }
        }
    }
    lat.sort_by(f64::total_cmp);
    let pick = |p: f64| lat[((lat.len() - 1) as f64 * p) as usize];
    (pick(0.5), pick(0.99))
}

/// Spot-checks that each sampled user's visible set is exactly the OR of
/// its transitive group closure, computed independently from the cascade
/// rule set.
fn check_answers(db: &SecureXmlDb, world: &GroupedWorld, pool: &[(SubjectId, SubjectId)]) {
    let nodes = world.doc.len() as u64;
    for &(u, team) in pool {
        // A user whose only membership is `team` derives exactly the
        // team's closure rights.
        let expect = world.user_column(team);
        let stride = (nodes / SPOT_POSITIONS as u64).max(1);
        let mut pos = 0u64;
        while pos < nodes {
            assert_eq!(
                db.accessible(pos, u).expect("accessible"),
                expect.get(pos as usize),
                "derived bit diverges at position {pos} for subject {u}"
            );
            pos += stride;
        }
    }
}

/// Drains the compaction backlog in bounded ticks, asserting the per-step
/// block bound and re-checking one query's answers mid-drain.
fn drain_compaction(db: &mut SecureXmlDb, probe: (SubjectId, &[u64])) -> (usize, u64) {
    let backlog0 = db.compaction_backlog();
    let (probe_subject, probe_expect) = probe;
    let mut ticks = 0usize;
    loop {
        let p = db.compaction_tick(COMPACT_TICK_BLOCKS).expect("tick");
        assert!(
            p.blocks_done <= COMPACT_TICK_BLOCKS,
            "compaction tick exceeded its block budget: {} > {}",
            p.blocks_done,
            COMPACT_TICK_BLOCKS
        );
        ticks += 1;
        if ticks % 3 == 1 {
            // Readers keep getting exact answers mid-compaction.
            let r = db
                .query(QUERIES[0], Security::BindingLevel(probe_subject))
                .expect("mid-compaction query");
            assert_eq!(
                r.matches, probe_expect,
                "answers changed mid-compaction at tick {ticks}"
            );
        }
        if p.finished {
            return (ticks, backlog0);
        }
        assert!(ticks < 1_000_000, "compaction never converged");
    }
}

/// Runs the subject-scaling sweep.
pub fn run(effort: Effort, seed: u64, smoke: bool) {
    let steps: Vec<usize> = if smoke {
        vec![4, 512, 4096]
    } else {
        let mut s = vec![4, 1_000, 10_000, 100_000];
        if matches!(effort, Effort::Full) {
            s.push(1_000_000);
        }
        s
    };
    let reps = if smoke { 3 } else { effort.pick(5, 9) };
    let cfg = GroupedConfig {
        initial_users: 4,
        seed,
        ..Default::default()
    };
    let world = GroupedWorld::generate(&cfg);
    let mut db = SecureXmlDb::from_document_factored(
        world.doc.clone(),
        &world.oracle(),
        world.space().clone(),
    )
    .expect("build factored db");
    println!(
        "Subject scaling on the group-factored codebook ({} nodes, {} physical columns,\n\
         {} codebook entries, seed {seed})\n",
        world.doc.len(),
        world.physical_subjects(),
        db.dol().codebook().len(),
    );

    // Registered-user batches; the initial users come from the world.
    let mut batches: Vec<Batch> = world
        .users()
        .iter()
        .enumerate()
        .map(|(i, &u)| Batch {
            first: u.0,
            count: 1,
            team: world.team_for(i),
        })
        .collect();
    let mut current: usize = world.users().len();

    let mut t = Table::new(
        "subjects: factored codebook scaling",
        &[
            "subjects",
            "p50",
            "p99",
            "entries",
            "codebook+membership",
            "flat equivalent",
            "p50 vs base",
        ],
    );
    let mut reports: Vec<StepReport> = Vec::new();
    let mut base_p50 = 0.0f64;
    let mut base_bytes = 0usize;
    let mut base_subjects = 0usize;
    for &target in &steps {
        if target > current {
            // Register the delta purely through the membership table,
            // chunked per team so ids stay contiguous per batch.
            let delta = target - current;
            let teams = world.teams().len();
            for ti in 0..teams {
                let count = delta / teams + usize::from(ti < delta % teams);
                if count == 0 {
                    continue;
                }
                let team = world.teams()[ti];
                let first = db
                    .add_grouped_subjects(count, &[team])
                    .expect("bulk membership add");
                batches.push(Batch {
                    first: first.0,
                    count,
                    team,
                });
            }
            current = target;
        }
        let pool = sample_pool(&batches, POOL);
        check_answers(&db, &world, &pool);
        let (p50, p99) = measure(&db, &pool, reps);
        let cb = db.dol().codebook();
        let report = StepReport {
            subjects: target,
            p50,
            p99,
            bytes: cb.bytes(),
            membership_bytes: cb.membership_bytes(),
            flat_bytes: cb.flat_equivalent_bytes(),
            entries: cb.len(),
        };
        if reports.is_empty() {
            base_p50 = p50;
            base_bytes = report.bytes;
            base_subjects = target;
        } else {
            // Latency gate: flat in the population size.
            assert!(
                p50 <= base_p50 * P50_RATIO + P50_EPSILON,
                "p50 at {target} subjects regressed: {:.1}µs vs {:.1}µs baseline",
                p50 * 1e6,
                base_p50 * 1e6
            );
            // Bytes gate: strictly sub-linear in the population size.
            let subject_ratio = target as f64 / base_subjects as f64;
            let bytes_ratio = report.bytes as f64 / base_bytes as f64;
            assert!(
                bytes_ratio <= BYTES_RATIO * subject_ratio,
                "codebook+membership bytes not sub-linear at {target} subjects: \
                 bytes grew {bytes_ratio:.1}x for a {subject_ratio:.1}x population"
            );
        }
        t.row(&[
            target.to_string(),
            format!("{:.1}µs", p50 * 1e6),
            format!("{:.1}µs", p99 * 1e6),
            report.entries.to_string(),
            fmt_bytes(report.bytes),
            fmt_bytes(report.flat_bytes),
            format!("{:.2}x", p50 / base_p50),
        ]);
        reports.push(report);
    }
    t.print();
    println!(
        "(Gates: p50 within {P50_RATIO}x of the 4-subject baseline (+{:.0}µs floor) at every\n\
         step; codebook+membership bytes sub-linear ({BYTES_RATIO} x subject ratio); sampled\n\
         users' visible sets equal their independently computed group-closure OR.)\n",
        P50_EPSILON * 1e6
    );

    // ---- incremental compaction under churn ---------------------------
    // Direct per-subject grants materialize columns; removing the subjects
    // leaves dead columns and duplicate entries for the compactor.
    let pool = sample_pool(&batches, 4);
    let probe_subject = pool[0].0;
    let probe_expect = db
        .query(QUERIES[0], Security::BindingLevel(probe_subject))
        .expect("probe")
        .matches;
    let churn = if smoke { 6 } else { 10 };
    let mut churned = Vec::with_capacity(churn);
    for i in 0..churn {
        let s = db.add_subject(None).expect("churn add");
        db.set_subtree_access((i as u64 * 7) % db.len() as u64, s, true)
            .expect("churn grant");
        churned.push(s);
    }
    for s in churned {
        db.remove_subject(s).expect("churn remove");
    }
    let armed = db.begin_compaction().expect("begin compaction");
    assert!(armed, "churn left nothing to compact");
    let (ticks, backlog) = drain_compaction(&mut db, (probe_subject, &probe_expect));
    check_answers(&db, &world, &pool);
    let cb = db.dol().codebook();
    println!(
        "incremental compaction: backlog {backlog} blocks drained in {ticks} ticks of \
         <= {COMPACT_TICK_BLOCKS} blocks,\nanswers stable throughout; \
         {} entries / {} live columns after\n",
        cb.len(),
        cb.live_columns()
    );

    write_json(seed, &world, &reports, ticks, backlog);
}

fn write_json(seed: u64, world: &GroupedWorld, reports: &[StepReport], ticks: usize, backlog: u64) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"subjects\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"nodes\": {},\n", world.doc.len()));
    out.push_str(&format!(
        "  \"physical_columns\": {},\n",
        world.physical_subjects()
    ));
    out.push_str(&format!("  \"p50_ratio_gate\": {P50_RATIO},\n"));
    out.push_str(&format!("  \"bytes_ratio_gate\": {BYTES_RATIO},\n"));
    out.push_str("  \"steps\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"subjects\": {}, \"p50_us\": {:.2}, \"p99_us\": {:.2}, \"entries\": {}, \
             \"codebook_bytes\": {}, \"membership_bytes\": {}, \"flat_equivalent_bytes\": {}}}{}\n",
            r.subjects,
            r.p50 * 1e6,
            r.p99 * 1e6,
            r.entries,
            r.bytes,
            r.membership_bytes,
            r.flat_bytes,
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"compaction\": {{\"ticks\": {ticks}, \"backlog_blocks\": {backlog}, \
         \"max_blocks_per_tick\": {COMPACT_TICK_BLOCKS}}}\n"
    ));
    out.push_str("}\n");
    match std::fs::File::create("BENCH_subjects.json").and_then(|mut f| f.write_all(out.as_bytes()))
    {
        Ok(()) => println!("(wrote BENCH_subjects.json)\n"),
        Err(e) => eprintln!("could not write BENCH_subjects.json: {e}"),
    }
}
