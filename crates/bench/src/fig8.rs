//! §4.2 extension: structural-join queries (Q4–Q6) under both secure
//! semantics — ε-NoK + plain STD (Cho et al.) and the subtree-visibility
//! ε-STD (Gabillon–Bruno) — against the unsecured baseline.

use crate::setup::{synth_column, xmark_doc, BenchDb, ColumnOracle, SUBJECT, TABLE1};
use crate::table::{bytes, f3, Table};
use crate::Effort;
use dol_nok::Security;
use std::time::Instant;

fn best_time(db: &BenchDb, query: &str, security: Security, reps: usize) -> f64 {
    let engine = db.engine();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let _ = engine.execute(query, security).expect("query");
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Runs the join experiment.
pub fn run(effort: Effort) {
    let doc = xmark_doc(effort.scale(0.3, 2.5));
    let reps = effort.pick(3, 7);
    println!(
        "Structural joins (Q4-Q6) on XMark ({} nodes): unsecured STD vs e-NoK+STD (Cho)\n\
         vs subtree-visibility e-STD (Gabillon-Bruno)\n",
        doc.len()
    );
    for acc10 in [3usize, 5, 7] {
        let acc = acc10 as f64 / 10.0;
        let col = synth_column(&doc, acc, 0.03, 77 + acc10 as u64);
        let db = BenchDb::build(doc.clone(), &ColumnOracle(col), 8192);
        let engine = db.engine();
        let mut t = Table::new(
            &format!("joins at {}% accessible", acc10 * 10),
            &[
                "query",
                "answers plain",
                "answers Cho",
                "answers GB",
                "time Cho/plain",
                "time GB/plain",
                "GB path nodes",
            ],
        );
        let cb = db.dol.codebook();
        println!(
            "codebook accounting at {}% accessible: {} entries, {} (entry bits {} + \
             membership {}), {}-byte codes; flat one-column-per-subject equivalent {}",
            acc10 * 10,
            cb.len(),
            bytes(cb.bytes()),
            bytes(cb.bytes() - cb.membership_bytes()),
            bytes(cb.membership_bytes()),
            cb.code_bytes(),
            bytes(cb.flat_equivalent_bytes()),
        );
        for (id, q) in &TABLE1[3..6] {
            let plain = engine.execute(q, Security::None).expect("query");
            let cho = engine
                .execute(q, Security::BindingLevel(SUBJECT))
                .expect("query");
            let gb = engine
                .execute(q, Security::SubtreeVisibility(SUBJECT))
                .expect("query");
            let t_plain = best_time(&db, q, Security::None, reps);
            let t_cho = best_time(&db, q, Security::BindingLevel(SUBJECT), reps);
            let t_gb = best_time(&db, q, Security::SubtreeVisibility(SUBJECT), reps);
            t.row(&[
                format!("{id} {q}"),
                plain.matches.len().to_string(),
                cho.matches.len().to_string(),
                gb.matches.len().to_string(),
                f3(t_cho / t_plain),
                f3(t_gb / t_plain),
                gb.stats.visibility_nodes.to_string(),
            ]);
        }
        t.print();
    }
    println!(
        "(Shapes: Cho answers ⊇ GB answers (GB prunes whole subtrees under inaccessible\n\
         roots); the Cho-secure join costs no extra I/O over plain STD; the GB pass adds a\n\
         bounded path-inspection overhead that shares root-to-node paths across candidates.)\n"
    );
}
