//! Criterion benchmark: labeling construction costs — single-subject DOL vs
//! optimal CAM, multi-subject DOL from a row stream, and the full secured
//! bulk load (the paper's single-pass construction).

use criterion::{criterion_group, criterion_main, Criterion};
use dol_bench::setup::{synth_column, xmark_doc, ColumnOracle};
use dol_cam::Cam;
use dol_core::{Dol, EmbeddedDol};
use dol_storage::{BufferPool, MemDisk, StoreConfig};
use dol_workloads::{LiveLinkConfig, LiveLinkWorld};
use std::sync::Arc;

fn build_labeling(c: &mut Criterion) {
    let doc = xmark_doc(0.3);
    let col = synth_column(&doc, 0.5, 0.03, 5);

    c.bench_function("build/dol_single_subject", |b| {
        b.iter(|| Dol::build_single(&col).transition_count())
    });
    c.bench_function("build/cam_optimal", |b| {
        b.iter(|| Cam::build_optimal(&doc, &col).len())
    });
    c.bench_function("build/secured_bulk_load", |b| {
        b.iter(|| {
            let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 4096));
            let (store, _dol) = EmbeddedDol::build(
                pool,
                StoreConfig::default(),
                &doc,
                &ColumnOracle(col.clone()),
            )
            .unwrap();
            store.total_nodes()
        })
    });

    let world = LiveLinkWorld::generate(&LiveLinkConfig {
        departments: 5,
        projects_per_dept: 3,
        project_size: 80,
        users: 150,
        modes: 2,
        seed: 1,
    });
    c.bench_function("build/dol_multi_subject_row_stream", |b| {
        b.iter(|| {
            let stream = world.row_stream(0, None);
            Dol::from_row_stream(world.doc.len() as u64, world.subject_count(), &stream)
                .codebook()
                .len()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = build_labeling
}
criterion_main!(benches);
