//! Criterion benchmark behind Figure 7: ε-NoK vs non-secure NoK for the
//! single-fragment queries Q1–Q3 at several accessibility ratios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dol_bench::setup::{
    synth_column, xmark_doc, BenchDb, ColumnOracle, Q3_SINGLE_PATH, SUBJECT, TABLE1,
};
use dol_nok::Security;

fn secure_query(c: &mut Criterion) {
    let doc = xmark_doc(0.3);
    let queries = [TABLE1[0], TABLE1[1], Q3_SINGLE_PATH];
    for acc10 in [5usize, 7] {
        let mut col = synth_column(&doc, acc10 as f64 / 10.0, 0.03, 42);
        for id in doc.preorder() {
            if doc.node(id).depth <= 2 {
                col.set(id.index(), true);
            }
        }
        let db = BenchDb::build(doc.clone(), &ColumnOracle(col), 8192);
        let engine = db.engine();
        let mut g = c.benchmark_group(format!("fig7/access{}0pct", acc10));
        for (qid, q) in queries {
            g.bench_with_input(BenchmarkId::new("NoK", qid), &q, |b, q| {
                b.iter(|| engine.execute(q, Security::None).unwrap().matches.len())
            });
            g.bench_with_input(BenchmarkId::new("eNoK", qid), &q, |b, q| {
                b.iter(|| {
                    engine
                        .execute(q, Security::BindingLevel(SUBJECT))
                        .unwrap()
                        .matches
                        .len()
                })
            });
        }
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = secure_query
}
criterion_main!(benches);
