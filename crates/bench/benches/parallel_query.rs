//! Criterion benchmark for parallel candidate matching: the descendant-join
//! queries at worker counts 1/2/4/8, secured and unsecured. Sequential
//! (`parallelism = 1`) is the baseline the speedups in CHANGES.md quote.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dol_bench::setup::{synth_column, xmark_doc, BenchDb, ColumnOracle, SUBJECT};
use dol_nok::{parse_query, ExecOptions, QueryPlan, Security};

fn parallel_query(c: &mut Criterion) {
    let doc = xmark_doc(0.5);
    let col = synth_column(&doc, 0.5, 0.03, 7);
    let db = BenchDb::build(doc, &ColumnOracle(col), 8192);
    let engine = db.engine();
    for (qid, q) in [("Q5", "//listitem//keyword"), ("Q6", "//item//emph")] {
        let plan = QueryPlan::new(parse_query(q).unwrap());
        let baseline = engine
            .execute_plan(&plan, Security::BindingLevel(SUBJECT))
            .unwrap()
            .matches;
        let mut g = c.benchmark_group(format!("parallel/{qid}"));
        for workers in [1usize, 2, 4, 8] {
            let opts = ExecOptions {
                parallelism: workers,
                ..ExecOptions::default()
            };
            let res = engine
                .execute_plan_opts(&plan, Security::BindingLevel(SUBJECT), opts.clone())
                .unwrap();
            assert_eq!(res.matches, baseline, "{qid}: answers diverged");
            g.bench_with_input(BenchmarkId::new("eNoK", workers), &workers, |b, _| {
                b.iter(|| {
                    engine
                        .execute_plan_opts(&plan, Security::BindingLevel(SUBJECT), opts.clone())
                        .unwrap()
                        .matches
                        .len()
                })
            });
            g.bench_with_input(BenchmarkId::new("NoK", workers), &workers, |b, _| {
                b.iter(|| {
                    engine
                        .execute_plan_opts(&plan, Security::None, opts.clone())
                        .unwrap()
                        .matches
                        .len()
                })
            });
        }
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = parallel_query
}
criterion_main!(benches);
