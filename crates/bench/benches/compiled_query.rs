//! Criterion benchmark for the query→automaton compilation: interpreted vs
//! compiled execution of the Table-1 queries, unsecured and binding-level,
//! with a warm plan cache (the lowering happens once, outside the timed
//! loop — exactly how the serving path uses it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dol_bench::setup::{
    synth_column, xmark_doc, BenchDb, ColumnOracle, Q3_SINGLE_PATH, SUBJECT, TABLE1,
};
use dol_nok::{ExecOptions, PlanCache, Security};

fn compiled_query(c: &mut Criterion) {
    let doc = xmark_doc(0.3);
    let col = synth_column(&doc, 0.6, 0.05, 20050405);
    let db = BenchDb::build(doc, &ColumnOracle(col), 8192);
    let engine = db.engine();
    let cache = PlanCache::new(16);
    let mut queries: Vec<(&str, &str)> = TABLE1.to_vec();
    queries.push(Q3_SINGLE_PATH);
    for (sec_name, sec) in [
        ("unsecured", Security::None),
        ("binding", Security::BindingLevel(SUBJECT)),
    ] {
        let mut g = c.benchmark_group(format!("compiled_query/{sec_name}"));
        for &(qid, q) in &queries {
            let (plan, compiled) = cache.get_or_compile(q, db.doc.tags()).unwrap();
            let interp_opts = ExecOptions {
                compiled: false,
                ..ExecOptions::default()
            };
            g.bench_with_input(BenchmarkId::new("interpreted", qid), &q, |b, _| {
                b.iter(|| {
                    engine
                        .execute_plan_opts(&plan, sec, interp_opts.clone())
                        .unwrap()
                        .matches
                        .len()
                })
            });
            g.bench_with_input(BenchmarkId::new("compiled", qid), &q, |b, _| {
                b.iter(|| {
                    engine
                        .execute_compiled_opts(&plan, &compiled, sec, ExecOptions::default())
                        .unwrap()
                        .matches
                        .len()
                })
            });
        }
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = compiled_query
}
criterion_main!(benches);
