//! Criterion benchmark: §3.4 accessibility-update operations on the
//! embedded DOL (single node, subtree) and the codebook subject operations.

use criterion::{criterion_group, criterion_main, Criterion};
use dol_acl::SubjectId;
use dol_bench::setup::{synth_column, xmark_doc, ColumnOracle, SUBJECT};
use dol_core::EmbeddedDol;
use dol_storage::{BufferPool, MemDisk, StoreConfig, StructStore};
use std::sync::Arc;

fn setup() -> (StructStore, EmbeddedDol) {
    let doc = xmark_doc(0.2);
    let col = synth_column(&doc, 0.5, 0.03, 5);
    let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 4096));
    EmbeddedDol::build(pool, StoreConfig::default(), &doc, &ColumnOracle(col)).unwrap()
}

fn update_ops(c: &mut Criterion) {
    let (mut store, mut dol) = setup();
    let n = store.total_nodes();

    let mut flip = false;
    let mut pos = 1u64;
    c.bench_function("update/set_node", |b| {
        b.iter(|| {
            pos = (pos * 31 + 7) % n;
            flip = !flip;
            dol.set_node(&mut store, pos, SUBJECT, flip).unwrap()
        })
    });

    c.bench_function("update/set_subtree", |b| {
        b.iter(|| {
            pos = (pos * 31 + 7) % n;
            let size = store.node(pos).unwrap().size as u64;
            flip = !flip;
            dol.set_subtree(&mut store, pos, pos + size, SUBJECT, flip)
                .unwrap()
        })
    });

    c.bench_function("update/codebook_add_subject", |b| {
        // Batched: adding a column mutates the codebook, so each iteration
        // works on a fresh clone instead of growing one without bound.
        b.iter_batched(
            || dol.codebook().clone(),
            |mut cb| cb.add_subject(Some(SubjectId(0))),
            criterion::BatchSize::SmallInput,
        )
    });

    c.bench_function("lookup/accessible", |b| {
        b.iter(|| {
            pos = (pos * 31 + 7) % n;
            dol.accessible(&store, pos, SUBJECT).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = update_ops
}
criterion_main!(benches);
