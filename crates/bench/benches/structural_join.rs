//! Criterion benchmark behind the §4.2 join experiment: Q4–Q6 under plain
//! STD, Cho-secure (ε-NoK + STD) and Gabillon–Bruno (ε-STD) evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dol_bench::setup::{synth_column, xmark_doc, BenchDb, ColumnOracle, SUBJECT, TABLE1};
use dol_nok::Security;

fn structural_join(c: &mut Criterion) {
    let doc = xmark_doc(0.3);
    let col = synth_column(&doc, 0.7, 0.03, 7);
    let db = BenchDb::build(doc, &ColumnOracle(col), 8192);
    let engine = db.engine();
    let mut g = c.benchmark_group("joins");
    for (qid, q) in &TABLE1[3..6] {
        for (name, sec) in [
            ("plain", Security::None),
            ("cho", Security::BindingLevel(SUBJECT)),
            ("gb", Security::SubtreeVisibility(SUBJECT)),
        ] {
            g.bench_with_input(BenchmarkId::new(*qid, name), q, |b, q| {
                b.iter(|| engine.execute(q, sec).unwrap().matches.len())
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = structural_join
}
criterion_main!(benches);
