//! The query engine: candidates → fragment matches → joins → answers.

use crate::cache::fnv1a;
use crate::compiled::{CompiledMatcher, CompiledPlan, SnapshotCache};
use crate::join::{stack_tree_desc, VisibilityChecker};
use crate::matcher::{is_availability, Binding, FragmentMatcher, MatchContext};
use crate::pattern::PNodeId;
use crate::plan::QueryPlan;
use crate::xpath::{parse_query, QueryParseError};
use dol_acl::SubjectId;
use dol_core::EmbeddedDol;
use dol_storage::disk::StorageError;
use dol_storage::{with_io_deadline, BPlusTree, Deadline, IoStats, StructStore, ValueStore};
use dol_xml::{TagId, TagInterner};
use std::borrow::Cow;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The security mode of one evaluation. `Hash`/`Eq` so a (query, security)
/// pair can key a result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Security {
    /// Unsecured evaluation (the plain NoK baseline).
    None,
    /// ε-NoK / Cho et al. semantics: a binding is discarded iff one of its
    /// bound data nodes is inaccessible to the subject (paper §4).
    BindingLevel(SubjectId),
    /// Gabillon–Bruno semantics (§4.2): additionally, every ancestor of
    /// every bound node must be accessible — an inaccessible node hides its
    /// entire subtree.
    SubtreeVisibility(SubjectId),
}

impl Security {
    fn subject(self) -> Option<SubjectId> {
        match self {
            Security::None => None,
            Security::BindingLevel(s) | Security::SubtreeVisibility(s) => Some(s),
        }
    }
}

/// Errors from query evaluation.
#[derive(Debug)]
pub enum QueryError {
    /// The query string failed to parse.
    Parse(QueryParseError),
    /// The storage layer failed.
    Storage(StorageError),
    /// A secure mode was requested on an engine built without a DOL.
    NoAccessControl,
    /// The evaluation's [`ExecOptions::deadline`] expired (or was cancelled)
    /// mid-query. The boxed stats describe the *partial* work done before
    /// the abort — counters and I/O only, never a partial answer.
    DeadlineExceeded(Box<ExecStats>),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "{e}"),
            QueryError::Storage(e) => write!(f, "{e}"),
            QueryError::NoAccessControl => {
                write!(f, "secure evaluation requested but no DOL is attached")
            }
            QueryError::DeadlineExceeded(stats) => write!(
                f,
                "query deadline exceeded after visiting {} node(s)",
                stats.nodes_visited
            ),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<QueryParseError> for QueryError {
    fn from(e: QueryParseError) -> Self {
        QueryError::Parse(e)
    }
}

impl From<StorageError> for QueryError {
    fn from(e: StorageError) -> Self {
        QueryError::Storage(e)
    }
}

/// Execution options (ablation knobs plus the evaluation's time budget).
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Enable the §3.3 page-skip optimization (default: true).
    pub page_skip: bool,
    /// Worker threads for candidate matching: `1` (the default) evaluates
    /// sequentially on the calling thread, `0` uses all available cores, any
    /// other value spawns exactly that many scoped workers. Results are
    /// byte-identical to sequential evaluation at every setting: candidates
    /// are split into contiguous chunks and worker outputs are concatenated
    /// in chunk order.
    pub parallelism: usize,
    /// Cooperative deadline/cancellation for the whole evaluation (default:
    /// [`Deadline::never`]). The matcher checks it between node loads and
    /// the buffer pool between retry attempts; expiry aborts the query with
    /// [`QueryError::DeadlineExceeded`] carrying the partial-work stats —
    /// never with a partial answer, and never masked by fail-closed.
    pub deadline: Deadline,
    /// Execute through the compiled automaton ([`CompiledPlan`]) rather than
    /// the interpreted matcher (default: true). Answers are identical either
    /// way (the differential property test enforces it); the flag exists for
    /// the interpreted baseline in benchmarks and differential tests.
    pub compiled: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        Self {
            page_skip: true,
            parallelism: 1,
            deadline: Deadline::never(),
            compiled: true,
        }
    }
}

/// The machine's core count, detected once per process.
/// `available_parallelism` can cost a syscall (cgroup probing on Linux), and
/// `parallelism: 0` resolves through here on every fragment of every query.
fn detected_parallelism() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

impl ExecOptions {
    /// The effective worker count (`0` resolved to the core count, looked
    /// up once per process).
    pub fn effective_parallelism(&self) -> usize {
        match self.parallelism {
            0 => detected_parallelism(),
            n => n,
        }
    }

    /// The worker count for one candidate list: effective parallelism
    /// clamped to the number of candidates, so no worker is spawned without
    /// a chunk to process (and never zero, so it is safe as a divisor).
    pub fn workers_for(&self, candidates: usize) -> usize {
        self.effective_parallelism().clamp(1, candidates.max(1))
    }
}

/// Per-query execution statistics (the measured quantities of §5.2).
#[derive(Debug, Default, Clone, Copy)]
pub struct ExecStats {
    /// Candidate fragment roots considered.
    pub candidates: u64,
    /// Data nodes loaded during matching.
    pub nodes_visited: u64,
    /// Nodes rejected by accessibility checks.
    pub nodes_denied: u64,
    /// Candidates rejected from in-memory block headers without I/O.
    pub blocks_skipped: u64,
    /// Structural-join output pairs.
    pub join_pairs: u64,
    /// Path nodes inspected by the subtree-visibility checker (ε-STD only).
    pub visibility_nodes: u64,
    /// Storage failures masked as inaccessibility during secure evaluation
    /// (the fail-closed policy). Always 0 in [`Security::None`], where
    /// storage errors abort the query instead.
    pub blocks_failed_closed: u64,
    /// Buffer-pool I/O incurred by this query.
    pub io: IoStats,
    /// Wall-clock evaluation time.
    pub elapsed: Duration,
}

impl ExecStats {
    /// Folds one matcher's counters in (workers merge in chunk order, but
    /// these sums are order-independent).
    fn add_match(&mut self, m: &crate::matcher::MatchStats) {
        self.nodes_visited += m.nodes_visited;
        self.nodes_denied += m.nodes_denied;
        self.blocks_skipped += m.candidates_block_skipped;
        self.blocks_failed_closed += m.blocks_failed_closed;
    }
}

/// The result of one evaluation.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Document positions bound to the returning node, ascending, distinct —
    /// the "answers returned" of Figure 7.
    pub matches: Vec<u64>,
    /// Execution statistics.
    pub stats: ExecStats,
}

/// A query engine over one secured (or unsecured) document store.
///
/// Construction scans the store once to build the tag B+-tree index used to
/// seed NoK pattern matching (§4.1: "using B+ trees on the subtree root's
/// value or tag names to start the matching").
pub struct QueryEngine<'a> {
    store: &'a StructStore,
    values: &'a ValueStore,
    tags: &'a TagInterner,
    dol: Option<&'a EmbeddedDol>,
    tag_index: IndexRef<'a>,
    /// Optional tag+value index: built by `new`, absent in `with_index`
    /// engines unless supplied.
    value_index: ValueIndexRef<'a>,
}

enum ValueIndexRef<'a> {
    None,
    Owned(BPlusTree<(TagId, u64), Vec<u64>>),
    Borrowed(&'a BPlusTree<(TagId, u64), Vec<u64>>),
}

impl ValueIndexRef<'_> {
    fn get(&self) -> Option<&BPlusTree<(TagId, u64), Vec<u64>>> {
        match self {
            ValueIndexRef::None => None,
            ValueIndexRef::Owned(t) => Some(t),
            ValueIndexRef::Borrowed(t) => Some(t),
        }
    }
}

enum IndexRef<'a> {
    Owned(BPlusTree<TagId, Vec<u64>>),
    Borrowed(&'a BPlusTree<TagId, Vec<u64>>),
}

impl IndexRef<'_> {
    fn get(&self) -> &BPlusTree<TagId, Vec<u64>> {
        match self {
            IndexRef::Owned(t) => t,
            IndexRef::Borrowed(t) => t,
        }
    }
}

/// Builds the tag index of a store: `tag → ascending positions`.
pub fn build_tag_index(store: &StructStore) -> Result<BPlusTree<TagId, Vec<u64>>, StorageError> {
    let mut tag_index: BPlusTree<TagId, Vec<u64>> = BPlusTree::new();
    for entry in store.iter() {
        let (pos, rec) = entry?;
        match tag_index.get_mut(&rec.tag) {
            Some(v) => v.push(pos),
            None => {
                tag_index.insert(rec.tag, vec![pos]);
            }
        }
    }
    Ok(tag_index)
}

/// Builds the tag+value index: `(tag, value hash) → ascending positions` of
/// value-carrying nodes — the other B+-tree the paper starts matching from
/// (§4.1: "B+ trees on the subtree root's value or tag names").
pub fn build_value_index(
    store: &StructStore,
    values: &ValueStore,
) -> Result<BPlusTree<(TagId, u64), Vec<u64>>, StorageError> {
    let mut idx: BPlusTree<(TagId, u64), Vec<u64>> = BPlusTree::new();
    for entry in store.iter() {
        let (pos, rec) = entry?;
        if !rec.has_value {
            continue;
        }
        let Some(v) = values.get(pos)? else { continue };
        let key = (rec.tag, value_hash(&v));
        match idx.get_mut(&key) {
            Some(list) => list.push(pos),
            None => {
                idx.insert(key, vec![pos]);
            }
        }
    }
    Ok(idx)
}

/// A stable 64-bit value hash for the value index — the shared FNV-1a from
/// the cache layer ([`fnv1a`]). Collisions are harmless: the matcher
/// re-checks the actual value.
fn value_hash(v: &str) -> u64 {
    fnv1a(v)
}

impl<'a> QueryEngine<'a> {
    /// Builds an engine (and its tag index) over a store.
    pub fn new(
        store: &'a StructStore,
        values: &'a ValueStore,
        tags: &'a TagInterner,
        dol: Option<&'a EmbeddedDol>,
    ) -> Result<Self, StorageError> {
        Ok(Self {
            store,
            values,
            tags,
            dol,
            tag_index: IndexRef::Owned(build_tag_index(store)?),
            value_index: ValueIndexRef::Owned(build_value_index(store, values)?),
        })
    }

    /// Builds an engine over a store with an externally maintained tag
    /// index (so long-lived databases don't rescan the store per query).
    pub fn with_index(
        store: &'a StructStore,
        values: &'a ValueStore,
        tags: &'a TagInterner,
        dol: Option<&'a EmbeddedDol>,
        tag_index: &'a BPlusTree<TagId, Vec<u64>>,
    ) -> Self {
        Self {
            store,
            values,
            tags,
            dol,
            tag_index: IndexRef::Borrowed(tag_index),
            value_index: ValueIndexRef::None,
        }
    }

    /// Attaches an externally maintained tag+value index (see
    /// [`build_value_index`]) so value-constrained fragment roots seed from
    /// it.
    pub fn set_value_index(&mut self, idx: &'a BPlusTree<(TagId, u64), Vec<u64>>) {
        self.value_index = ValueIndexRef::Borrowed(idx);
    }

    /// The positions of every node with `tag` (ascending), or of every node
    /// for the wildcard. Borrows straight from the tag index when possible —
    /// a candidate list is consulted once per query, and cloning (or
    /// re-sorting) the hottest tag's full position vector per call dominated
    /// the serve mix. Index lists are built by one document-order scan and
    /// are therefore already strictly ascending; that invariant is
    /// debug-asserted here (the leaf fast path and the join sort-elision
    /// depend on it) instead of re-sorted away.
    pub fn candidates(&self, tag: Option<TagId>) -> Cow<'_, [u64]> {
        match tag {
            Some(t) => match self.tag_index.get().get(&t) {
                Some(v) => {
                    debug_assert_doc_order(v);
                    Cow::Borrowed(v.as_slice())
                }
                None => Cow::Owned(Vec::new()),
            },
            None => Cow::Owned((0..self.store.total_nodes()).collect()),
        }
    }

    /// Candidate positions for a fragment root with an optional value
    /// constraint: the tag+value index narrows the list when available
    /// (hash collisions are re-checked by the matcher).
    pub fn candidates_for(&self, tag: Option<TagId>, value: Option<&str>) -> Cow<'_, [u64]> {
        if let (Some(t), Some(v), Some(idx)) = (tag, value, self.value_index.get()) {
            return match idx.get(&(t, value_hash(v))) {
                Some(list) => {
                    debug_assert_doc_order(list);
                    Cow::Borrowed(list.as_slice())
                }
                None => Cow::Owned(Vec::new()),
            };
        }
        self.candidates(tag)
    }

    /// Parses and evaluates `query` under `security`.
    pub fn execute(&self, query: &str, security: Security) -> Result<QueryResult, QueryError> {
        let plan = QueryPlan::new(parse_query(query)?);
        self.execute_plan(&plan, security)
    }

    /// Evaluates a pre-built plan.
    pub fn execute_plan(
        &self,
        plan: &QueryPlan,
        security: Security,
    ) -> Result<QueryResult, QueryError> {
        self.execute_plan_opts(plan, security, ExecOptions::default())
    }

    /// Evaluates a pre-built plan with explicit execution options.
    ///
    /// The options' [`deadline`](ExecOptions::deadline) is installed as the
    /// calling thread's (and every worker's) I/O deadline for the duration;
    /// on expiry the query aborts with [`QueryError::DeadlineExceeded`]
    /// carrying the counters and I/O accumulated so far.
    ///
    /// With [`ExecOptions::compiled`] (the default) the plan is lowered to a
    /// [`CompiledPlan`] for this call; long-lived callers should cache the
    /// lowering and use [`execute_compiled_opts`](Self::execute_compiled_opts).
    pub fn execute_plan_opts(
        &self,
        plan: &QueryPlan,
        security: Security,
        opts: ExecOptions,
    ) -> Result<QueryResult, QueryError> {
        if opts.compiled {
            let compiled = CompiledPlan::compile(plan, self.tags);
            self.run_timed(plan, Some(&compiled), security, &opts)
        } else {
            self.run_timed(plan, None, security, &opts)
        }
    }

    /// Evaluates a plan through a pre-lowered automaton (normally from the
    /// [`PlanCache`](crate::cache::PlanCache)). A lowering that is stale for
    /// this engine's tag space ([`CompiledPlan::is_current`]) is replaced by
    /// an ephemeral recompile — correctness never depends on freshness, only
    /// the reuse does.
    pub fn execute_compiled_opts(
        &self,
        plan: &QueryPlan,
        compiled: &CompiledPlan,
        security: Security,
        opts: ExecOptions,
    ) -> Result<QueryResult, QueryError> {
        if compiled.is_current(self.tags) {
            self.run_timed(plan, Some(compiled), security, &opts)
        } else {
            let fresh = CompiledPlan::compile(plan, self.tags);
            self.run_timed(plan, Some(&fresh), security, &opts)
        }
    }

    /// Timing, I/O delta, and deadline-abort plumbing shared by the
    /// interpreted and compiled paths.
    fn run_timed(
        &self,
        plan: &QueryPlan,
        compiled: Option<&CompiledPlan>,
        security: Security,
        opts: &ExecOptions,
    ) -> Result<QueryResult, QueryError> {
        let start = Instant::now();
        let io_before = self.store.pool().stats();
        let mut stats = ExecStats::default();
        let outcome = with_io_deadline(&opts.deadline, || match compiled {
            Some(c) => self.run_pipeline_compiled(plan, c, security, opts, &mut stats),
            None => self.run_pipeline(plan, security, opts, &mut stats),
        });
        stats.io = self.store.pool().stats().since(&io_before);
        stats.elapsed = start.elapsed();
        match outcome {
            Ok(matches) => Ok(QueryResult { matches, stats }),
            Err(QueryError::Storage(StorageError::DeadlineExceeded)) => {
                Err(QueryError::DeadlineExceeded(Box::new(stats)))
            }
            Err(e) => Err(e),
        }
    }

    /// Stages 1–4 of one evaluation; split out so the caller can attach the
    /// partial stats to a deadline abort.
    fn run_pipeline(
        &self,
        plan: &QueryPlan,
        security: Security,
        opts: &ExecOptions,
        stats: &mut ExecStats,
    ) -> Result<Vec<u64>, QueryError> {
        let subject = security.subject();
        let access = match (subject, self.dol) {
            (Some(s), Some(dol)) => Some((dol, s)),
            (Some(_), None) => return Err(QueryError::NoAccessControl),
            (None, _) => None,
        };
        let mut ctx = MatchContext::new(self.store, self.values, self.tags, access, opts.page_skip);
        ctx.deadline = opts.deadline.clone();
        let ctx = ctx;

        // Under subtree-visibility semantics every fragment root's binding
        // must be exported so its ancestor path can be checked.
        let mut plan_gb;
        let plan = if matches!(security, Security::SubtreeVisibility(_)) {
            plan_gb = plan.clone();
            for t in &mut plan_gb.trees {
                if !t.outputs.contains(&t.root) {
                    t.outputs.push(t.root);
                }
            }
            &plan_gb
        } else {
            plan
        };

        // 1. Match every fragment. With `parallelism > 1`, the candidate
        //    list is split into contiguous chunks over scoped workers; each
        //    worker runs its own matcher (sharing the context's decoded
        //    column) and outputs are concatenated in chunk order, so the
        //    tuple stream is byte-identical to sequential evaluation.
        let workers = opts.effective_parallelism().max(1);
        let mut results: Vec<Vec<Binding>> = Vec::with_capacity(plan.trees.len());
        for (i, tree) in plan.trees.iter().enumerate() {
            let mut matcher = FragmentMatcher::new(&ctx, plan, i);
            let candidates: Cow<'_, [u64]> = if i == 0 && plan.pattern.anchored() {
                Cow::Owned(vec![0u64])
            } else if matcher.is_satisfiable() {
                let root_value = plan.pattern.node(tree.root).value.as_deref();
                self.candidates_for(matcher.root_tag(), root_value)
            } else {
                Cow::Owned(Vec::new())
            };
            stats.candidates += candidates.len() as u64;
            let tuples = if workers <= 1 || candidates.len() < 2 {
                let mut tuples = Vec::new();
                for &c in candidates.iter() {
                    tuples.extend(matcher.match_root(c)?);
                }
                stats.add_match(&matcher.stats);
                tuples
            } else {
                let chunk = candidates
                    .len()
                    .div_ceil(opts.workers_for(candidates.len()));
                let per_chunk: Vec<_> = std::thread::scope(|scope| {
                    let ctx = &ctx;
                    let handles: Vec<_> = candidates
                        .chunks(chunk)
                        .map(|chunk| {
                            scope.spawn(move || {
                                // Thread-locals don't cross scope boundaries:
                                // each worker installs the evaluation's
                                // deadline for its own buffer-pool I/O.
                                with_io_deadline(&ctx.deadline, || {
                                    let mut m = FragmentMatcher::new(ctx, plan, i);
                                    let mut tuples = Vec::new();
                                    for &c in chunk {
                                        tuples.extend(m.match_root(c)?);
                                    }
                                    Ok::<_, StorageError>((tuples, m.stats))
                                })
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("matcher worker panicked"))
                        .collect()
                });
                let mut tuples = Vec::new();
                for r in per_chunk {
                    let (t, ms) = r?;
                    tuples.extend(t);
                    stats.add_match(&ms);
                }
                tuples
            };
            let _ = tree;
            results.push(tuples);
        }

        self.finish_pipeline(plan, security, results, stats, None)
    }

    /// Stage 1 of the compiled path: the same candidate seeding as the
    /// interpreted pipeline, executed through [`CompiledMatcher`] — with the
    /// §3.3 skip mask precomputed **once** per evaluation (word-parallel,
    /// from in-memory headers) and single-node fragments routed through the
    /// compressed-domain leaf fast path.
    fn run_pipeline_compiled(
        &self,
        plan: &QueryPlan,
        compiled: &CompiledPlan,
        security: Security,
        opts: &ExecOptions,
        stats: &mut ExecStats,
    ) -> Result<Vec<u64>, QueryError> {
        let subject = security.subject();
        let access = match (subject, self.dol) {
            (Some(s), Some(dol)) => Some((dol, s)),
            (Some(_), None) => return Err(QueryError::NoAccessControl),
            (None, _) => None,
        };
        let mut ctx = MatchContext::new(self.store, self.values, self.tags, access, opts.page_skip);
        ctx.deadline = opts.deadline.clone();
        let ctx = ctx;
        // GB semantics need every fragment root exported; the compiled path
        // passes a flag instead of cloning and re-lowering the plan (sound
        // because a fragment root never appears in its own kin table).
        let force_root_output = matches!(security, Security::SubtreeVisibility(_));
        // One word-parallel pass over the in-memory block directory replaces
        // the per-candidate skip probe. Purely in-memory: no I/O.
        let skip_mask: Option<Vec<u64>> = match (&ctx.column, ctx.access) {
            (Some(col), Some((dol, _))) if opts.page_skip => {
                Some(dol.block_skip_mask(self.store, col))
            }
            _ => None,
        };
        let workers = opts.effective_parallelism().max(1);
        debug_assert_eq!(
            compiled.fragments().len(),
            plan.trees.len(),
            "compiled plan must be lowered from this query plan"
        );
        // Shared per-execution snapshot cache: the sequential leaf fast path
        // and the join's ancestor-interval fetch latch each distinct block at
        // most once between them.
        let mut snaps = SnapshotCache::new(self.store.block_count());
        let mut results: Vec<Vec<Binding>> = Vec::with_capacity(plan.trees.len());
        for i in 0..plan.trees.len() {
            let frag = compiled.fragment(i);
            let anchored_root = i == 0 && plan.pattern.anchored();
            let candidates: Cow<'_, [u64]> = if anchored_root {
                Cow::Owned(vec![0u64])
            } else if frag.is_satisfiable() {
                self.candidates_for(frag.root_tag(), frag.root_value())
            } else {
                Cow::Owned(Vec::new())
            };
            stats.candidates += candidates.len() as u64;
            // The leaf fast path classifies whole blocks in the compressed
            // domain; it requires candidates drawn from the tag index (an
            // anchored root's `[0]` is not), and is sequential by design —
            // it does no per-candidate work worth parallelizing.
            let tuples = if frag.is_leaf() && !anchored_root {
                let mut m =
                    CompiledMatcher::new(&ctx, frag, force_root_output, skip_mask.as_deref());
                let t = m.match_leaf_candidates(&candidates, &mut snaps)?;
                stats.add_match(&m.stats);
                t
            } else if workers <= 1 || candidates.len() < 2 {
                let mut m =
                    CompiledMatcher::new(&ctx, frag, force_root_output, skip_mask.as_deref());
                let mut tuples = Vec::new();
                for &c in candidates.iter() {
                    tuples.extend(m.match_root(c)?);
                }
                stats.add_match(&m.stats);
                tuples
            } else {
                let chunk = candidates
                    .len()
                    .div_ceil(opts.workers_for(candidates.len()));
                let skip_mask = skip_mask.as_deref();
                let per_chunk: Vec<_> = std::thread::scope(|scope| {
                    let ctx = &ctx;
                    let handles: Vec<_> = candidates
                        .chunks(chunk)
                        .map(|chunk| {
                            scope.spawn(move || {
                                with_io_deadline(&ctx.deadline, || {
                                    let mut m = CompiledMatcher::new(
                                        ctx,
                                        frag,
                                        force_root_output,
                                        skip_mask,
                                    );
                                    let mut tuples = Vec::new();
                                    for &c in chunk {
                                        tuples.extend(m.match_root(c)?);
                                    }
                                    Ok::<_, StorageError>((tuples, m.stats))
                                })
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("matcher worker panicked"))
                        .collect()
                });
                let mut tuples = Vec::new();
                for r in per_chunk {
                    let (t, ms) = r?;
                    tuples.extend(t);
                    stats.add_match(&ms);
                }
                tuples
            };
            results.push(tuples);
        }
        self.finish_pipeline(plan, security, results, stats, Some(&mut snaps))
    }

    /// Stages 2–4, shared by the interpreted and compiled paths: the
    /// subtree-visibility filter, the bottom-up structural joins, and the
    /// returning-node projection. `snaps` (the compiled path) switches the
    /// join's ancestor-interval fetch from per-binding `node()` loads to the
    /// execution's shared [`SnapshotCache`] — one page access per distinct
    /// block, shared with the leaf fast path that produced the bindings.
    fn finish_pipeline(
        &self,
        plan: &QueryPlan,
        security: Security,
        mut results: Vec<Vec<Binding>>,
        stats: &mut ExecStats,
        mut snaps: Option<&mut SnapshotCache>,
    ) -> Result<Vec<u64>, QueryError> {
        let subject = security.subject();
        // 2. Subtree-visibility filter on fragment-root bindings.
        if let Security::SubtreeVisibility(s) = security {
            let Some(dol) = self.dol else {
                return Err(QueryError::NoAccessControl);
            };
            for (i, tree) in plan.trees.iter().enumerate() {
                if results[i].is_empty() {
                    continue;
                }
                let root = tree.root;
                // Check in document order so the checker can share paths.
                let mut order: Vec<usize> = (0..results[i].len()).collect();
                order.sort_unstable_by_key(|&t| bound(&results[i][t], root));
                let mut checker = VisibilityChecker::new(self.store, dol, s);
                let mut keep = vec![false; results[i].len()];
                for t in order {
                    let pos = bound(&results[i][t], root);
                    keep[t] = match checker.check(pos) {
                        Ok(visible) => visible,
                        Err(e) if !is_availability(&e) => {
                            // Subtree visibility is always a secure mode:
                            // an unverifiable ancestor path fails closed.
                            stats.blocks_failed_closed += 1;
                            false
                        }
                        Err(e) => return Err(e.into()),
                    };
                }
                stats.visibility_nodes += checker.nodes_inspected;
                let mut it = keep.into_iter();
                results[i].retain(|_| it.next().unwrap_or(false));
            }
        }

        // 3. Structural joins, bottom-up (desc_tree is always the greater
        //    index, so reverse order folds leaves into their ancestors).
        for join in plan.joins.iter().rev() {
            let desc_root = plan.trees[join.desc_tree].root;
            let desc_tuples = std::mem::take(&mut results[join.desc_tree]);
            let anc_tuples = std::mem::take(&mut results[join.anc_tree]);
            if desc_tuples.is_empty() || anc_tuples.is_empty() {
                results[join.anc_tree] = Vec::new();
                continue;
            }
            // Sort both sides in document order of their join positions —
            // unless a side already arrives sorted (leaf fast-path output
            // and single-output fragments do), in which case the re-sort is
            // elided.
            let mut anc_sorted: Vec<&Binding> = anc_tuples.iter().collect();
            if !is_sorted_by_bound(&anc_sorted, join.anc_pnode) {
                anc_sorted.sort_unstable_by_key(|b| bound(b, join.anc_pnode));
            }
            let mut desc_sorted: Vec<&Binding> = desc_tuples.iter().collect();
            if !is_sorted_by_bound(&desc_sorted, desc_root) {
                desc_sorted.sort_unstable_by_key(|b| bound(b, desc_root));
            }
            let mut anc_intervals = Vec::with_capacity(anc_sorted.len());
            let mut anc_kept: Vec<&Binding> = Vec::with_capacity(anc_sorted.len());
            // Batched interval fetch: the execution's snapshot cache serves
            // every anchor in a block from one page access — usually one the
            // leaf fast path already paid for; a failed block fails closed
            // once per binding it hides.
            for b in anc_sorted {
                let pos = bound(b, join.anc_pnode);
                if let Some(sn) = snaps.as_deref_mut() {
                    let blk = self.store.block_of_pos(pos);
                    match sn.get(self.store, blk, subject.is_some()) {
                        Ok(Some(snap)) => {
                            let size = snap.node((pos - snap.first_pos()) as usize).size;
                            anc_intervals.push((pos, pos + u64::from(size)));
                            anc_kept.push(b);
                        }
                        Ok(None) => stats.blocks_failed_closed += 1,
                        Err(e) => return Err(e.into()),
                    }
                    continue;
                }
                match self.store.node(pos) {
                    Ok(rec) => {
                        anc_intervals.push((pos, pos + rec.size as u64));
                        anc_kept.push(b);
                    }
                    Err(e) if subject.is_some() && !is_availability(&e) => {
                        // Fail closed: a binding whose anchor can no longer
                        // be verified is dropped from the join.
                        stats.blocks_failed_closed += 1;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            let anc_sorted = anc_kept;
            let desc_positions: Vec<u64> =
                desc_sorted.iter().map(|b| bound(b, desc_root)).collect();
            let pairs = stack_tree_desc(&anc_intervals, &desc_positions);
            stats.join_pairs += pairs.len() as u64;
            let mut merged = Vec::with_capacity(pairs.len());
            for (ai, dj) in pairs {
                let mut t = anc_sorted[ai].clone();
                t.extend(desc_sorted[dj].iter().copied());
                t.sort_unstable_by_key(|&(p, _)| p);
                t.dedup();
                merged.push(t);
            }
            merged.sort_unstable();
            merged.dedup();
            results[join.anc_tree] = merged;
        }

        // 4. Project the returning node.
        let returning = plan.pattern.returning();
        let mut matches: Vec<u64> = results[0].iter().map(|b| bound(b, returning)).collect();
        matches.sort_unstable();
        matches.dedup();
        Ok(matches)
    }
}

/// The data position bound to `pnode` in a binding.
fn bound(binding: &Binding, pnode: PNodeId) -> u64 {
    binding
        .iter()
        .find(|&&(p, _)| p == pnode)
        .map(|&(_, d)| d)
        .expect("pattern node is an output of its fragment")
}

/// Whether `tuples` is already non-decreasing in the position bound to
/// `pnode` — the join's sort-elision test (O(n), no allocation).
fn is_sorted_by_bound(tuples: &[&Binding], pnode: PNodeId) -> bool {
    tuples
        .windows(2)
        .all(|w| bound(w[0], pnode) <= bound(w[1], pnode))
}

/// Debug invariant behind the no-re-sort policy: index candidate lists are
/// produced by one document-order scan and must be strictly ascending.
fn debug_assert_doc_order(list: &[u64]) {
    debug_assert!(
        list.windows(2).all(|w| w[0] < w[1]),
        "index candidate list must be strictly ascending in document order"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dol_acl::{AccessibilityMap, FnOracle};
    use dol_storage::{BufferPool, FaultConfig, FaultDisk, MemDisk, StoreConfig};
    use dol_xml::{parse, Document, NodeId};
    use std::sync::Arc;

    struct Db {
        store: StructStore,
        values: ValueStore,
        doc: Document,
        dol: EmbeddedDol,
    }

    fn db(xml: &str, map: Option<&AccessibilityMap>, max_rec: usize) -> Db {
        let doc = parse(xml).unwrap();
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 256));
        let cfg = StoreConfig {
            max_records_per_block: max_rec,
        };
        let all = FnOracle::new(1, |_, _| true);
        let (store, dol) = match map {
            Some(m) => EmbeddedDol::build(pool.clone(), cfg, &doc, m).unwrap(),
            None => EmbeddedDol::build(pool.clone(), cfg, &doc, &all).unwrap(),
        };
        let mut values = ValueStore::new(pool);
        for id in doc.preorder() {
            if let Some(v) = &doc.node(id).value {
                values.put(u64::from(id.0), v).unwrap();
            }
        }
        Db {
            store,
            values,
            doc,
            dol,
        }
    }

    fn query(d: &Db, q: &str, sec: Security) -> Vec<u64> {
        let engine = QueryEngine::new(&d.store, &d.values, d.doc.tags(), Some(&d.dol)).unwrap();
        engine.execute(q, sec).unwrap().matches
    }

    const DOC: &str = "<site><regions><africa><item><name>gold</name><quantity>1</quantity>\
                       </item><item><name>salt</name></item></africa></regions>\
                       <categories><category><name>metals</name></category></categories></site>";
    // positions: site=0 regions=1 africa=2 item=3 name=4 quantity=5 item=6
    //            name=7 categories=8 category=9 name=10

    #[test]
    fn parallelism_zero_resolves_once_and_workers_clamp() {
        let auto = ExecOptions {
            parallelism: 0,
            ..ExecOptions::default()
        };
        let n = auto.effective_parallelism();
        assert!(n >= 1, "core detection must never resolve to zero");
        // The process-wide cache makes repeated resolution stable (and
        // syscall-free after the first lookup).
        assert_eq!(auto.effective_parallelism(), n);
        assert_eq!(detected_parallelism(), n);
        // Worker counts are clamped to the candidate list: never zero
        // (safe divisor), never more workers than candidates.
        assert_eq!(auto.workers_for(0), 1);
        assert_eq!(auto.workers_for(1), 1);
        assert!(auto.workers_for(usize::MAX) >= n);
        let eight = ExecOptions {
            parallelism: 8,
            ..ExecOptions::default()
        };
        assert_eq!(eight.workers_for(3), 3);
        assert_eq!(eight.workers_for(8), 8);
        assert_eq!(eight.workers_for(100), 8);
        // Chunk sizing through the clamp never yields more chunks than
        // candidates and always covers the whole list.
        for candidates in [1usize, 2, 3, 7, 8, 9, 1000] {
            let workers = eight.workers_for(candidates);
            let chunk = candidates.div_ceil(workers);
            let chunks = candidates.div_ceil(chunk);
            assert!(chunks <= candidates);
            assert!(chunk * chunks >= candidates);
        }
    }

    #[test]
    fn single_fragment_queries() {
        let d = db(DOC, None, 300);
        assert_eq!(
            query(
                &d,
                "/site/regions/africa/item[name][quantity]",
                Security::None
            ),
            vec![3]
        );
        assert_eq!(
            query(&d, "/site/regions/africa/item", Security::None),
            vec![3, 6]
        );
        assert_eq!(
            query(&d, "/site/*/africa/item/name", Security::None),
            vec![4, 7]
        );
        assert_eq!(query(&d, "//item[name=\"salt\"]", Security::None), vec![6]);
        assert_eq!(query(&d, "/regions", Security::None), Vec::<u64>::new());
    }

    #[test]
    fn descendant_join_queries() {
        let d = db(DOC, None, 300);
        assert_eq!(query(&d, "//regions//name", Security::None), vec![4, 7]);
        assert_eq!(query(&d, "//site//name", Security::None), vec![4, 7, 10]);
        assert_eq!(query(&d, "//africa//quantity", Security::None), vec![5]);
        assert_eq!(
            query(&d, "//category//quantity", Security::None),
            Vec::<u64>::new()
        );
    }

    #[test]
    fn chained_descendants() {
        let d = db("<a><p><x/><p><x/></p></p><p><y/></p></a>", None, 300);
        // a=0 p=1 x=2 p=3 x=4 p=5 y=6.
        // x at 2 descends from p at 1; x at 4 descends from both p nodes.
        assert_eq!(query(&d, "//p//x", Security::None), vec![2, 4]);
        assert_eq!(query(&d, "//a//p//x", Security::None), vec![2, 4]);
        // Only x at 4 has a p strictly between it and another p.
        assert_eq!(query(&d, "//p//p//x", Security::None), vec![4]);
    }

    #[test]
    fn secure_binding_level() {
        let doc = parse(DOC).unwrap();
        let mut map = AccessibilityMap::new(1, doc.len());
        for p in 0..doc.len() as u32 {
            map.set(SubjectId(0), NodeId(p), true);
        }
        // Deny quantity (5): the [quantity] predicate can no longer be bound.
        map.set(SubjectId(0), NodeId(5), false);
        let d = db(DOC, Some(&map), 300);
        let s = Security::BindingLevel(SubjectId(0));
        assert_eq!(
            query(&d, "/site/regions/africa/item[name][quantity]", s),
            Vec::<u64>::new()
        );
        // Un-predicated items still match.
        assert_eq!(query(&d, "/site/regions/africa/item[name]", s), vec![3, 6]);
    }

    #[test]
    fn binding_vs_subtree_visibility_semantics() {
        let doc = parse(DOC).unwrap();
        let mut map = AccessibilityMap::new(1, doc.len());
        for p in 0..doc.len() as u32 {
            map.set(SubjectId(0), NodeId(p), true);
        }
        // africa (2) denied, but its descendants stay accessible.
        map.set(SubjectId(0), NodeId(2), false);
        let d = db(DOC, Some(&map), 300);
        // Cho semantics: //name doesn't bind africa, so names survive.
        assert_eq!(
            query(&d, "//site//name", Security::BindingLevel(SubjectId(0))),
            vec![4, 7, 10]
        );
        // Gabillon–Bruno: names under africa are hidden with their subtree.
        assert_eq!(
            query(
                &d,
                "//site//name",
                Security::SubtreeVisibility(SubjectId(0))
            ),
            vec![10]
        );
    }

    #[test]
    fn figure_2_semantics_note() {
        // §4: accessibility of nodes NOT bound by the pattern has no impact
        // under Cho semantics.
        let doc = parse(DOC).unwrap();
        let mut map = AccessibilityMap::new(1, doc.len());
        for p in 0..doc.len() as u32 {
            map.set(SubjectId(0), NodeId(p), true);
        }
        map.set(SubjectId(0), NodeId(1), false); // regions unbound in //item
        let d = db(DOC, Some(&map), 300);
        assert_eq!(
            query(&d, "//item[name]", Security::BindingLevel(SubjectId(0))),
            vec![3, 6]
        );
        assert_eq!(
            query(
                &d,
                "//item[name]",
                Security::SubtreeVisibility(SubjectId(0))
            ),
            Vec::<u64>::new()
        );
    }

    #[test]
    fn secure_without_dol_errors() {
        let d = db(DOC, None, 300);
        let engine = QueryEngine::new(&d.store, &d.values, d.doc.tags(), None).unwrap();
        assert!(matches!(
            engine.execute("//item", Security::BindingLevel(SubjectId(0))),
            Err(QueryError::NoAccessControl)
        ));
        assert_eq!(
            engine.execute("//item", Security::None).unwrap().matches,
            vec![3, 6]
        );
    }

    #[test]
    fn stats_populated() {
        let d = db(DOC, None, 2);
        let engine = QueryEngine::new(&d.store, &d.values, d.doc.tags(), Some(&d.dol)).unwrap();
        let plan = QueryPlan::new(parse_query("//site//name").unwrap());
        // Default (compiled) execution: both fragments are single-node, so
        // the leaf fast path answers from the index plus block headers —
        // zero nodes materialized; the join still reads pages for intervals.
        let r = engine.execute("//site//name", Security::None).unwrap();
        assert_eq!(r.matches.len(), 3);
        assert!(r.stats.candidates >= 4);
        assert_eq!(r.stats.nodes_visited, 0, "leaf fast path decodes no node");
        assert!(r.stats.join_pairs >= 3);
        assert!(r.stats.io.logical_reads > 0);
        // The interpreted baseline visits every candidate and agrees.
        let interp = engine
            .execute_plan_opts(
                &plan,
                Security::None,
                ExecOptions {
                    compiled: false,
                    ..ExecOptions::default()
                },
            )
            .unwrap();
        assert_eq!(interp.matches, r.matches);
        assert!(interp.stats.nodes_visited > 0);
    }

    #[test]
    fn compiled_matches_interpreted_end_to_end() {
        let doc = parse(DOC).unwrap();
        let mut map = AccessibilityMap::new(1, doc.len());
        for p in 0..doc.len() as u32 {
            map.set(SubjectId(0), NodeId(p), true);
        }
        map.set(SubjectId(0), NodeId(5), false);
        for max_rec in [300, 2] {
            let d = db(DOC, Some(&map), max_rec);
            let engine = QueryEngine::new(&d.store, &d.values, d.doc.tags(), Some(&d.dol)).unwrap();
            for q in [
                "/site/regions/africa/item[name][quantity]",
                "//site//name",
                "//item[name=\"salt\"]",
                "//regions//name",
                "/site/*/africa/item/name",
                "//item[name]",
                "/regions",
                "//nosuchtag",
            ] {
                let plan = QueryPlan::new(parse_query(q).unwrap());
                for sec in [
                    Security::None,
                    Security::BindingLevel(SubjectId(0)),
                    Security::SubtreeVisibility(SubjectId(0)),
                ] {
                    for page_skip in [true, false] {
                        let compiled = engine
                            .execute_plan_opts(
                                &plan,
                                sec,
                                ExecOptions {
                                    page_skip,
                                    ..ExecOptions::default()
                                },
                            )
                            .unwrap();
                        let interpreted = engine
                            .execute_plan_opts(
                                &plan,
                                sec,
                                ExecOptions {
                                    page_skip,
                                    compiled: false,
                                    ..ExecOptions::default()
                                },
                            )
                            .unwrap();
                        assert_eq!(
                            compiled.matches, interpreted.matches,
                            "{q} {sec:?} page_skip={page_skip} max_rec={max_rec}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn stale_compiled_plan_recompiles_and_answers() {
        let d = db(DOC, None, 300);
        let engine = QueryEngine::new(&d.store, &d.values, d.doc.tags(), Some(&d.dol)).unwrap();
        let plan = QueryPlan::new(parse_query("//item[name]").unwrap());
        // Lower against a *smaller* tag space (simulating a plan cached
        // before this document's tags were interned): the fence detects it
        // and the engine recompiles ephemerally — same answer.
        let mut old_tags = TagInterner::new();
        old_tags.intern("item");
        old_tags.intern("name");
        let stale = CompiledPlan::compile(&plan, &old_tags);
        assert!(!stale.is_current(d.doc.tags()));
        let r = engine
            .execute_compiled_opts(&plan, &stale, Security::None, ExecOptions::default())
            .unwrap();
        assert_eq!(r.matches, vec![3, 6]);
        // A current lowering is used as-is.
        let fresh = CompiledPlan::compile(&plan, d.doc.tags());
        let r2 = engine
            .execute_compiled_opts(&plan, &fresh, Security::None, ExecOptions::default())
            .unwrap();
        assert_eq!(r2.matches, vec![3, 6]);
    }

    #[test]
    fn value_index_narrows_candidates() {
        let d = db(DOC, None, 300);
        let engine = QueryEngine::new(&d.store, &d.values, d.doc.tags(), Some(&d.dol)).unwrap();
        // //name="gold": the value index seeds exactly the matching node.
        let narrowed = engine.execute("//name[=\"gold\"]", Security::None).unwrap();
        assert_eq!(narrowed.matches, vec![4]);
        assert_eq!(narrowed.stats.candidates, 1, "value index should seed 1");
        // Without the value index (borrowed-index engine), all `name` nodes
        // are candidates — same answer, more work.
        let tag_index = build_tag_index(&d.store).unwrap();
        let plain =
            QueryEngine::with_index(&d.store, &d.values, d.doc.tags(), Some(&d.dol), &tag_index);
        let wide = plain.execute("//name[=\"gold\"]", Security::None).unwrap();
        assert_eq!(wide.matches, narrowed.matches);
        assert!(wide.stats.candidates > narrowed.stats.candidates);
    }

    #[test]
    fn following_sibling_queries() {
        // r: x, y, x, z — sibling order matters.
        let d = db("<r><x/><y/><x/><z/></r>", None, 300);
        // y with a following x sibling: only the first y qualifies; the
        // returning node is the x that follows it.
        assert_eq!(query(&d, "//y~x", Security::None), vec![3]);
        // x with following z: both x's have a later z sibling.
        assert_eq!(query(&d, "//x~z", Security::None), vec![4]);
        // z with following x: nothing follows z.
        assert_eq!(query(&d, "//z~x", Security::None), Vec::<u64>::new());
        // Predicate form: return the y that has a following x.
        assert_eq!(query(&d, "//y[~x]", Security::None), vec![2]);
    }

    #[test]
    fn following_sibling_respects_security() {
        let doc = parse("<r><a/><b/><c/></r>").unwrap();
        let mut map = AccessibilityMap::new(1, doc.len());
        for p in 0..doc.len() as u32 {
            map.set(SubjectId(0), NodeId(p), true);
        }
        map.set(SubjectId(0), NodeId(3), false); // deny c
        let d = db("<r><a/><b/><c/></r>", Some(&map), 300);
        assert_eq!(query(&d, "//a~c", Security::None), vec![3]);
        assert_eq!(
            query(&d, "//a~c", Security::BindingLevel(SubjectId(0))),
            Vec::<u64>::new()
        );
        // Denied intermediate siblings do not matter (they are unbound).
        assert_eq!(
            query(&d, "//a~b", Security::BindingLevel(SubjectId(0))),
            vec![2]
        );
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let doc = parse(DOC).unwrap();
        let mut map = AccessibilityMap::new(1, doc.len());
        for p in 0..doc.len() as u32 {
            map.set(SubjectId(0), NodeId(p), true);
        }
        map.set(SubjectId(0), NodeId(5), false);
        let d = db(DOC, Some(&map), 2);
        let engine = QueryEngine::new(&d.store, &d.values, d.doc.tags(), Some(&d.dol)).unwrap();
        for q in [
            "//site//name",
            "//item[name]",
            "/site/regions/africa/item[name][quantity]",
        ] {
            for sec in [
                Security::None,
                Security::BindingLevel(SubjectId(0)),
                Security::SubtreeVisibility(SubjectId(0)),
            ] {
                let plan = QueryPlan::new(parse_query(q).unwrap());
                for compiled in [true, false] {
                    let seq = engine
                        .execute_plan_opts(
                            &plan,
                            sec,
                            ExecOptions {
                                compiled,
                                ..ExecOptions::default()
                            },
                        )
                        .unwrap();
                    for parallelism in [0, 2, 3, 7] {
                        let par = engine
                            .execute_plan_opts(
                                &plan,
                                sec,
                                ExecOptions {
                                    parallelism,
                                    compiled,
                                    ..ExecOptions::default()
                                },
                            )
                            .unwrap();
                        assert_eq!(
                            par.matches, seq.matches,
                            "query {q} parallelism {parallelism} compiled {compiled}"
                        );
                        assert_eq!(par.stats.candidates, seq.stats.candidates);
                        assert_eq!(par.stats.nodes_visited, seq.stats.nodes_visited);
                        assert_eq!(par.stats.nodes_denied, seq.stats.nodes_denied);
                        assert_eq!(par.stats.blocks_skipped, seq.stats.blocks_skipped);
                        assert_eq!(par.stats.join_pairs, seq.stats.join_pairs);
                    }
                }
            }
        }
    }

    #[test]
    fn storage_failures_fail_closed_in_secure_modes() {
        let doc = parse(DOC).unwrap();
        let mut map = AccessibilityMap::new(1, doc.len());
        for p in 0..doc.len() as u32 {
            map.set(SubjectId(0), NodeId(p), true);
        }
        // Every page read fails once the faults are armed; the build and the
        // index scans run disarmed so layout and candidates are intact.
        let fault = Arc::new(FaultDisk::new(
            Arc::new(MemDisk::new()),
            FaultConfig {
                permanent_read_failure: 1.0,
                ..FaultConfig::default()
            },
        ));
        fault.set_armed(false);
        let pool = Arc::new(BufferPool::new(fault.clone(), 256));
        let cfg = StoreConfig {
            max_records_per_block: 2,
        };
        let (store, dol) = EmbeddedDol::build(pool.clone(), cfg, &doc, &map).unwrap();
        let mut values = ValueStore::new(pool.clone());
        for id in doc.preorder() {
            if let Some(v) = &doc.node(id).value {
                values.put(u64::from(id.0), v).unwrap();
            }
        }
        let engine = QueryEngine::new(&store, &values, doc.tags(), Some(&dol)).unwrap();
        pool.flush_all().unwrap();
        fault.set_armed(true);

        // Secure modes: unreadable blocks hide their nodes — the query
        // completes with a (possibly empty) answer and the stat records why.
        for sec in [
            Security::BindingLevel(SubjectId(0)),
            Security::SubtreeVisibility(SubjectId(0)),
        ] {
            pool.clear_cache().unwrap();
            let r = engine.execute("//item[name]", sec).unwrap();
            assert!(r.matches.is_empty(), "{sec:?}");
            assert!(r.stats.blocks_failed_closed > 0, "{sec:?}");
        }

        // Unsecured evaluation has nothing to protect: the error surfaces.
        pool.clear_cache().unwrap();
        assert!(matches!(
            engine.execute("//item[name]", Security::None),
            Err(QueryError::Storage(_))
        ));

        // Disarmed again, everything is back to normal.
        fault.set_armed(false);
        pool.clear_cache().unwrap();
        let ok = engine
            .execute("//item[name]", Security::BindingLevel(SubjectId(0)))
            .unwrap();
        assert_eq!(ok.matches, vec![3, 6]);
        assert_eq!(ok.stats.blocks_failed_closed, 0);
    }

    #[test]
    fn expired_deadline_aborts_with_partial_stats_in_every_mode() {
        let doc = parse(DOC).unwrap();
        let mut map = AccessibilityMap::new(1, doc.len());
        for p in 0..doc.len() as u32 {
            map.set(SubjectId(0), NodeId(p), true);
        }
        let d = db(DOC, Some(&map), 2);
        let engine = QueryEngine::new(&d.store, &d.values, d.doc.tags(), Some(&d.dol)).unwrap();
        let plan = QueryPlan::new(parse_query("//item[name]").unwrap());
        for sec in [
            Security::None,
            Security::BindingLevel(SubjectId(0)),
            Security::SubtreeVisibility(SubjectId(0)),
        ] {
            // Sanity: with no deadline the query answers.
            let ok = engine
                .execute_plan_opts(&plan, sec, ExecOptions::default())
                .unwrap();
            assert_eq!(ok.matches, vec![3, 6], "{sec:?}");
            // An already-expired deadline aborts — typed error with the
            // partial-work stats, never a (shrunken) answer.
            let opts = ExecOptions {
                deadline: Deadline::after(Duration::ZERO),
                ..ExecOptions::default()
            };
            match engine.execute_plan_opts(&plan, sec, opts) {
                Err(QueryError::DeadlineExceeded(stats)) => {
                    assert_eq!(stats.blocks_failed_closed, 0, "{sec:?}: not a data fault");
                }
                other => panic!("{sec:?}: expected deadline abort, got {other:?}"),
            }
            // Cancellation mid-flight behaves identically (token fired
            // before execution here; the matcher re-checks between loads).
            let deadline = Deadline::never();
            deadline.token().cancel();
            let opts = ExecOptions {
                deadline,
                ..ExecOptions::default()
            };
            assert!(matches!(
                engine.execute_plan_opts(&plan, sec, opts),
                Err(QueryError::DeadlineExceeded(_))
            ));
        }
        // Parallel workers propagate the abort too.
        let opts = ExecOptions {
            parallelism: 3,
            deadline: Deadline::after(Duration::ZERO),
            ..ExecOptions::default()
        };
        assert!(matches!(
            engine.execute_plan_opts(&plan, Security::BindingLevel(SubjectId(0)), opts),
            Err(QueryError::DeadlineExceeded(_))
        ));
    }

    #[test]
    fn breaker_open_surfaces_instead_of_masking() {
        use dol_storage::RetryPolicy;
        let doc = parse(DOC).unwrap();
        let mut map = AccessibilityMap::new(1, doc.len());
        for p in 0..doc.len() as u32 {
            map.set(SubjectId(0), NodeId(p), true);
        }
        let fault = Arc::new(FaultDisk::new(
            Arc::new(MemDisk::new()),
            FaultConfig {
                permanent_read_failure: 1.0,
                ..FaultConfig::default()
            },
        ));
        fault.set_armed(false);
        let pool = Arc::new(BufferPool::new(fault.clone(), 256));
        let cfg = StoreConfig {
            max_records_per_block: 2,
        };
        let (store, dol) = EmbeddedDol::build(pool.clone(), cfg, &doc, &map).unwrap();
        let mut values = ValueStore::new(pool.clone());
        for id in doc.preorder() {
            if let Some(v) = &doc.node(id).value {
                values.put(u64::from(id.0), v).unwrap();
            }
        }
        let engine = QueryEngine::new(&store, &values, doc.tags(), Some(&dol)).unwrap();
        pool.flush_all().unwrap();
        pool.set_retry_policy(RetryPolicy {
            max_attempts: 1,
            backoff_start: Duration::ZERO,
            breaker_threshold: 1,
            breaker_probe_every: 1_000,
            ..RetryPolicy::default()
        });
        fault.set_armed(true);
        pool.clear_cache().unwrap();

        // The first failed read is a data fault (masked, fail-closed); it
        // trips the breaker, and the very next read is refused with
        // `BreakerOpen` — which must surface even in secure mode: a tripped
        // breaker is unavailability, not "inaccessible".
        let err = engine.execute("//item[name]", Security::BindingLevel(SubjectId(0)));
        assert!(
            matches!(err, Err(QueryError::Storage(StorageError::BreakerOpen))),
            "expected BreakerOpen, got {err:?}"
        );
        assert!(pool.breaker_is_open());

        // Healing: disarm the faults, reset the breaker, and the same
        // engine answers again.
        fault.set_armed(false);
        pool.set_retry_policy(RetryPolicy::default());
        pool.clear_cache().unwrap();
        let ok = engine
            .execute("//item[name]", Security::BindingLevel(SubjectId(0)))
            .unwrap();
        assert_eq!(ok.matches, vec![3, 6]);
    }

    #[test]
    fn anchored_root_must_be_document_root() {
        let d = db("<a><a><b/></a></a>", None, 300);
        assert_eq!(query(&d, "/a/b", Security::None), Vec::<u64>::new());
        assert_eq!(query(&d, "//a/b", Security::None), vec![2]);
        assert_eq!(query(&d, "/a/a/b", Security::None), vec![2]);
    }
}
