#![warn(missing_docs)]
// Query evaluation sits on the fail-closed boundary: production code must
// propagate typed errors, never unwrap them. Tests may unwrap freely.
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

//! The NoK twig query processor with secure evaluation (paper §3.1, §4).
//!
//! A **twig query** is a small pattern tree whose nodes carry tag (and
//! optionally value) constraints and whose edges are parent/child (`/`) or
//! ancestor/descendant (`//`) relationships; one pattern node is the
//! *returning node*. Evaluation finds all bindings of pattern nodes to data
//! nodes and returns the data nodes bound to the returning node.
//!
//! Pipeline:
//!
//! 1. [`xpath`] parses query strings such as
//!    `/site/regions/africa/item[location][name][quantity]` into a
//!    [`PatternTree`].
//! 2. [`plan`] partitions the pattern tree into **NoK subtrees** — maximal
//!    fragments connected only by parent/child ("next-of-kin") edges — linked
//!    by ancestor–descendant join edges.
//! 3. [`matcher`] finds matches of each NoK subtree by top-down navigation
//!    over the [`dol_storage::StructStore`] (Algorithm 1, ε-NoK): candidate
//!    roots are seeded from a tag B+-tree index, and in secure mode every
//!    visited node's accessibility is checked from the code piggy-backed on
//!    its own page, with whole blocks skipped via the in-memory header test.
//! 4. [`join`] combines subtree matches with a Stack-Tree-Desc structural
//!    join; the subtree-visibility variant (ε-STD) implements the stricter
//!    Gabillon–Bruno semantics in which an inaccessible node hides its whole
//!    subtree.
//! 5. [`engine`] ties it together and reports per-query execution statistics
//!    (visited nodes, skipped blocks, buffer-pool I/O) used by the
//!    experiments.
//!
//! Two secure semantics are provided (paper §4 and §4.2):
//!
//! * [`Security::BindingLevel`] — Cho et al.: a result is eliminated iff one
//!   of its *bound* nodes is inaccessible (Theorem 1: ε-NoK plus any
//!   non-secured structural join evaluates this securely);
//! * [`Security::SubtreeVisibility`] — Gabillon–Bruno: additionally every
//!   ancestor of every bound node must be accessible.

pub mod cache;
pub mod compiled;
pub mod engine;
pub mod join;
pub mod matcher;
pub mod pattern;
pub mod plan;
pub mod reference;
pub mod xpath;

pub use cache::{fnv1a, LruCache, PlanCache};
pub use compiled::{CompiledFragment, CompiledMatcher, CompiledPlan};
pub use engine::{
    build_tag_index, build_value_index, ExecOptions, ExecStats, QueryEngine, QueryError,
    QueryResult, Security,
};
pub use pattern::{Axis, PNodeId, PatternNode, PatternTree};
pub use plan::{JoinEdge, NokTree, QueryPlan};
pub use xpath::{parse_query, QueryParseError};
