//! NoK pattern matching — Algorithm 1 (NPM) and its secure variant ε-NoK.
//!
//! A fragment match starts from a candidate data node for the fragment root
//! (seeded by the engine from a tag index) and proceeds by top-down
//! navigation: `FIRST-CHILD` / `FOLLOWING-SIBLING` over the block-oriented
//! encoding, exactly as in the paper. The data children of each matched node
//! are scanned **once**; in secure mode each loaded child's accessibility is
//! checked from the code on its own page (`ACCESS(u)`, Algorithm 1 line 6)
//! and inaccessible children are never recursed into — which is sound for
//! the binding-level (Cho et al.) semantics because an inaccessible node
//! cannot participate in any surviving binding.
//!
//! Where Algorithm 1 reports existence plus the returning node's matches,
//! this implementation enumerates the distinct tuples over the fragment's
//! *output* pattern nodes (fragment root / join anchors / returning node),
//! which is what the structural-join stage consumes. Pattern children whose
//! subtree carries no output are matched existentially with early exit.

use crate::pattern::{Axis, PNodeId, PatternTree};
use crate::plan::{NokTree, QueryPlan};
use dol_acl::SubjectId;
use dol_core::{EmbeddedDol, SubjectColumn};
use dol_storage::disk::StorageError;
use dol_storage::{Deadline, NodeRec, StructStore, ValueStore};
use dol_xml::{TagId, TagInterner};
use std::sync::Arc;

/// A partial result: data positions bound to output pattern nodes,
/// ascending by pattern node id.
pub type Binding = Vec<(PNodeId, u64)>;

/// Whether `e` is an *availability* outcome — the caller's deadline expired
/// (or was cancelled), or the buffer pool's circuit breaker refused the
/// operation. These must never be masked by the fail-closed policy: masking
/// would silently shrink a secure answer, whereas the contract of a timed-out
/// or breaker-refused query is a typed error and *no* answer.
#[inline]
pub(crate) fn is_availability(e: &StorageError) -> bool {
    matches!(
        e,
        StorageError::DeadlineExceeded | StorageError::BreakerOpen
    )
}

/// Deadline checks piggy-back on node loads, once every this many visited
/// nodes (power of two; the check itself is an atomic load plus, for real
/// deadlines, one `Instant::now()`).
pub(crate) const DEADLINE_CHECK_MASK: u64 = 0xFF;

/// Everything a fragment match needs to read.
pub struct MatchContext<'a> {
    /// The structural block store.
    pub store: &'a StructStore,
    /// Character data (for value predicates).
    pub values: &'a ValueStore,
    /// Tag name resolution.
    pub tags: &'a TagInterner,
    /// `Some((dol, subject))` enables ε-NoK accessibility checking.
    pub access: Option<(&'a EmbeddedDol, SubjectId)>,
    /// Decoded accessibility column for the subject, shared by every matcher
    /// (and every worker thread) of one evaluation. When present, the
    /// per-node check is a single shift-and-mask on an immutable snapshot —
    /// no codebook lock, no ACL-entry read.
    pub column: Option<Arc<SubjectColumn>>,
    /// Whether candidates may be rejected from in-memory block headers
    /// without reading their page (§3.3). On by default; the ablation
    /// benchmarks switch it off to isolate its effect.
    pub page_skip: bool,
    /// The evaluation's cooperative time budget, checked between node loads
    /// (every [`DEADLINE_CHECK_MASK`]` + 1` visits). Defaults to
    /// [`Deadline::never`]; expiry surfaces as
    /// [`StorageError::DeadlineExceeded`] and is never fail-closed-masked.
    pub deadline: Deadline,
}

impl<'a> MatchContext<'a> {
    /// Builds a context, decoding the subject's column once up front when
    /// access control is attached.
    pub fn new(
        store: &'a StructStore,
        values: &'a ValueStore,
        tags: &'a TagInterner,
        access: Option<(&'a EmbeddedDol, SubjectId)>,
        page_skip: bool,
    ) -> Self {
        let column = access.map(|(dol, s)| dol.column(s));
        Self {
            store,
            values,
            tags,
            access,
            column,
            page_skip,
            deadline: Deadline::never(),
        }
    }

    /// Whether the node whose code is `code` is accessible (always true in
    /// unsecured mode).
    #[inline]
    pub fn code_accessible(&self, code: u32) -> bool {
        match (&self.column, self.access) {
            (Some(col), _) => col.check_code(code),
            (None, Some((dol, s))) => dol.check_code(code, s),
            (None, None) => true,
        }
    }
}

/// Counters accumulated during matching.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MatchStats {
    /// Data nodes loaded (structure + piggy-backed code).
    pub nodes_visited: u64,
    /// Nodes rejected by the accessibility check.
    pub nodes_denied: u64,
    /// Candidate roots rejected without any page read thanks to the
    /// in-memory block-header skip test.
    pub candidates_block_skipped: u64,
    /// Reads that failed (corrupt or unreadable page) during secure
    /// evaluation and were treated as entirely inaccessible instead of
    /// aborting — the fail-closed policy. Always 0 in unsecured mode, where
    /// storage errors propagate to the caller.
    pub blocks_failed_closed: u64,
}

/// Matches one NoK fragment of a plan against the data.
pub struct FragmentMatcher<'a> {
    ctx: &'a MatchContext<'a>,
    pattern: &'a PatternTree,
    /// Resolved tag of each pattern node (`None` = wildcard; `Some(None)` is
    /// represented by `unmatchable`).
    tag_of: Vec<Option<TagId>>,
    /// Pattern nodes whose tag does not exist in the document at all.
    unmatchable: Vec<bool>,
    /// Whether each pattern node's fragment-subtree contains an output.
    carries_output: Vec<bool>,
    /// Whether each pattern node is itself an output.
    is_output: Vec<bool>,
    tree: &'a NokTree,
    /// Match counters.
    pub stats: MatchStats,
}

impl<'a> FragmentMatcher<'a> {
    /// Prepares a matcher for fragment `tree_idx` of `plan`.
    pub fn new(ctx: &'a MatchContext<'a>, plan: &'a QueryPlan, tree_idx: usize) -> Self {
        let pattern = &plan.pattern;
        let tree = &plan.trees[tree_idx];
        let n = pattern.len();
        let mut tag_of = vec![None; n];
        let mut unmatchable = vec![false; n];
        for id in pattern.iter() {
            if let Some(name) = &pattern.node(id).tag {
                match ctx.tags.get(name) {
                    Some(t) => tag_of[id.index()] = Some(t),
                    None => unmatchable[id.index()] = true,
                }
            }
        }
        let mut is_output = vec![false; n];
        for &o in &tree.outputs {
            is_output[o.index()] = true;
        }
        // carries_output via child-edge closure, computed members-last-first
        // (members are in preorder, so children come after parents).
        let mut carries_output = is_output.clone();
        for &m in tree.members.iter().rev() {
            if carries_output[m.index()] {
                continue;
            }
            let any = pattern
                .node(m)
                .children
                .iter()
                .filter(|&&c| pattern.node(c).axis != Axis::Descendant)
                .any(|&c| carries_output[c.index()]);
            if any {
                carries_output[m.index()] = true;
            }
        }
        Self {
            ctx,
            pattern,
            tag_of,
            unmatchable,
            carries_output,
            is_output,
            tree,
            stats: MatchStats::default(),
        }
    }

    /// Whether this fragment can match anything at all (false when a pattern
    /// tag does not occur in the document).
    pub fn is_satisfiable(&self) -> bool {
        !self
            .tree
            .members
            .iter()
            .any(|m| self.unmatchable[m.index()])
    }

    /// The resolved tag of the fragment root (`None` = wildcard).
    pub fn root_tag(&self) -> Option<TagId> {
        self.tag_of[self.tree.root.index()]
    }

    /// Whether storage failures must be masked as inaccessibility. Secure
    /// evaluation (ε-NoK) may never answer with data it could not verify, so
    /// a corrupt or unreadable block simply hides its nodes — the answer can
    /// only shrink, never leak. Unsecured evaluation has nothing to protect
    /// and reports the error instead.
    #[inline]
    fn fail_closed(&self) -> bool {
        self.ctx.access.is_some()
    }

    /// Loads a node record and its piggy-backed code, applying the
    /// fail-closed policy: in secure mode a storage error yields `Ok(None)`
    /// ("treat as inaccessible") and bumps `blocks_failed_closed`. Deadline
    /// expiry and breaker refusal are availability outcomes, not data
    /// faults, and always propagate. The context's deadline is re-checked
    /// here every [`DEADLINE_CHECK_MASK`]` + 1` node visits.
    fn load_node(&mut self, pos: u64) -> Result<Option<(NodeRec, u32)>, StorageError> {
        if self.stats.nodes_visited & DEADLINE_CHECK_MASK == 0 {
            self.ctx.deadline.check()?;
        }
        match self.ctx.store.node_and_code(pos) {
            Ok(nc) => Ok(Some(nc)),
            Err(e) if self.fail_closed() && !is_availability(&e) => {
                self.stats.blocks_failed_closed += 1;
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// FOLLOWING-SIBLING with the fail-closed policy: in secure mode a
    /// storage error truncates the sibling chain instead of aborting
    /// (availability outcomes excepted — see [`load_node`](Self::load_node)).
    fn next_sibling(&mut self, pos: u64, rec: &NodeRec) -> Result<Option<u64>, StorageError> {
        match self.ctx.store.following_sibling_of(pos, rec) {
            Ok(next) => Ok(next),
            Err(e) if self.fail_closed() && !is_availability(&e) => {
                self.stats.blocks_failed_closed += 1;
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Attempts to match the fragment with its root bound to `pos`.
    /// Returns the distinct output bindings (empty = no match). The
    /// candidate's own tag/value/accessibility are (re)checked here.
    pub fn match_root(&mut self, pos: u64) -> Result<Vec<Binding>, StorageError> {
        if !self.is_satisfiable() {
            return Ok(Vec::new());
        }
        // Page-skip fast path (§3.3): decided from the in-memory header.
        if let Some((dol, s)) = self.ctx.access.filter(|_| self.ctx.page_skip) {
            let block = self.ctx.store.block_of_pos(pos);
            let skippable = match &self.ctx.column {
                Some(col) => dol.block_skippable_with(self.ctx.store, block, col),
                None => dol.block_skippable(self.ctx.store, block, s),
            };
            if skippable {
                self.stats.candidates_block_skipped += 1;
                self.ctx.store.pool().note_page_skipped();
                return Ok(Vec::new());
            }
        }
        let Some((rec, code)) = self.load_node(pos)? else {
            return Ok(Vec::new());
        };
        self.stats.nodes_visited += 1;
        if !self.ctx.code_accessible(code) {
            self.stats.nodes_denied += 1;
            return Ok(Vec::new());
        }
        if !self.node_matches(self.tree.root, pos, &rec)? {
            return Ok(Vec::new());
        }
        self.enum_node(self.tree.root, pos, &rec)
    }

    /// Tag and value test of `pnode` against the data node at `pos`.
    fn node_matches(
        &mut self,
        pnode: PNodeId,
        pos: u64,
        rec: &NodeRec,
    ) -> Result<bool, StorageError> {
        let p = self.pattern.node(pnode);
        if let Some(t) = self.tag_of[pnode.index()] {
            if rec.tag != t {
                return Ok(false);
            }
        } else if p.tag.is_some() {
            return Ok(false); // tag not present in document
        }
        if let Some(v) = &p.value {
            if !rec.has_value {
                return Ok(false);
            }
            let actual = match self.ctx.values.get(pos) {
                Ok(a) => a,
                Err(e) if self.fail_closed() && !is_availability(&e) => {
                    // An unverifiable value cannot witness the predicate.
                    self.stats.blocks_failed_closed += 1;
                    return Ok(false);
                }
                Err(e) => return Err(e),
            };
            match actual {
                Some(actual) if &actual == v => {}
                _ => return Ok(false),
            }
        }
        Ok(true)
    }

    /// Enumerates output bindings for `pnode` matched at `pos` (whose
    /// tag/value/access checks already passed).
    fn enum_node(
        &mut self,
        pnode: PNodeId,
        pos: u64,
        rec: &NodeRec,
    ) -> Result<Vec<Binding>, StorageError> {
        let pchildren: Vec<PNodeId> = self
            .pattern
            .node(pnode)
            .children
            .iter()
            .copied()
            .filter(|&c| self.pattern.node(c).axis == Axis::Child)
            .collect();
        let psiblings: Vec<PNodeId> = self
            .pattern
            .node(pnode)
            .children
            .iter()
            .copied()
            .filter(|&c| self.pattern.node(c).axis == Axis::FollowingSibling)
            .collect();
        let own: Binding = if self.is_output[pnode.index()] {
            vec![(pnode, pos)]
        } else {
            Vec::new()
        };
        if pchildren.is_empty() && psiblings.is_empty() {
            return Ok(vec![own]);
        }
        // Child-axis pattern nodes: scan the data children once
        // (Algorithm 1's repeat loop over FIRST-CHILD/FOLLOWING-SIBLING).
        let first = self.ctx.store.first_child_of(pos, rec);
        let child_results = self.scan_kin(&pchildren, first)?;
        // Following-sibling pattern nodes: the second next-of-kin
        // relationship; scan this node's own following siblings.
        let next = self.next_sibling(pos, rec)?;
        let sib_results = self.scan_kin(&psiblings, next)?;
        let (Some(child_results), Some(sib_results)) = (child_results, sib_results) else {
            return Ok(Vec::new());
        };
        // Cross-product the per-pattern-node binding sets onto `own`.
        let mut acc: Vec<Binding> = vec![own];
        for (&c, results) in pchildren
            .iter()
            .zip(&child_results)
            .chain(psiblings.iter().zip(&sib_results))
        {
            if !self.carries_output[c.index()] {
                continue; // purely existential: contributes nothing
            }
            let mut next = Vec::with_capacity(acc.len() * results.len());
            for base in &acc {
                for add in results {
                    let mut merged = base.clone();
                    merged.extend(add.iter().copied());
                    next.push(merged);
                }
            }
            acc = next;
        }
        for b in &mut acc {
            b.sort_unstable_by_key(|&(p, _)| p);
        }
        acc.sort_unstable();
        acc.dedup();
        Ok(acc)
    }

    /// Matches the pattern nodes `pats` against the data-node chain starting
    /// at `start` and linked by FOLLOWING-SIBLING, with per-node
    /// accessibility checks. Returns `None` if some pattern node found no
    /// witness, else one binding set per pattern node.
    fn scan_kin(
        &mut self,
        pats: &[PNodeId],
        start: Option<u64>,
    ) -> Result<Option<Vec<Vec<Binding>>>, StorageError> {
        let mut results: Vec<Vec<Binding>> = vec![Vec::new(); pats.len()];
        if pats.is_empty() {
            return Ok(Some(results));
        }
        let mut satisfied: Vec<bool> = vec![false; pats.len()];
        let mut u = start;
        while let Some(upos) = u {
            // Fail-closed: an unreadable link truncates the kin chain — the
            // remaining siblings are unreachable, hence hidden.
            let Some((urec, ucode)) = self.load_node(upos)? else {
                break;
            };
            self.stats.nodes_visited += 1;
            if self.ctx.code_accessible(ucode) {
                for (i, &c) in pats.iter().enumerate() {
                    // Existential pattern nodes stop at the first witness.
                    if satisfied[i] && !self.carries_output[c.index()] {
                        continue;
                    }
                    if self.node_matches(c, upos, &urec)? {
                        let bs = self.enum_node(c, upos, &urec)?;
                        if !bs.is_empty() {
                            satisfied[i] = true;
                            results[i].extend(bs);
                        }
                    }
                }
            } else {
                self.stats.nodes_denied += 1;
            }
            // Early exit once everything is satisfied and no further scan
            // can add output bindings.
            if satisfied.iter().all(|&s| s) && pats.iter().all(|&c| !self.carries_output[c.index()])
            {
                break;
            }
            u = self.next_sibling(upos, &urec)?;
        }
        if satisfied.iter().any(|&s| !s) {
            return Ok(None);
        }
        Ok(Some(results))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xpath::parse_query;
    use dol_acl::{AccessibilityMap, FnOracle};
    use dol_storage::{BufferPool, MemDisk, StoreConfig};
    use dol_xml::{parse, Document, NodeId};
    use std::sync::Arc;

    struct Fixture {
        store: StructStore,
        values: ValueStore,
        doc: Document,
        dol: EmbeddedDol,
    }

    fn fixture(xml: &str, map: Option<&AccessibilityMap>, max_rec: usize) -> Fixture {
        let doc = parse(xml).unwrap();
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 64));
        let cfg = StoreConfig {
            max_records_per_block: max_rec,
        };
        let all = FnOracle::new(1, |_, _| true);
        let (store, dol) = match map {
            Some(m) => EmbeddedDol::build(pool.clone(), cfg, &doc, m).unwrap(),
            None => EmbeddedDol::build(pool.clone(), cfg, &doc, &all).unwrap(),
        };
        let mut values = ValueStore::new(pool);
        for id in doc.preorder() {
            if let Some(v) = &doc.node(id).value {
                values.put(u64::from(id.0), v).unwrap();
            }
        }
        Fixture {
            store,
            values,
            doc,
            dol,
        }
    }

    fn run(
        f: &Fixture,
        query: &str,
        secure: Option<SubjectId>,
        candidates: &[u64],
    ) -> Vec<Vec<(u32, u64)>> {
        let plan = QueryPlan::new(parse_query(query).unwrap());
        let ctx = MatchContext::new(
            &f.store,
            &f.values,
            f.doc.tags(),
            secure.map(|s| (&f.dol, s)),
            true,
        );
        let mut m = FragmentMatcher::new(&ctx, &plan, 0);
        let mut out = Vec::new();
        for &c in candidates {
            for b in m.match_root(c).unwrap() {
                out.push(b.into_iter().map(|(p, d)| (p.0, d)).collect());
            }
        }
        out
    }

    const FIG2: &str = "<a><b/><c/><d/><e><f/><g/><h><i/><j/><k/><l/></h></e></a>";

    #[test]
    fn figure_2_fragment_matches() {
        // NoK fragment a[b][c] matches at the root.
        let f = fixture(FIG2, None, 300);
        let res = run(&f, "/a[b][c]", None, &[0]);
        assert_eq!(res, vec![vec![(0, 0)]]);
        // h[j][k]/l: candidate h at position 7.
        let res = run(&f, "//h[j][k]/l", None, &[7]);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0], vec![(3, 11)]); // l is pattern node 3, data 11
    }

    #[test]
    fn missing_branch_fails() {
        let f = fixture(FIG2, None, 300);
        assert!(run(&f, "/a[b][zz]", None, &[0]).is_empty());
        assert!(run(&f, "//h[j][k]/m", None, &[7]).is_empty());
    }

    #[test]
    fn multiple_bindings_enumerated() {
        let f = fixture("<r><x><n/></x><x><n/><n/></x></r>", None, 300);
        // //x/n with x candidates 1 and 3: bindings n=2, n=4, n=5.
        let res = run(&f, "//x/n", None, &[1, 3]);
        let mut nodes: Vec<u64> = res.iter().map(|b| b[0].1).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![2, 4, 5]);
    }

    #[test]
    fn value_predicates_checked() {
        let f = fixture(
            "<r><item><name>gold</name></item><item><name>salt</name></item></r>",
            None,
            300,
        );
        let res = run(&f, "//item[name=\"gold\"]", None, &[1, 3]);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0][0].1, 1);
    }

    #[test]
    fn wildcard_steps() {
        let f = fixture(FIG2, None, 300);
        let res = run(&f, "/a/*", None, &[0]);
        assert_eq!(res.len(), 4); // b, c, d, e
    }

    #[test]
    fn secure_matching_prunes_denied_nodes() {
        let doc = parse(FIG2).unwrap();
        let mut map = AccessibilityMap::new(1, doc.len());
        for p in 0..doc.len() as u32 {
            map.set(SubjectId(0), NodeId(p), true);
        }
        // Deny j (position 9): h[j][k]/l must fail for this subject.
        map.set(SubjectId(0), NodeId(9), false);
        let f = fixture(FIG2, Some(&map), 300);
        assert!(run(&f, "//h[j][k]/l", Some(SubjectId(0)), &[7]).is_empty());
        // But h[k]/l still succeeds (j not referenced).
        assert_eq!(run(&f, "//h[k]/l", Some(SubjectId(0)), &[7]).len(), 1);
        // Unsecured evaluation is unaffected.
        assert_eq!(run(&f, "//h[j][k]/l", None, &[7]).len(), 1);
    }

    #[test]
    fn denied_candidate_root_fails_fast() {
        let doc = parse(FIG2).unwrap();
        let mut map = AccessibilityMap::new(1, doc.len());
        map.set(SubjectId(0), NodeId(0), true); // only the root accessible
        let f = fixture(FIG2, Some(&map), 300);
        assert!(run(&f, "//h", Some(SubjectId(0)), &[7]).is_empty());
        assert_eq!(run(&f, "/a", Some(SubjectId(0)), &[0]).len(), 1);
    }

    #[test]
    fn block_skip_counts() {
        let doc = parse(FIG2).unwrap();
        // Deny everything: with tiny blocks all candidate lookups should be
        // rejected from the in-memory headers.
        let map = AccessibilityMap::new(1, doc.len());
        let f = fixture(FIG2, Some(&map), 2);
        let plan = QueryPlan::new(parse_query("//h").unwrap());
        let ctx = MatchContext::new(
            &f.store,
            &f.values,
            f.doc.tags(),
            Some((&f.dol, SubjectId(0))),
            true,
        );
        let mut m = FragmentMatcher::new(&ctx, &plan, 0);
        f.store.pool().reset_stats();
        assert!(m.match_root(7).unwrap().is_empty());
        assert_eq!(m.stats.candidates_block_skipped, 1);
        assert_eq!(f.store.pool().stats().logical_reads, 0, "no page touched");
        assert_eq!(f.store.pool().stats().pages_skipped, 1, "skip counted");
    }

    #[test]
    fn expired_deadline_is_never_masked_by_fail_closed() {
        let doc = parse(FIG2).unwrap();
        let mut map = AccessibilityMap::new(1, doc.len());
        for p in 0..doc.len() as u32 {
            map.set(SubjectId(0), NodeId(p), true);
        }
        let f = fixture(FIG2, Some(&map), 300);
        let plan = QueryPlan::new(parse_query("//h[j][k]/l").unwrap());
        let mut ctx = MatchContext::new(
            &f.store,
            &f.values,
            f.doc.tags(),
            Some((&f.dol, SubjectId(0))),
            true,
        );
        ctx.deadline = Deadline::after(std::time::Duration::ZERO);
        let mut m = FragmentMatcher::new(&ctx, &plan, 0);
        // Secure mode would normally mask storage errors; the deadline must
        // abort the match instead of shrinking the answer.
        assert!(matches!(
            m.match_root(7),
            Err(StorageError::DeadlineExceeded)
        ));
        assert_eq!(m.stats.blocks_failed_closed, 0, "not a data fault");

        // Cancellation through a token behaves identically.
        let mut ctx2 = MatchContext::new(
            &f.store,
            &f.values,
            f.doc.tags(),
            Some((&f.dol, SubjectId(0))),
            true,
        );
        ctx2.deadline = Deadline::never();
        ctx2.deadline.token().cancel();
        let mut m2 = FragmentMatcher::new(&ctx2, &plan, 0);
        assert!(matches!(
            m2.match_root(7),
            Err(StorageError::DeadlineExceeded)
        ));
    }

    #[test]
    fn unmatchable_tag_short_circuits() {
        let f = fixture(FIG2, None, 300);
        let res = run(&f, "//nosuchtag", None, &[0]);
        assert!(res.is_empty());
    }
}
