//! Structural joins: Stack-Tree-Desc and secure subtree visibility.
//!
//! After NoK fragments are matched, ancestor–descendant edges between them
//! are evaluated with the Stack-Tree-Desc (STD) algorithm of Al-Khalifa et
//! al. (ICDE 2002): both input lists are sorted in document order, a stack
//! maintains the current nesting of ancestor intervals, and each
//! (ancestor, descendant) pair is emitted exactly once in output-sensitive
//! time.
//!
//! For the binding-level semantics (Cho et al.) no accessibility work is
//! needed here: "since the nodes in the NoK subtrees are already checked for
//! accessibility, the structural-join algorithm does not need to check
//! accessibility any more" (Theorem 1).
//!
//! For the stricter Gabillon–Bruno semantics (§4.2) a result node is only
//! usable if **every ancestor** is accessible — a subtree rooted at an
//! inaccessible node can not provide answers even if it contains accessible
//! nodes. [`VisibilityChecker`] decides that predicate for a document-order
//! stream of candidates with a shared path stack, so each path node is
//! inspected once per query (the ε-STD pruning of [18]).

use dol_acl::SubjectId;
use dol_core::{EmbeddedDol, SubjectColumn};
use dol_storage::disk::StorageError;
use dol_storage::StructStore;
use std::sync::Arc;

/// Joins sorted ancestor intervals with sorted descendant positions.
///
/// `anc[i]` is the half-open document-position interval `[start, end)` of a
/// candidate ancestor's subtree (tree intervals: any two are nested or
/// disjoint). `desc` is ascending. Returns `(anc_index, desc_index)` pairs
/// for every proper ancestor–descendant relationship.
pub fn stack_tree_desc(anc: &[(u64, u64)], desc: &[u64]) -> Vec<(usize, usize)> {
    debug_assert!(anc.windows(2).all(|w| w[0].0 <= w[1].0));
    debug_assert!(desc.windows(2).all(|w| w[0] <= w[1]));
    let mut out = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    let mut i = 0;
    for (dj, &d) in desc.iter().enumerate() {
        // Push every ancestor interval starting before d (a proper ancestor
        // has start < d), maintaining the nesting invariant.
        while i < anc.len() && anc[i].0 < d {
            while let Some(&top) = stack.last() {
                if anc[top].1 <= anc[i].0 {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push(i);
            i += 1;
        }
        // Drop intervals that end at or before d.
        while let Some(&top) = stack.last() {
            if anc[top].1 <= d {
                stack.pop();
            } else {
                break;
            }
        }
        // Everything left on the stack contains d.
        for &a in &stack {
            out.push((a, dj));
        }
    }
    out
}

/// Decides Gabillon–Bruno subtree visibility — "are this node and all of its
/// ancestors accessible?" — for a non-decreasing stream of document
/// positions, sharing the root-to-node path across consecutive queries.
pub struct VisibilityChecker<'a> {
    store: &'a StructStore,
    /// The subject's accessibility column, decoded (with its
    /// codebook-version revalidation) **once** at construction. A checker
    /// lives inside one evaluation, which operates on a single snapshot, so
    /// the per-candidate version check the shared
    /// [`EmbeddedDol::check_code`] performs is loop-invariant here — hoisted
    /// out of the hot path.
    column: Arc<SubjectColumn>,
    /// Stack of `(start, end, visible, next_child)` for the current root
    /// path; `visible` includes the node itself and all its ancestors, and
    /// `next_child` is where the child scan resumes so shared prefixes and
    /// already-passed siblings are never re-read.
    stack: Vec<(u64, u64, bool, u64)>,
    /// Path nodes inspected (for the I/O argument in the experiments).
    pub nodes_inspected: u64,
}

impl<'a> VisibilityChecker<'a> {
    /// Creates a checker for `subject`.
    pub fn new(store: &'a StructStore, dol: &'a EmbeddedDol, subject: SubjectId) -> Self {
        Self {
            store,
            column: dol.column(subject),
            stack: Vec::new(),
            nodes_inspected: 0,
        }
    }

    /// Whether the node at `pos` and all of its ancestors are accessible.
    ///
    /// Positions must be queried in non-decreasing order.
    pub fn check(&mut self, pos: u64) -> Result<bool, StorageError> {
        debug_assert!(pos < self.store.total_nodes());
        // Pop path entries whose subtree no longer contains pos.
        while let Some(&(_, end, _, _)) = self.stack.last() {
            if end <= pos {
                self.stack.pop();
            } else {
                break;
            }
        }
        if self.stack.is_empty() {
            let (rec, code) = self.store.node_and_code(0)?;
            self.nodes_inspected += 1;
            let visible = self.column.check_code(code);
            self.stack.push((0, rec.size as u64, visible, 1));
        }
        // Descend from the deepest retained ancestor to pos.
        loop {
            let &(start, end, visible, next_child) = self.stack.last().expect("root pushed above");
            debug_assert!(start <= pos && pos < end);
            if start == pos {
                return Ok(visible);
            }
            // An invisible ancestor hides the whole subtree: no need to read
            // further path nodes (the ε-STD aggressive prune).
            if !visible {
                return Ok(false);
            }
            // Find the child of `start` whose subtree contains pos, resuming
            // from the last scan position (queries are non-decreasing).
            let mut child = next_child.max(start + 1);
            loop {
                let (rec, code) = self.store.node_and_code(child)?;
                self.nodes_inspected += 1;
                let cend = child + rec.size as u64;
                if pos < cend {
                    // The parent resumes after this child once it is popped.
                    self.stack.last_mut().expect("root pushed above").3 = cend;
                    let cvis = visible && self.column.check_code(code);
                    self.stack.push((child, cend, cvis, child + 1));
                    break;
                }
                self.stack.last_mut().expect("root pushed above").3 = cend;
                child = cend;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dol_acl::{AccessibilityMap, SubjectId};
    use dol_storage::{BufferPool, MemDisk, StoreConfig};
    use dol_xml::{parse, Document, NodeId};
    use std::sync::Arc;

    #[test]
    fn std_join_basic() {
        // Intervals: a=[0,10), b=[1,4), c=[5,9); descendants 2, 3, 6, 9.
        let anc = vec![(0, 10), (1, 4), (5, 9)];
        let desc = vec![2, 3, 6, 9];
        let mut pairs = stack_tree_desc(&anc, &desc);
        pairs.sort_unstable();
        assert_eq!(
            pairs,
            vec![(0, 0), (0, 1), (0, 2), (0, 3), (1, 0), (1, 1), (2, 2)]
        );
    }

    #[test]
    fn std_join_excludes_self() {
        // A node is not its own proper ancestor: interval [3,6) vs desc 3.
        let pairs = stack_tree_desc(&[(3, 6)], &[3]);
        assert!(pairs.is_empty());
        let pairs = stack_tree_desc(&[(3, 6)], &[4]);
        assert_eq!(pairs, vec![(0, 0)]);
    }

    #[test]
    fn std_join_matches_naive_on_random_tree() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        // Random nested intervals from a random tree shape.
        let doc = {
            let mut b = Document::builder();
            b.open("r");
            let mut open = 1;
            for _ in 0..200 {
                if rng.gen_bool(0.5) && open < 12 {
                    b.open("x");
                    open += 1;
                } else if open > 1 {
                    b.close();
                    open -= 1;
                } else {
                    b.leaf("y", None);
                }
            }
            while open > 0 {
                b.close();
                open -= 1;
            }
            b.finish().unwrap()
        };
        let anc: Vec<(u64, u64)> = doc
            .preorder()
            .filter(|_| rng.gen_bool(0.3))
            .map(|n| {
                let r = doc.subtree_range(n);
                (u64::from(r.start), u64::from(r.end))
            })
            .collect();
        let desc: Vec<u64> = doc
            .preorder()
            .filter(|_| rng.gen_bool(0.3))
            .map(|n| u64::from(n.0))
            .collect();
        let mut got = stack_tree_desc(&anc, &desc);
        got.sort_unstable();
        let mut expect = Vec::new();
        for (i, &(s, e)) in anc.iter().enumerate() {
            for (j, &d) in desc.iter().enumerate() {
                if s < d && d < e {
                    expect.push((i, j));
                }
            }
        }
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn visibility_checker_matches_ground_truth() {
        let doc = parse("<a><b><c/><d/></b><e><f><g/></f><h/></e></a>").unwrap();
        let mut map = AccessibilityMap::new(1, doc.len());
        // Accessible: a, b, d, f, g, h — e is NOT accessible, hiding f, g, h.
        for p in [0u32, 1, 3, 5, 6, 7] {
            map.set(SubjectId(0), NodeId(p), true);
        }
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 64));
        let (store, dol) = EmbeddedDol::build(
            pool,
            StoreConfig {
                max_records_per_block: 3,
            },
            &doc,
            &map,
        )
        .unwrap();
        let mut vc = VisibilityChecker::new(&store, &dol, SubjectId(0));
        let expect = |p: u32| -> bool {
            let id = NodeId(p);
            map.accessible(SubjectId(0), id)
                && doc.ancestors(id).all(|a| map.accessible(SubjectId(0), a))
        };
        for p in 0..doc.len() as u64 {
            assert_eq!(vc.check(p).unwrap(), expect(p as u32), "pos {p}");
        }
        // g and h are hidden despite being accessible themselves.
        assert!(map.accessible(SubjectId(0), NodeId(6)));
        let mut vc = VisibilityChecker::new(&store, &dol, SubjectId(0));
        assert!(!vc.check(6).unwrap());
    }

    #[test]
    fn visibility_checker_shares_paths() {
        let doc = parse("<a><b><c/><d/><e/><f/></b></a>").unwrap();
        let map = {
            let mut m = AccessibilityMap::new(1, doc.len());
            for p in 0..doc.len() as u32 {
                m.set(SubjectId(0), NodeId(p), true);
            }
            m
        };
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 64));
        let (store, dol) = EmbeddedDol::build(pool, StoreConfig::default(), &doc, &map).unwrap();
        let mut vc = VisibilityChecker::new(&store, &dol, SubjectId(0));
        for p in 2..6 {
            assert!(vc.check(p).unwrap());
        }
        // Path sharing: root + b read once, then one read per sibling.
        assert!(
            vc.nodes_inspected <= 2 + 4,
            "inspected {}",
            vc.nodes_inspected
        );
    }
}
