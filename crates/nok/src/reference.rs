//! A naive reference evaluator over the in-memory [`Document`].
//!
//! This module exists to *check* the engine, not to be fast: it evaluates a
//! twig pattern with the textbook bottom-up satisfiability / top-down
//! reachability set computation, directly against a [`Document`] and an
//! [`AccessibilityMap`], for all three security semantics. Property tests
//! compare [`crate::QueryEngine`] against it on random documents, patterns
//! and labelings.

use crate::pattern::{Axis, PNodeId, PatternTree};
use dol_acl::{AccessibilityMap, SubjectId};
use dol_xml::{Document, NodeId};

/// Security semantics for [`naive_eval`].
#[derive(Clone, Copy)]
pub enum RefSecurity<'a> {
    /// Unsecured.
    None,
    /// Cho et al.: every bound node accessible.
    Binding(&'a AccessibilityMap, SubjectId),
    /// Gabillon–Bruno: every bound node and all its ancestors accessible.
    Subtree(&'a AccessibilityMap, SubjectId),
}

/// Evaluates `pattern` over `doc`, returning the distinct document
/// positions bound to the returning node, ascending.
pub fn naive_eval(doc: &Document, pattern: &PatternTree, sec: RefSecurity<'_>) -> Vec<u64> {
    let ok = |d: NodeId| -> bool {
        match sec {
            RefSecurity::None => true,
            RefSecurity::Binding(m, s) => m.accessible(s, d),
            RefSecurity::Subtree(m, s) => {
                m.accessible(s, d) && doc.ancestors(d).all(|a| m.accessible(s, a))
            }
        }
    };
    let node_ok = |p: PNodeId, d: NodeId| -> bool {
        let pn = pattern.node(p);
        if let Some(tag) = &pn.tag {
            if doc.name_of(d) != tag {
                return false;
            }
        }
        if let Some(v) = &pn.value {
            if doc.node(d).value.as_deref() != Some(v.as_str()) {
                return false;
            }
        }
        ok(d)
    };
    let n = doc.len();
    let pn = pattern.len();
    // Bottom-up: sat[p][d] = d can root a match of p's pattern subtree.
    // Pattern ids are in creation order (parents before children), so a
    // reverse scan is bottom-up.
    let mut sat: Vec<Vec<bool>> = vec![vec![false; n]; pn];
    for p in (0..pn as u32).rev().map(PNodeId) {
        for d in doc.preorder() {
            if !node_ok(p, d) {
                continue;
            }
            let all_children =
                pattern
                    .node(p)
                    .children
                    .iter()
                    .all(|&c| match pattern.node(c).axis {
                        Axis::Child => doc.children(d).any(|x| sat[c.index()][x.index()]),
                        Axis::Descendant => doc.descendants(d).any(|x| sat[c.index()][x.index()]),
                        Axis::FollowingSibling => {
                            following_siblings(doc, d).any(|x| sat[c.index()][x.index()])
                        }
                    });
            if all_children {
                sat[p.index()][d.index()] = true;
            }
        }
    }
    // Top-down: reach[p][d] = d participates in some full binding at p.
    let mut reach: Vec<Vec<bool>> = vec![vec![false; n]; pn];
    for d in doc.preorder() {
        let root_ok = !pattern.anchored() || d == doc.root();
        if root_ok && sat[0][d.index()] {
            reach[0][d.index()] = true;
        }
    }
    for p in (0..pn as u32).map(PNodeId) {
        for &c in &pattern.node(p).children {
            for d in doc.preorder() {
                if !reach[p.index()][d.index()] {
                    continue;
                }
                match pattern.node(c).axis {
                    Axis::Child => {
                        for x in doc.children(d) {
                            if sat[c.index()][x.index()] {
                                reach[c.index()][x.index()] = true;
                            }
                        }
                    }
                    Axis::Descendant => {
                        for x in doc.descendants(d) {
                            if sat[c.index()][x.index()] {
                                reach[c.index()][x.index()] = true;
                            }
                        }
                    }
                    Axis::FollowingSibling => {
                        for x in following_siblings(doc, d) {
                            if sat[c.index()][x.index()] {
                                reach[c.index()][x.index()] = true;
                            }
                        }
                    }
                }
            }
        }
    }
    let r = pattern.returning();
    doc.preorder()
        .filter(|d| reach[r.index()][d.index()])
        .map(|d| u64::from(d.0))
        .collect()
}

/// Iterates over the following siblings of `d`.
fn following_siblings(doc: &Document, d: NodeId) -> impl Iterator<Item = NodeId> + '_ {
    std::iter::successors(doc.next_sibling(d), move |&x| doc.next_sibling(x))
}

/// Convenience: parse-then-evaluate.
pub fn naive_eval_str(doc: &Document, query: &str, sec: RefSecurity<'_>) -> Vec<u64> {
    let pattern = crate::xpath::parse_query(query).expect("query parses");
    naive_eval(doc, &pattern, sec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dol_xml::parse;

    #[test]
    fn matches_hand_computed_results() {
        let doc = parse("<a><b><c/></b><b/><d><b><c/></b></d></a>").unwrap();
        assert_eq!(
            naive_eval_str(&doc, "//b[c]", RefSecurity::None),
            vec![1, 5]
        );
        assert_eq!(naive_eval_str(&doc, "/a/b", RefSecurity::None), vec![1, 3]);
        assert_eq!(naive_eval_str(&doc, "//d//c", RefSecurity::None), vec![6]);
        assert_eq!(naive_eval_str(&doc, "//a/*/c", RefSecurity::None), vec![2]);
    }

    #[test]
    fn security_filters() {
        let doc = parse("<a><b><c/></b></a>").unwrap();
        let mut m = AccessibilityMap::new(1, doc.len());
        m.set(SubjectId(0), NodeId(0), true);
        m.set(SubjectId(0), NodeId(2), true); // c accessible, b not
        assert_eq!(
            naive_eval_str(&doc, "//c", RefSecurity::Binding(&m, SubjectId(0))),
            vec![2]
        );
        assert!(naive_eval_str(&doc, "//c", RefSecurity::Subtree(&m, SubjectId(0))).is_empty());
        assert!(naive_eval_str(&doc, "//b/c", RefSecurity::Binding(&m, SubjectId(0))).is_empty());
    }
}
