//! Parser for the twig-query subset of XPath used by the paper.
//!
//! Grammar (whitespace-free; the paper's Table 1 queries are all expressible):
//!
//! ```text
//! Query     := Path
//! Path      := ("/" | "//") Step { ("/" | "//" | "~") Step }
//! Step      := NameTest { Predicate }
//! NameTest  := Name | "*" | "@" Name | "#text"
//! Predicate := "[" RelPath "]"                  existence branch
//!            | "[" RelPath "=" String "]"       value-constrained branch
//!            | "[" "=" String "]"               value constraint on the step
//! RelPath   := [ "/" | "//" ] Step { ("/" | "//" | "~") Step }   (default "/")
//! String    := '"' chars '"'
//! ```
//!
//! The returning node is the final step of the main path. A leading `/`
//! anchors the first step at the document root; `//` matches anywhere.

use crate::pattern::{Axis, PNodeId, PatternTree};

/// A query-string parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "query parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for QueryParseError {}

/// Parses a twig query string into a [`PatternTree`].
pub fn parse_query(input: &str) -> Result<PatternTree, QueryParseError> {
    let mut p = Parser {
        bytes: input.trim().as_bytes(),
        pos: 0,
    };
    let tree = p.parse_path()?;
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input"));
    }
    Ok(tree)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> QueryParseError {
        QueryParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Parses a leading axis: `//` → Descendant, `/` → Child,
    /// `~` → FollowingSibling.
    fn parse_axis(&mut self) -> Option<Axis> {
        if self.eat(b'~') {
            return Some(Axis::FollowingSibling);
        }
        if !self.eat(b'/') {
            return None;
        }
        Some(if self.eat(b'/') {
            Axis::Descendant
        } else {
            Axis::Child
        })
    }

    fn parse_name(&mut self) -> Result<Option<String>, QueryParseError> {
        if self.eat(b'*') {
            return Ok(None);
        }
        let start = self.pos;
        while let Some(b) = self.peek() {
            let first = self.pos == start;
            let ok = b.is_ascii_alphanumeric()
                || matches!(b, b'_' | b'-' | b'.' | b':')
                || (first && (b == b'@' || b == b'#'))
                || b >= 0x80;
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name test"));
        }
        Ok(Some(
            String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned(),
        ))
    }

    fn parse_string(&mut self) -> Result<String, QueryParseError> {
        if !self.eat(b'"') {
            return Err(self.err("expected a double-quoted string"));
        }
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'"' {
                let s = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(self.err("unterminated string"))
    }

    fn parse_path(&mut self) -> Result<PatternTree, QueryParseError> {
        let axis = self
            .parse_axis()
            .ok_or_else(|| self.err("query must start with `/` or `//`"))?;
        let name = self.parse_name()?;
        let mut tree = PatternTree::new(name.as_deref(), axis == Axis::Child);
        let mut cur = tree.root();
        self.parse_predicates(&mut tree, cur)?;
        while let Some(axis) = self.parse_axis() {
            let name = self.parse_name()?;
            cur = tree.add_child(cur, axis, name.as_deref());
            self.parse_predicates(&mut tree, cur)?;
        }
        tree.set_returning(cur);
        Ok(tree)
    }

    fn parse_predicates(
        &mut self,
        tree: &mut PatternTree,
        node: PNodeId,
    ) -> Result<(), QueryParseError> {
        while self.eat(b'[') {
            if self.eat(b'=') {
                // `[="v"]`: value constraint on the step itself.
                let v = self.parse_string()?;
                tree.set_value(node, &v);
            } else {
                let axis = self.parse_axis().unwrap_or(Axis::Child);
                let name = self.parse_name()?;
                let mut cur = tree.add_child(node, axis, name.as_deref());
                self.parse_predicates(tree, cur)?;
                while let Some(axis) = self.parse_axis() {
                    let name = self.parse_name()?;
                    cur = tree.add_child(cur, axis, name.as_deref());
                    self.parse_predicates(tree, cur)?;
                }
                if self.eat(b'=') {
                    let v = self.parse_string()?;
                    tree.set_value(cur, &v);
                }
            }
            if !self.eat(b']') {
                return Err(self.err("expected `]`"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Axis;

    #[test]
    fn paper_query_q1() {
        let t = parse_query("/site/regions/africa/item[location][name][quantity]").unwrap();
        assert!(t.anchored());
        assert_eq!(t.len(), 7);
        let item = t.returning();
        assert_eq!(t.node(item).tag.as_deref(), Some("item"));
        assert_eq!(t.node(item).children.len(), 3);
    }

    #[test]
    fn paper_query_q2_mid_branch() {
        let t = parse_query("/site/categories/category[name]/description/text/bold").unwrap();
        assert_eq!(t.node(t.returning()).tag.as_deref(), Some("bold"));
        // `category` has children `name` (predicate) and `description`.
        let cat = t
            .iter()
            .find(|&n| t.node(n).tag.as_deref() == Some("category"))
            .unwrap();
        assert_eq!(t.node(cat).children.len(), 2);
    }

    #[test]
    fn paper_query_q3_nested_predicate_path() {
        let t = parse_query("/site/categories/category/name[description/text/bold]").unwrap();
        assert_eq!(t.node(t.returning()).tag.as_deref(), Some("name"));
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn paper_queries_q4_q5_q6_descendant() {
        for (q, anc, desc) in [
            ("//parlist//parlist", "parlist", "parlist"),
            ("//listitem//keyword", "listitem", "keyword"),
            ("//item//emph", "item", "emph"),
        ] {
            let t = parse_query(q).unwrap();
            assert!(!t.anchored(), "{q}");
            assert_eq!(t.len(), 2);
            assert_eq!(t.node(t.root()).tag.as_deref(), Some(anc));
            let r = t.returning();
            assert_eq!(t.node(r).tag.as_deref(), Some(desc));
            assert_eq!(t.node(r).axis, Axis::Descendant);
        }
    }

    #[test]
    fn value_predicates() {
        let t = parse_query("/site//item[name=\"gold\"]").unwrap();
        let name = t
            .iter()
            .find(|&n| t.node(n).tag.as_deref() == Some("name"))
            .unwrap();
        assert_eq!(t.node(name).value.as_deref(), Some("gold"));

        let t = parse_query("//keyword[=\"rare\"]").unwrap();
        assert_eq!(t.node(t.returning()).value.as_deref(), Some("rare"));
    }

    #[test]
    fn attribute_and_text_steps() {
        let t = parse_query("//item[@featured=\"yes\"]/name").unwrap();
        let at = t
            .iter()
            .find(|&n| t.node(n).tag.as_deref() == Some("@featured"))
            .unwrap();
        assert_eq!(t.node(at).value.as_deref(), Some("yes"));
        let t = parse_query("//bold/#text").unwrap();
        assert_eq!(t.node(t.returning()).tag.as_deref(), Some("#text"));
    }

    #[test]
    fn following_sibling_axis() {
        // An ordered pattern: a bold immediately... er, somewhere after a
        // keyword among the same element's children.
        let t = parse_query("//text/keyword~bold").unwrap();
        assert_eq!(t.len(), 3);
        let bold = t.returning();
        assert_eq!(t.node(bold).tag.as_deref(), Some("bold"));
        assert_eq!(t.node(bold).axis, Axis::FollowingSibling);
        let kw = t.node(bold).parent.unwrap();
        assert_eq!(t.node(kw).tag.as_deref(), Some("keyword"));
        // Sibling steps inside predicates.
        let t = parse_query("//item[name~quantity]").unwrap();
        assert_eq!(t.len(), 3);
        // Canonical rendering round-trips.
        let t2 = parse_query(&t.to_query_string()).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn wildcards_and_deep_predicates() {
        let t = parse_query("/a/*[b[c]/d]//e").unwrap();
        assert_eq!(t.len(), 6);
        let star = t.node(t.root()).children[0];
        assert_eq!(t.node(star).tag, None);
    }

    #[test]
    fn roundtrip_via_canonical_form() {
        for q in [
            "/site/regions/africa/item[/location][/name][/quantity]",
            "//parlist//parlist",
            "/a/b[/c]//d",
        ] {
            let t = parse_query(q).unwrap();
            let t2 = parse_query(&t.to_query_string()).unwrap();
            assert_eq!(t, t2, "{q}");
        }
    }

    #[test]
    fn errors() {
        assert!(parse_query("site").is_err());
        assert!(parse_query("/a[").is_err());
        assert!(parse_query("/a[b").is_err());
        assert!(parse_query("/a]").is_err());
        assert!(parse_query("/a[name=\"x]").is_err());
        assert!(parse_query("/").is_err());
        assert!(parse_query("").is_err());
    }
}
