//! Query-serving caches: a small generic LRU and the compiled-plan cache.
//!
//! The serve path re-issues a handful of hot query strings thousands of
//! times. Re-lexing, re-planning, and re-lowering each is pure waste:
//! [`PlanCache`] interns `fnv1a(query) → `[`PlanEntry`]` {plan, compiled}` so
//! a warm query costs one integer-keyed lookup (the stored query string is
//! verified on hit, so hash collisions are harmless) and the query→automaton
//! lowering ([`CompiledPlan`]) happens once per tag space. [`LruCache`] is
//! the shared mechanism — it also backs the secure result cache at the
//! database layer, keyed by `(fnv1a(query), security, epoch, codebook
//! version)`.
//!
//! Both are internally synchronized (one mutex around a tick-stamped hash
//! map) and count hits/misses with relaxed atomics so serving threads can
//! share one instance behind an `Arc` and the harness can report hit rates
//! without extra locking. Eviction is exact LRU by access tick; the O(n)
//! victim scan is irrelevant at the intended capacities (tens to a few
//! thousand entries).

use crate::compiled::CompiledPlan;
use crate::plan::QueryPlan;
use crate::xpath::{parse_query, QueryParseError};
use dol_xml::TagInterner;
use parking_lot::Mutex;
use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// FNV-1a over a query string — the shared cache-key hash. Callers key the
/// plan and result caches by this `u64` instead of cloning the full `String`
/// per lookup; the (astronomically unlikely) collision case is handled by
/// verifying the stored query string on every hit.
#[inline]
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

struct LruInner<K, V> {
    map: HashMap<K, (V, u64)>,
    tick: u64,
}

/// A thread-safe fixed-capacity LRU map with hit/miss accounting.
///
/// Values are returned by clone; intended use is `V = Arc<T>` (or another
/// cheaply clonable handle) so a hit is one lookup plus one refcount bump.
pub struct LruCache<K, V> {
    inner: Mutex<LruInner<K, V>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU cache needs at least one slot");
        Self {
            inner: Mutex::new(LruInner {
                map: HashMap::with_capacity(capacity),
                tick: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks `key` up, refreshing its recency. Counts one hit or miss.
    pub fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some((v, used)) => {
                *used = tick;
                let v = v.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or replaces) `key`, evicting the least recently used entry
    /// when the cache is full.
    pub fn insert(&self, key: K, value: V) {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            // One key clone per eviction (the borrow must end before the
            // map is mutated), never per hit.
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
            }
        }
        inner.map.insert(key, (value, tick));
    }

    /// Drops every entry (the wholesale invalidation path). Hit/miss
    /// counters are preserved — they describe the workload, not the content.
    pub fn clear(&self) {
        self.inner.lock().map.clear();
    }

    /// Drops every entry whose key fails `keep` (the targeted invalidation
    /// path — e.g. evicting result-cache entries keyed on epochs the MVCC
    /// ring no longer retains). Counters are preserved, as in
    /// [`clear`](Self::clear).
    pub fn retain(&self, mut keep: impl FnMut(&K) -> bool) {
        self.inner.lock().map.retain(|k, _| keep(k));
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// One cached query: the parsed plan plus, lazily, its compiled lowering.
///
/// The compiled half is fenced by the tag space it was lowered against
/// ([`CompiledPlan::is_current`]); a stale lowering is replaced in place
/// without re-parsing.
pub struct PlanEntry {
    /// The exact query string this entry was parsed from — verified on every
    /// hash hit to make FNV collisions harmless.
    query: Box<str>,
    /// The parsed, decomposed plan.
    plan: Arc<QueryPlan>,
    /// The lowered automaton, if any lowering has happened yet.
    compiled: Mutex<Option<Arc<CompiledPlan>>>,
}

impl PlanEntry {
    /// The parsed plan.
    pub fn plan(&self) -> &Arc<QueryPlan> {
        &self.plan
    }
}

/// An LRU of parsed (and lazily compiled) query plans keyed by the FNV-1a
/// hash of the query string — lookups never clone or allocate the key.
pub struct PlanCache {
    plans: LruCache<u64, Arc<PlanEntry>>,
    compiles: AtomicU64,
}

impl PlanCache {
    /// Creates a plan cache holding at most `capacity` compiled plans.
    pub fn new(capacity: usize) -> Self {
        Self {
            plans: LruCache::new(capacity),
            compiles: AtomicU64::new(0),
        }
    }

    /// The cache entry for `query`: from the cache if warm (string-verified
    /// against hash collisions), otherwise parsed, planned, and cached.
    /// Parse errors are not cached (they are cheap to rediscover and should
    /// not occupy slots).
    pub fn entry(&self, query: &str) -> Result<Arc<PlanEntry>, QueryParseError> {
        let key = fnv1a(query);
        if let Some(entry) = self.plans.get(&key) {
            if &*entry.query == query {
                return Ok(entry);
            }
            // Colliding key: fall through and overwrite with the newcomer.
        }
        let plan = Arc::new(QueryPlan::new(parse_query(query)?));
        let entry = Arc::new(PlanEntry {
            query: query.into(),
            plan,
            compiled: Mutex::new(None),
        });
        self.plans.insert(key, Arc::clone(&entry));
        Ok(entry)
    }

    /// The parsed plan for `query` (compatibility shim over [`entry`](Self::entry)).
    pub fn get_or_parse(&self, query: &str) -> Result<Arc<QueryPlan>, QueryParseError> {
        Ok(Arc::clone(&self.entry(query)?.plan))
    }

    /// The parsed plan *and* its compiled lowering for `query`, lowering (or
    /// re-lowering) against `tags` only when the cached automaton is missing
    /// or stale for that tag space.
    pub fn get_or_compile(
        &self,
        query: &str,
        tags: &TagInterner,
    ) -> Result<(Arc<QueryPlan>, Arc<CompiledPlan>), QueryParseError> {
        let entry = self.entry(query)?;
        let mut slot = entry.compiled.lock();
        if let Some(c) = slot.as_ref() {
            if c.is_current(tags) {
                return Ok((Arc::clone(&entry.plan), Arc::clone(c)));
            }
        }
        let compiled = Arc::new(CompiledPlan::compile(&entry.plan, tags));
        self.compiles.fetch_add(1, Ordering::Relaxed);
        *slot = Some(Arc::clone(&compiled));
        Ok((Arc::clone(&entry.plan), compiled))
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.plans.hits()
    }

    /// Lookups that had to parse.
    pub fn misses(&self) -> u64 {
        self.plans.misses()
    }

    /// Plan lowerings performed (first compilations plus tag-space
    /// recompilations).
    pub fn compiles(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed)
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache: LruCache<u32, Arc<u32>> = LruCache::new(2);
        cache.insert(1, Arc::new(10));
        cache.insert(2, Arc::new(20));
        assert_eq!(cache.get(&1).as_deref(), Some(&10)); // 1 now most recent
        cache.insert(3, Arc::new(30)); // evicts 2
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&1).as_deref(), Some(&10));
        assert_eq!(cache.get(&3).as_deref(), Some(&30));
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn plan_cache_parses_once() {
        let cache = PlanCache::new(8);
        let a = cache.get_or_parse("//item//emph").unwrap();
        let b = cache.get_or_parse("//item//emph").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert!(cache.get_or_parse("not a { query").is_err());
    }

    #[test]
    fn plan_cache_compiles_once_per_tag_space() {
        let cache = PlanCache::new(8);
        let mut tags = TagInterner::new();
        tags.intern("item");
        tags.intern("emph");
        let (p1, c1) = cache.get_or_compile("//item//emph", &tags).unwrap();
        let (p2, c2) = cache.get_or_compile("//item//emph", &tags).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
        assert!(Arc::ptr_eq(&c1, &c2), "same tag space must reuse");
        assert_eq!(cache.compiles(), 1);
        // Growing the tag space invalidates the lowering but not the plan.
        tags.intern("keyword");
        let (p3, c3) = cache.get_or_compile("//item//emph", &tags).unwrap();
        assert!(Arc::ptr_eq(&p1, &p3), "parse survives tag growth");
        assert!(!Arc::ptr_eq(&c1, &c3), "stale lowering must be replaced");
        assert_eq!(cache.compiles(), 2);
        let (_, c4) = cache.get_or_compile("//item//emph", &tags).unwrap();
        assert!(Arc::ptr_eq(&c3, &c4));
        assert_eq!(cache.compiles(), 2);
    }

    #[test]
    fn fnv1a_is_stable_and_distinguishes() {
        // Pinned FNV-1a test vectors (offset basis / single byte).
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a("//item//emph"), fnv1a("//item//emp"));
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache: LruCache<String, Arc<u32>> = LruCache::new(4);
        cache.insert("a".into(), Arc::new(1));
        assert!(cache.get("a").is_some());
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.get("a").is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }
}
