//! Query-serving caches: a small generic LRU and the compiled-plan cache.
//!
//! The serve path re-issues a handful of hot query strings thousands of
//! times. Re-lexing and re-planning each is pure waste: [`PlanCache`] interns
//! `query string → Arc<QueryPlan>` so a warm query costs one hash lookup.
//! [`LruCache`] is the shared mechanism — it also backs the secure result
//! cache at the database layer, keyed by `(query, security, epoch, codebook
//! version)`.
//!
//! Both are internally synchronized (one mutex around a tick-stamped hash
//! map) and count hits/misses with relaxed atomics so serving threads can
//! share one instance behind an `Arc` and the harness can report hit rates
//! without extra locking. Eviction is exact LRU by access tick; the O(n)
//! victim scan is irrelevant at the intended capacities (tens to a few
//! thousand entries).

use crate::plan::QueryPlan;
use crate::xpath::{parse_query, QueryParseError};
use parking_lot::Mutex;
use std::borrow::Borrow;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct LruInner<K, V> {
    map: HashMap<K, (V, u64)>,
    tick: u64,
}

/// A thread-safe fixed-capacity LRU map with hit/miss accounting.
///
/// Values are returned by clone; intended use is `V = Arc<T>` (or another
/// cheaply clonable handle) so a hit is one lookup plus one refcount bump.
pub struct LruCache<K, V> {
    inner: Mutex<LruInner<K, V>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU cache needs at least one slot");
        Self {
            inner: Mutex::new(LruInner {
                map: HashMap::with_capacity(capacity),
                tick: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks `key` up, refreshing its recency. Counts one hit or miss.
    pub fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some((v, used)) => {
                *used = tick;
                let v = v.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or replaces) `key`, evicting the least recently used entry
    /// when the cache is full.
    pub fn insert(&self, key: K, value: V) {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            // One key clone per eviction (the borrow must end before the
            // map is mutated), never per hit.
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
            }
        }
        inner.map.insert(key, (value, tick));
    }

    /// Drops every entry (the wholesale invalidation path). Hit/miss
    /// counters are preserved — they describe the workload, not the content.
    pub fn clear(&self) {
        self.inner.lock().map.clear();
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// An LRU of compiled query plans keyed by the query string.
pub struct PlanCache {
    plans: LruCache<String, Arc<QueryPlan>>,
}

impl PlanCache {
    /// Creates a plan cache holding at most `capacity` compiled plans.
    pub fn new(capacity: usize) -> Self {
        Self {
            plans: LruCache::new(capacity),
        }
    }

    /// The compiled plan for `query`: from the cache if warm, otherwise
    /// parsed, planned, and cached. Parse errors are not cached (they are
    /// cheap to rediscover and should not occupy slots).
    pub fn get_or_parse(&self, query: &str) -> Result<Arc<QueryPlan>, QueryParseError> {
        if let Some(plan) = self.plans.get(query) {
            return Ok(plan);
        }
        let plan = Arc::new(QueryPlan::new(parse_query(query)?));
        self.plans.insert(query.to_owned(), Arc::clone(&plan));
        Ok(plan)
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.plans.hits()
    }

    /// Lookups that had to parse.
    pub fn misses(&self) -> u64 {
        self.plans.misses()
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache: LruCache<u32, Arc<u32>> = LruCache::new(2);
        cache.insert(1, Arc::new(10));
        cache.insert(2, Arc::new(20));
        assert_eq!(cache.get(&1).as_deref(), Some(&10)); // 1 now most recent
        cache.insert(3, Arc::new(30)); // evicts 2
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&1).as_deref(), Some(&10));
        assert_eq!(cache.get(&3).as_deref(), Some(&30));
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn plan_cache_parses_once() {
        let cache = PlanCache::new(8);
        let a = cache.get_or_parse("//item//emph").unwrap();
        let b = cache.get_or_parse("//item//emph").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert!(cache.get_or_parse("not a { query").is_err());
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache: LruCache<String, Arc<u32>> = LruCache::new(4);
        cache.insert("a".into(), Arc::new(1));
        assert!(cache.get("a").is_some());
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.get("a").is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }
}
