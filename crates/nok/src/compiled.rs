//! Compiled twig execution — query→automaton lowering.
//!
//! [`FragmentMatcher`](crate::matcher::FragmentMatcher) re-derives per-query
//! facts on every candidate: it chases `PatternTree` child vectors through
//! pointer-sized `PNodeId` indirections, re-filters each pattern node's
//! children by axis into fresh `Vec`s on every `enum_node` call, and decides
//! page-skips with a per-candidate binary search plus codebook probe. This
//! module lowers a parsed [`QueryPlan`] **once** into a [`CompiledPlan`] — a
//! flat, cache-friendly automaton:
//!
//! * per pattern node, one [`CNode`] record with the tag **pre-resolved** to a
//!   [`TagId`] (integer compare, no string hashing), the value predicate
//!   pre-boxed, and output/carries-output bits precomputed;
//! * per fragment, a single flat `kin` array holding every node's child-axis
//!   and following-sibling-axis pattern children as two contiguous ranges
//!   (`kin_start..kin_mid..kin_end`), so the matcher's inner loop slices
//!   instead of filtering;
//! * a `tag_space` fence recording the interner length at compile time, so a
//!   cached plan is revalidated in O(1) against any snapshot (the interner is
//!   append-only: equal length ⇒ identical resolution).
//!
//! [`CompiledMatcher`] executes the automaton with semantics **identical** to
//! the interpreted matcher (the differential property test in
//! `tests/proptest_compiled.rs` enforces this), including the fail-closed
//! policy and the deadline check every
//! [`DEADLINE_CHECK_MASK`](crate::matcher)` + 1` node visits. Page-skips are
//! decided from a precomputed word-parallel skip mask
//! ([`dol_core::EmbeddedDol::block_skip_mask`]) instead of a per-candidate
//! codebook probe.
//!
//! For **leaf fragments** (single pattern node — the descendant sides of all
//! `//`-joins, which dominate the Table-1 mix) the matcher additionally
//! offers [`CompiledMatcher::match_leaf_candidates`]: candidates are grouped
//! by block and classified in the *compressed domain* — block header first
//! (skip mask / uniform-code test, zero I/O), then the code runs of the
//! execution's shared [`SnapshotCache`] (one latch per block per query),
//! and — only under a value predicate — one [`StructStore::block_probe`]
//! page scan producing word-packed tag/value masks, so only candidates
//! surviving the word tests ever decode a value. This turns the paper's
//! §3.3 page-skip into a general early-exit inside partially-accessible
//! blocks.

use crate::matcher::{is_availability, Binding, MatchContext, MatchStats, DEADLINE_CHECK_MASK};
use crate::pattern::{Axis, PNodeId};
use crate::plan::QueryPlan;
use dol_core::AccessBitmap;
use dol_storage::disk::StorageError;
use dol_storage::{BlockSnapshot, NodeRec, StructStore};
use dol_xml::{TagId, TagInterner};

/// One pattern node, lowered: everything `node_matches`/`enum_node` need,
/// flat and resolved.
#[derive(Debug, Default, Clone)]
pub struct CNode {
    /// Resolved tag (`None` = wildcard, or unmatchable — see below).
    pub tag: Option<TagId>,
    /// The pattern names a tag that does not exist in the document at all.
    pub unmatchable: bool,
    /// Required character-data value, if any.
    pub value: Option<Box<str>>,
    /// Whether this node's bindings are exported from the fragment.
    pub is_output: bool,
    /// Whether this node's fragment-subtree contains an output.
    pub carries_output: bool,
    /// Start of this node's child-axis pattern children in
    /// [`CompiledFragment::kin`].
    pub kin_start: u32,
    /// End of child-axis / start of following-sibling-axis children.
    pub kin_mid: u32,
    /// End of following-sibling-axis children.
    pub kin_end: u32,
}

/// One NoK fragment, lowered to flat tables.
#[derive(Debug, Clone)]
pub struct CompiledFragment {
    root: PNodeId,
    /// Indexed by `PNodeId` over the *whole* pattern (fragments share the
    /// pattern's id space; non-member slots are inert defaults).
    nodes: Vec<CNode>,
    /// Flat next-of-kin table; each member's `CNode` holds its ranges.
    kin: Vec<PNodeId>,
    satisfiable: bool,
    leaf: bool,
}

impl CompiledFragment {
    /// The fragment's root pattern node.
    #[inline]
    pub fn root(&self) -> PNodeId {
        self.root
    }

    /// The compiled record of pattern node `p`.
    #[inline]
    pub fn node(&self, p: PNodeId) -> &CNode {
        &self.nodes[p.index()]
    }

    /// Resolved tag of the fragment root (`None` = wildcard).
    #[inline]
    pub fn root_tag(&self) -> Option<TagId> {
        self.nodes[self.root.index()].tag
    }

    /// Value predicate on the fragment root, if any.
    #[inline]
    pub fn root_value(&self) -> Option<&str> {
        self.nodes[self.root.index()].value.as_deref()
    }

    /// Whether the fragment is a single pattern node (leaf fast path).
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.leaf
    }

    /// Whether this fragment can match anything at all (false when a member
    /// names a tag absent from the document).
    #[inline]
    pub fn is_satisfiable(&self) -> bool {
        self.satisfiable
    }
}

/// A query lowered against one tag space: one [`CompiledFragment`] per
/// [`QueryPlan`] fragment, in the same order (joins still come from the
/// plan — compilation changes fragment *matching*, not join structure).
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    tag_space: usize,
    frags: Vec<CompiledFragment>,
}

impl CompiledPlan {
    /// Lowers `plan` against `tags`. Pure CPU; no storage access.
    pub fn compile(plan: &QueryPlan, tags: &TagInterner) -> CompiledPlan {
        let pattern = &plan.pattern;
        let n = pattern.len();
        let frags = plan
            .trees
            .iter()
            .map(|tree| {
                let mut nodes: Vec<CNode> = vec![CNode::default(); n];
                for id in pattern.iter() {
                    let pn = pattern.node(id);
                    let c = &mut nodes[id.index()];
                    if let Some(name) = &pn.tag {
                        match tags.get(name) {
                            Some(t) => c.tag = Some(t),
                            None => c.unmatchable = true,
                        }
                    }
                    c.value = pn.value.as_deref().map(Box::from);
                }
                for &o in &tree.outputs {
                    nodes[o.index()].is_output = true;
                    nodes[o.index()].carries_output = true;
                }
                // carries_output via child-edge closure, members-last-first
                // (members are in preorder, so children come after parents).
                for &m in tree.members.iter().rev() {
                    if nodes[m.index()].carries_output {
                        continue;
                    }
                    let any = pattern
                        .node(m)
                        .children
                        .iter()
                        .filter(|&&c| pattern.node(c).axis != Axis::Descendant)
                        .any(|&c| nodes[c.index()].carries_output);
                    if any {
                        nodes[m.index()].carries_output = true;
                    }
                }
                // Flat kin table: child-axis children, then sibling-axis.
                let mut kin: Vec<PNodeId> = Vec::new();
                for &m in &tree.members {
                    let ks = kin.len() as u32;
                    kin.extend(
                        pattern
                            .node(m)
                            .children
                            .iter()
                            .copied()
                            .filter(|&c| pattern.node(c).axis == Axis::Child),
                    );
                    let km = kin.len() as u32;
                    kin.extend(
                        pattern
                            .node(m)
                            .children
                            .iter()
                            .copied()
                            .filter(|&c| pattern.node(c).axis == Axis::FollowingSibling),
                    );
                    let ke = kin.len() as u32;
                    let c = &mut nodes[m.index()];
                    c.kin_start = ks;
                    c.kin_mid = km;
                    c.kin_end = ke;
                }
                let satisfiable = !tree.members.iter().any(|m| nodes[m.index()].unmatchable);
                let leaf = tree.members.len() == 1;
                CompiledFragment {
                    root: tree.root,
                    nodes,
                    kin,
                    satisfiable,
                    leaf,
                }
            })
            .collect();
        CompiledPlan {
            tag_space: tags.len(),
            frags,
        }
    }

    /// Whether this compilation is valid against `tags`. The interner is
    /// append-only, so equal length implies identical name→id resolution; a
    /// longer interner may have interned a tag this plan resolved as
    /// unmatchable, requiring recompilation.
    #[inline]
    pub fn is_current(&self, tags: &TagInterner) -> bool {
        self.tag_space == tags.len()
    }

    /// The compiled fragments, in [`QueryPlan::trees`] order.
    #[inline]
    pub fn fragments(&self) -> &[CompiledFragment] {
        &self.frags
    }

    /// Compiled fragment `i`.
    #[inline]
    pub fn fragment(&self, i: usize) -> &CompiledFragment {
        &self.frags[i]
    }
}

/// Executes one compiled fragment. Mirrors
/// [`FragmentMatcher`](crate::matcher::FragmentMatcher) exactly — same
/// answers, same fail-closed policy, same deadline cadence — but with flat
/// table lookups, no per-call axis filtering, and word-mask page-skips.
pub struct CompiledMatcher<'a> {
    ctx: &'a MatchContext<'a>,
    frag: &'a CompiledFragment,
    /// Treat the fragment root as an output even if the plan didn't mark it
    /// (GB subtree-visibility semantics: every fragment root's binding is
    /// needed for the visibility filter). Sound without recompilation
    /// because a fragment root never appears in its own kin table, so its
    /// `carries_output` bit is never consulted.
    force_root_output: bool,
    /// Precomputed §3.3 skip mask, one bit per block
    /// ([`dol_core::EmbeddedDol::block_skip_mask`]); `None` disables
    /// page-skipping (unsecured evaluation or ablation).
    skip_mask: Option<&'a [u64]>,
    /// Block-granular snapshot cache for the tree walk: one
    /// [`StructStore::block_snapshot`](dol_storage::StructStore::block_snapshot)
    /// page access amortizes every node load and sibling step landing in
    /// the same block, instead of one page latch per visited node, while
    /// records decode lazily so sparse walks never pay for slots they skip.
    blk: BlockCache,
    /// Match counters.
    pub stats: MatchStats,
}

/// The matcher's current cached block; `first > end` means empty.
struct BlockCache {
    /// First document position in the cached block.
    first: u64,
    /// One past the last cached position.
    end: u64,
    /// The block's page failed a non-availability read under secure
    /// evaluation: every load in it answers fail-closed.
    failed: bool,
    /// The owned snapshot (`None` when `failed`).
    snap: Option<BlockSnapshot>,
}

impl BlockCache {
    fn empty() -> Self {
        Self {
            first: u64::MAX,
            end: 0,
            failed: false,
            snap: None,
        }
    }
}

/// Per-execution shared block-snapshot cache for the compiled pipeline's
/// **sequential** stages — leaf-candidate classification and the join's
/// ancestor-interval fetch. Every distinct block is latched and snapshotted
/// at most once per query, no matter how many fragments or join anchors land
/// in it (a `//a//a` twig probes each candidate block once, not once per
/// fragment plus once in the join). A block whose page fails a
/// non-availability read under secure evaluation is cached as failed, so
/// every later probe answers fail-closed without re-reading. Memory is one
/// page copy per distinct block touched, released when the execution ends.
pub struct SnapshotCache {
    slots: Vec<SnapState>,
}

enum SnapState {
    Missing,
    Failed,
    Present(BlockSnapshot),
}

impl SnapshotCache {
    /// An empty cache for a store with `block_count` blocks.
    pub fn new(block_count: usize) -> Self {
        let mut slots = Vec::with_capacity(block_count);
        slots.resize_with(block_count, || SnapState::Missing);
        Self { slots }
    }

    /// The snapshot of block `idx`, taken on first use. `Ok(None)` means the
    /// block failed a non-availability read while `fail_closed` was set —
    /// the caller must treat its nodes as inaccessible. With `fail_closed`
    /// unset, read errors propagate uncached. One execution runs under one
    /// security mode, so `fail_closed` is constant across an instance's
    /// lifetime.
    pub fn get(
        &mut self,
        store: &StructStore,
        idx: usize,
        fail_closed: bool,
    ) -> Result<Option<&BlockSnapshot>, StorageError> {
        if matches!(self.slots[idx], SnapState::Missing) {
            match store.block_snapshot(idx) {
                Ok(s) => self.slots[idx] = SnapState::Present(s),
                Err(e) if fail_closed && !is_availability(&e) => {
                    self.slots[idx] = SnapState::Failed;
                }
                Err(e) => return Err(e),
            }
        }
        match &self.slots[idx] {
            SnapState::Present(s) => Ok(Some(s)),
            SnapState::Failed => Ok(None),
            SnapState::Missing => unreachable!("slot filled or errored above"),
        }
    }
}

impl<'a> CompiledMatcher<'a> {
    /// Prepares a matcher for `frag` under `ctx`.
    pub fn new(
        ctx: &'a MatchContext<'a>,
        frag: &'a CompiledFragment,
        force_root_output: bool,
        skip_mask: Option<&'a [u64]>,
    ) -> Self {
        Self {
            ctx,
            frag,
            force_root_output,
            skip_mask,
            blk: BlockCache::empty(),
            stats: MatchStats::default(),
        }
    }

    #[inline]
    fn output(&self, p: PNodeId) -> bool {
        self.frag.nodes[p.index()].is_output || (self.force_root_output && p == self.frag.root)
    }

    #[inline]
    fn fail_closed(&self) -> bool {
        self.ctx.access.is_some()
    }

    #[inline]
    fn block_skipped(&self, block: usize) -> bool {
        match self.skip_mask {
            Some(mask) => mask
                .get(block >> 6)
                .is_some_and(|w| w & (1u64 << (block & 63)) != 0),
            None => false,
        }
    }

    /// The `(record, code)` at `pos` through the block cache: a miss
    /// snapshots the block with one page access; hits decode straight from
    /// the owned snapshot with no latch. Fail-closed on data faults (the
    /// failing block stays cached so every load in it answers `None` without
    /// re-reading); availability outcomes propagate.
    fn fetch(&mut self, pos: u64) -> Result<Option<(NodeRec, u32)>, StorageError> {
        if !(self.blk.first <= pos && pos < self.blk.end) {
            let store = self.ctx.store;
            let idx = store.block_of_pos(pos);
            let info = *store.block_info(idx);
            let (snap, failed) = match store.block_snapshot(idx) {
                Ok(snap) => (Some(snap), false),
                Err(e) if self.fail_closed() && !is_availability(&e) => (None, true),
                Err(e) => return Err(e),
            };
            self.blk = BlockCache {
                first: info.first_pos,
                end: info.first_pos + u64::from(info.count),
                failed,
                snap,
            };
        }
        if self.blk.failed {
            self.stats.blocks_failed_closed += 1;
            return Ok(None);
        }
        let snap = self
            .blk
            .snap
            .as_ref()
            .expect("snapshot present unless failed");
        let slot = (pos - self.blk.first) as usize;
        Ok(Some((snap.node(slot), snap.code(slot))))
    }

    /// See [`FragmentMatcher::load_node`](crate::matcher::FragmentMatcher):
    /// fail-closed on data faults, availability outcomes propagate, deadline
    /// re-checked every `DEADLINE_CHECK_MASK + 1` visits.
    fn load_node(&mut self, pos: u64) -> Result<Option<(NodeRec, u32)>, StorageError> {
        if self.stats.nodes_visited & DEADLINE_CHECK_MASK == 0 {
            self.ctx.deadline.check()?;
        }
        self.fetch(pos)
    }

    fn next_sibling(&mut self, pos: u64, rec: &NodeRec) -> Result<Option<u64>, StorageError> {
        let next = pos + u64::from(rec.size);
        if next >= self.ctx.store.total_nodes() {
            return Ok(None);
        }
        // The sibling test only needs the next record's depth, served from
        // the block cache (the interpreted path pays a page latch here).
        match self.fetch(next)? {
            Some((nrec, _)) => Ok((nrec.depth == rec.depth).then_some(next)),
            None => Ok(None),
        }
    }

    /// Attempts to match the fragment with its root bound to `pos`;
    /// compiled twin of
    /// [`FragmentMatcher::match_root`](crate::matcher::FragmentMatcher::match_root).
    pub fn match_root(&mut self, pos: u64) -> Result<Vec<Binding>, StorageError> {
        if !self.frag.satisfiable {
            return Ok(Vec::new());
        }
        if self.skip_mask.is_some() {
            let block = self.ctx.store.block_of_pos(pos);
            if self.block_skipped(block) {
                self.stats.candidates_block_skipped += 1;
                self.ctx.store.pool().note_page_skipped();
                return Ok(Vec::new());
            }
        }
        let Some((rec, code)) = self.load_node(pos)? else {
            return Ok(Vec::new());
        };
        self.stats.nodes_visited += 1;
        if !self.ctx.code_accessible(code) {
            self.stats.nodes_denied += 1;
            return Ok(Vec::new());
        }
        if !self.node_matches(self.frag.root, pos, &rec)? {
            return Ok(Vec::new());
        }
        self.enum_node(self.frag.root, pos, &rec)
    }

    /// Tag and value test of `pnode` against the data node at `pos`.
    fn node_matches(
        &mut self,
        pnode: PNodeId,
        pos: u64,
        rec: &NodeRec,
    ) -> Result<bool, StorageError> {
        let frag = self.frag;
        let n = &frag.nodes[pnode.index()];
        if let Some(t) = n.tag {
            if rec.tag != t {
                return Ok(false);
            }
        } else if n.unmatchable {
            return Ok(false);
        }
        if let Some(v) = &n.value {
            if !rec.has_value {
                return Ok(false);
            }
            let actual = match self.ctx.values.get(pos) {
                Ok(a) => a,
                Err(e) if self.fail_closed() && !is_availability(&e) => {
                    self.stats.blocks_failed_closed += 1;
                    return Ok(false);
                }
                Err(e) => return Err(e),
            };
            match actual {
                Some(actual) if actual.as_str() == &**v => {}
                _ => return Ok(false),
            }
        }
        Ok(true)
    }

    /// Enumerates output bindings for `pnode` matched at `pos` — the
    /// compiled inner loop: kin ranges are slices of the flat table, no
    /// per-call filtering or allocation beyond the binding sets themselves.
    fn enum_node(
        &mut self,
        pnode: PNodeId,
        pos: u64,
        rec: &NodeRec,
    ) -> Result<Vec<Binding>, StorageError> {
        let frag = self.frag;
        let n = &frag.nodes[pnode.index()];
        let pchildren = &frag.kin[n.kin_start as usize..n.kin_mid as usize];
        let psiblings = &frag.kin[n.kin_mid as usize..n.kin_end as usize];
        let own: Binding = if self.output(pnode) {
            vec![(pnode, pos)]
        } else {
            Vec::new()
        };
        if pchildren.is_empty() && psiblings.is_empty() {
            return Ok(vec![own]);
        }
        let first = self.ctx.store.first_child_of(pos, rec);
        let child_results = self.scan_kin(pchildren, first)?;
        let next = self.next_sibling(pos, rec)?;
        let sib_results = self.scan_kin(psiblings, next)?;
        let (Some(child_results), Some(sib_results)) = (child_results, sib_results) else {
            return Ok(Vec::new());
        };
        let mut acc: Vec<Binding> = vec![own];
        for (&c, results) in pchildren
            .iter()
            .zip(&child_results)
            .chain(psiblings.iter().zip(&sib_results))
        {
            if !frag.nodes[c.index()].carries_output {
                continue;
            }
            let mut next = Vec::with_capacity(acc.len() * results.len());
            for base in &acc {
                for add in results {
                    let mut merged = base.clone();
                    merged.extend(add.iter().copied());
                    next.push(merged);
                }
            }
            acc = next;
        }
        for b in &mut acc {
            b.sort_unstable_by_key(|&(p, _)| p);
        }
        acc.sort_unstable();
        acc.dedup();
        Ok(acc)
    }

    /// Compiled twin of the interpreted `scan_kin`: matches `pats` against
    /// the FOLLOWING-SIBLING chain from `start`.
    fn scan_kin(
        &mut self,
        pats: &[PNodeId],
        start: Option<u64>,
    ) -> Result<Option<Vec<Vec<Binding>>>, StorageError> {
        let frag = self.frag;
        let mut results: Vec<Vec<Binding>> = vec![Vec::new(); pats.len()];
        if pats.is_empty() {
            return Ok(Some(results));
        }
        let mut satisfied: Vec<bool> = vec![false; pats.len()];
        let mut u = start;
        while let Some(upos) = u {
            let Some((urec, ucode)) = self.load_node(upos)? else {
                break;
            };
            self.stats.nodes_visited += 1;
            if self.ctx.code_accessible(ucode) {
                for (i, &c) in pats.iter().enumerate() {
                    if satisfied[i] && !frag.nodes[c.index()].carries_output {
                        continue;
                    }
                    if self.node_matches(c, upos, &urec)? {
                        let bs = self.enum_node(c, upos, &urec)?;
                        if !bs.is_empty() {
                            satisfied[i] = true;
                            results[i].extend(bs);
                        }
                    }
                }
            } else {
                self.stats.nodes_denied += 1;
            }
            if satisfied.iter().all(|&s| s)
                && pats.iter().all(|&c| !frag.nodes[c.index()].carries_output)
            {
                break;
            }
            u = self.next_sibling(upos, &urec)?;
        }
        if satisfied.iter().any(|&s| !s) {
            return Ok(None);
        }
        Ok(Some(results))
    }

    /// Leaf fast path: matches a **single-node** fragment against a sorted
    /// (document-order) candidate list in the compressed domain, block by
    /// block. For each block of candidates, in order:
    ///
    /// 1. the precomputed skip mask rejects fully-denied uniform blocks with
    ///    zero I/O;
    /// 2. a uniform block (`change` bit clear) is decided entirely from its
    ///    in-memory header: all-denied or — absent a value predicate —
    ///    all-matched, again zero I/O;
    /// 3. otherwise one [`StructStore::block_probe`] page scan yields
    ///    word-packed tag/value masks and the code runs, an
    ///    [`AccessBitmap`] classifies all slots with word ops, and only
    ///    survivors of `tag ∧ access` ever decode a value.
    ///
    /// Candidates come from the tag(+value) index, so their tag is already
    /// known to match; the probe's tag mask re-checks it anyway (defense in
    /// depth, and wildcards pass trivially). The deadline is checked before
    /// every page probe and every `DEADLINE_CHECK_MASK + 1` candidates;
    /// `nodes_visited` stays 0 on this path — no per-node record is ever
    /// materialized.
    ///
    /// # Panics
    /// Debug-asserts that the fragment is a leaf.
    pub fn match_leaf_candidates(
        &mut self,
        candidates: &[u64],
        snaps: &mut SnapshotCache,
    ) -> Result<Vec<Binding>, StorageError> {
        debug_assert!(self.frag.leaf, "leaf fast path on a non-leaf fragment");
        if !self.frag.satisfiable {
            return Ok(Vec::new());
        }
        let root = self.frag.root;
        let root_tag = self.frag.root_tag();
        let value: Option<&str> = self.frag.nodes[root.index()].value.as_deref();
        let emit = self.output(root);
        let secure = self.ctx.access.is_some();
        let store = self.ctx.store;
        let mut out: Vec<Binding> = Vec::new();
        let mut processed: u64 = 0;
        let mut i = 0usize;
        while i < candidates.len() {
            // Group the candidates sharing a block.
            let block = store.block_of_pos(candidates[i]);
            let info = *store.block_info(block);
            let block_end = info.first_pos + u64::from(info.count);
            let mut j = i + 1;
            while j < candidates.len() && candidates[j] < block_end {
                j += 1;
            }
            let group = &candidates[i..j];
            i = j;
            if processed & DEADLINE_CHECK_MASK == 0 {
                self.ctx.deadline.check()?;
            }
            processed += group.len() as u64;
            // (1) §3.3 skip from the precomputed mask — zero I/O.
            if self.block_skipped(block) {
                self.stats.candidates_block_skipped += group.len() as u64;
                for _ in group {
                    store.pool().note_page_skipped();
                }
                continue;
            }
            // (2) Uniform block: the header decides accessibility for every
            // slot — zero I/O unless a value must be read.
            if secure && !info.change {
                if !self.ctx.code_accessible(info.first_code) {
                    self.stats.nodes_denied += group.len() as u64;
                    continue;
                }
                if value.is_none() {
                    if emit {
                        out.extend(group.iter().map(|&pos| vec![(root, pos)]));
                    } else {
                        out.extend(group.iter().map(|_| Binding::new()));
                    }
                    continue;
                }
            } else if !secure && value.is_none() {
                // Unsecured, no predicate: index candidates are the answer.
                if emit {
                    out.extend(group.iter().map(|&pos| vec![(root, pos)]));
                } else {
                    out.extend(group.iter().map(|_| Binding::new()));
                }
                continue;
            }
            // (3a) Secure changing block, no value predicate: the code runs
            // alone decide — the shared snapshot (one latch per block per
            // execution) answers each candidate's code; the tag is already
            // proven by the index, exactly as paths (2)/(2b) trust it.
            if value.is_none() {
                debug_assert!(secure && info.change, "handled by (2)/(2b) otherwise");
                self.ctx.deadline.check()?;
                let Some(snap) = snaps.get(store, block, true)? else {
                    self.stats.blocks_failed_closed += group.len() as u64;
                    continue;
                };
                for &pos in group {
                    let slot = (pos - info.first_pos) as usize;
                    if self.ctx.code_accessible(snap.code(slot)) {
                        out.push(if emit {
                            vec![(root, pos)]
                        } else {
                            Binding::new()
                        });
                    } else {
                        self.stats.nodes_denied += 1;
                    }
                }
                continue;
            }
            // (3b) Value predicate: full compressed-domain probe — one page
            // access producing word-packed tag/value masks and the runs.
            self.ctx.deadline.check()?;
            let probe = match store.block_probe(block, root_tag) {
                Ok(p) => p,
                Err(e) if secure && !is_availability(&e) => {
                    self.stats.blocks_failed_closed += group.len() as u64;
                    continue;
                }
                Err(e) => return Err(e),
            };
            let access: Option<AccessBitmap> = match (&self.ctx.column, secure) {
                (Some(col), _) => {
                    let count = u64::from(probe.count);
                    let runs = probe.runs.iter().enumerate().map(|(k, &(slot, code))| {
                        let end = probe
                            .runs
                            .get(k + 1)
                            .map_or(count, |&(next, _)| u64::from(next));
                        (u64::from(slot), end, code)
                    });
                    Some(AccessBitmap::from_runs(count, runs, col))
                }
                (None, true) => None, // fall back to per-code checks below
                (None, false) => None,
            };
            for &pos in group {
                let slot = (pos - probe.first_pos) as usize;
                let bit = 1u64 << (slot & 63);
                let accessible = match (&access, secure) {
                    (Some(a), _) => a.word(slot >> 6) & bit != 0,
                    (None, true) => {
                        // No decoded column (engine always supplies one;
                        // kept for direct API use): walk the runs.
                        // runs[0] is always (0, first_code), so last() hits.
                        let code = probe
                            .runs
                            .iter()
                            .take_while(|&&(s, _)| u64::from(s) <= slot as u64)
                            .last()
                            .map_or(0, |&(_, c)| c);
                        self.ctx.code_accessible(code)
                    }
                    (None, false) => true,
                };
                if secure && !accessible {
                    self.stats.nodes_denied += 1;
                    continue;
                }
                if probe.tag_mask[slot >> 6] & bit == 0 {
                    continue;
                }
                if let Some(v) = value {
                    if probe.value_mask[slot >> 6] & bit == 0 {
                        continue;
                    }
                    let actual = match self.ctx.values.get(pos) {
                        Ok(a) => a,
                        Err(e) if secure && !is_availability(&e) => {
                            self.stats.blocks_failed_closed += 1;
                            continue;
                        }
                        Err(e) => return Err(e),
                    };
                    match actual {
                        Some(actual) if actual == v => {}
                        _ => continue,
                    }
                }
                out.push(if emit {
                    vec![(root, pos)]
                } else {
                    Binding::new()
                });
            }
        }
        // Candidates arrive strictly ascending and blocks are processed in
        // order, so the bindings are already sorted — dedup alone suffices
        // (it collapses the all-empty bindings of a non-output fragment).
        debug_assert!(out.windows(2).all(|w| w[0] <= w[1]), "leaf output sorted");
        out.dedup();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::FragmentMatcher;
    use crate::xpath::parse_query;
    use dol_acl::{AccessibilityMap, FnOracle, SubjectId};
    use dol_core::EmbeddedDol;
    use dol_storage::{BufferPool, MemDisk, StoreConfig, StructStore, ValueStore};
    use dol_xml::{parse, Document, NodeId};
    use std::sync::Arc;

    struct Fixture {
        store: StructStore,
        values: ValueStore,
        doc: Document,
        dol: EmbeddedDol,
    }

    fn fixture(xml: &str, map: Option<&AccessibilityMap>, max_rec: usize) -> Fixture {
        let doc = parse(xml).unwrap();
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 64));
        let cfg = StoreConfig {
            max_records_per_block: max_rec,
        };
        let all = FnOracle::new(1, |_, _| true);
        let (store, dol) = match map {
            Some(m) => EmbeddedDol::build(pool.clone(), cfg, &doc, m).unwrap(),
            None => EmbeddedDol::build(pool.clone(), cfg, &doc, &all).unwrap(),
        };
        let mut values = ValueStore::new(pool);
        for id in doc.preorder() {
            if let Some(v) = &doc.node(id).value {
                values.put(u64::from(id.0), v).unwrap();
            }
        }
        Fixture {
            store,
            values,
            doc,
            dol,
        }
    }

    fn ctx<'a>(f: &'a Fixture, secure: Option<SubjectId>) -> MatchContext<'a> {
        MatchContext::new(
            &f.store,
            &f.values,
            f.doc.tags(),
            secure.map(|s| (&f.dol, s)),
            true,
        )
    }

    /// Compiled and interpreted matchers agree binding-for-binding on the
    /// same candidates, secure and not.
    fn assert_agree(f: &Fixture, query: &str, secure: Option<SubjectId>, candidates: &[u64]) {
        let plan = QueryPlan::new(parse_query(query).unwrap());
        let compiled = CompiledPlan::compile(&plan, f.doc.tags());
        let c = ctx(f, secure);
        let mask = c
            .column
            .as_ref()
            .map(|col| f.dol.block_skip_mask(&f.store, col));
        for ti in 0..plan.trees.len() {
            let mut im = FragmentMatcher::new(&c, &plan, ti);
            let mut cm = CompiledMatcher::new(&c, compiled.fragment(ti), false, mask.as_deref());
            for &cand in candidates {
                let a = im.match_root(cand).unwrap();
                let b = cm.match_root(cand).unwrap();
                assert_eq!(a, b, "query {query} fragment {ti} candidate {cand}");
            }
        }
    }

    const FIG2: &str = "<a><b/><c/><d/><e><f/><g/><h><i/><j/><k/><l/></h></e></a>";

    #[test]
    fn compiled_matches_interpreted_on_figure_2() {
        let f = fixture(FIG2, None, 300);
        let all: Vec<u64> = (0..f.store.total_nodes()).collect();
        for q in ["/a[b][c]", "//h[j][k]/l", "/a/*", "//h[j][k]/m", "//nosuch"] {
            assert_agree(&f, q, None, &all);
        }
    }

    #[test]
    fn compiled_matches_interpreted_secure() {
        let doc = parse(FIG2).unwrap();
        let mut map = AccessibilityMap::new(2, doc.len());
        for p in 0..doc.len() as u32 {
            map.set(SubjectId(0), NodeId(p), true);
        }
        map.set(SubjectId(0), NodeId(9), false); // deny j
        for p in 7..12 {
            map.set(SubjectId(1), NodeId(p), true); // subject 1 sees only h's subtree
        }
        for max_rec in [300, 3, 2] {
            let f = fixture(FIG2, Some(&map), max_rec);
            let all: Vec<u64> = (0..f.store.total_nodes()).collect();
            for s in [SubjectId(0), SubjectId(1)] {
                for q in ["//h[j][k]/l", "//h[k]/l", "/a[b][c]", "//h/*"] {
                    assert_agree(&f, q, Some(s), &all);
                }
            }
        }
    }

    #[test]
    fn compiled_values_checked() {
        let f = fixture(
            "<r><item><name>gold</name></item><item><name>salt</name></item></r>",
            None,
            300,
        );
        let all: Vec<u64> = (0..f.store.total_nodes()).collect();
        assert_agree(&f, "//item[name=\"gold\"]", None, &all);
    }

    #[test]
    fn leaf_fast_path_matches_interpreted() {
        let doc = parse(FIG2).unwrap();
        let mut map = AccessibilityMap::new(1, doc.len());
        for p in [0u32, 4, 7, 8, 9, 10, 11] {
            map.set(SubjectId(0), NodeId(p), true);
        }
        for max_rec in [300, 3, 2] {
            let f = fixture(FIG2, Some(&map), max_rec);
            let all: Vec<u64> = (0..f.store.total_nodes()).collect();
            let plan = QueryPlan::new(parse_query("//h//j").unwrap());
            let compiled = CompiledPlan::compile(&plan, f.doc.tags());
            for secure in [None, Some(SubjectId(0))] {
                let c = ctx(&f, secure);
                let mask = c
                    .column
                    .as_ref()
                    .map(|col| f.dol.block_skip_mask(&f.store, col));
                for ti in 0..plan.trees.len() {
                    let frag = compiled.fragment(ti);
                    assert!(frag.is_leaf());
                    // Interpreted reference over every position with the
                    // fragment's tag.
                    let mut im = FragmentMatcher::new(&c, &plan, ti);
                    let mut want = Vec::new();
                    for &cand in &all {
                        let rec = f.store.node(cand).unwrap();
                        if Some(rec.tag) != frag.root_tag() {
                            continue;
                        }
                        want.extend(im.match_root(cand).unwrap());
                    }
                    want.sort_unstable();
                    want.dedup();
                    let tagged: Vec<u64> = all
                        .iter()
                        .copied()
                        .filter(|&p| Some(f.store.node(p).unwrap().tag) == frag.root_tag())
                        .collect();
                    let mut cm = CompiledMatcher::new(&c, frag, false, mask.as_deref());
                    let mut snaps = SnapshotCache::new(f.store.block_count());
                    let got = cm.match_leaf_candidates(&tagged, &mut snaps).unwrap();
                    assert_eq!(got, want, "fragment {ti} secure={secure:?}");
                    assert_eq!(cm.stats.nodes_visited, 0, "compressed domain only");
                }
            }
        }
    }

    #[test]
    fn leaf_fast_path_value_predicate() {
        let f = fixture(
            "<r><item><name>gold</name></item><item><name>salt</name></item></r>",
            None,
            2,
        );
        let mut pt = crate::pattern::PatternTree::new(Some("name"), false);
        pt.set_value(crate::pattern::PNodeId(0), "gold");
        let plan = QueryPlan::new(pt);
        let compiled = CompiledPlan::compile(&plan, f.doc.tags());
        let c = ctx(&f, None);
        let frag = compiled.fragment(0);
        let tagged: Vec<u64> = (0..f.store.total_nodes())
            .filter(|&p| Some(f.store.node(p).unwrap().tag) == frag.root_tag())
            .collect();
        let mut cm = CompiledMatcher::new(&c, frag, false, None);
        let mut snaps = SnapshotCache::new(f.store.block_count());
        let got = cm.match_leaf_candidates(&tagged, &mut snaps).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], vec![(PNodeId(0), 2)]);
    }

    #[test]
    fn stale_plan_detected_by_tag_fence() {
        let f = fixture(FIG2, None, 300);
        let plan = QueryPlan::new(parse_query("//h").unwrap());
        let compiled = CompiledPlan::compile(&plan, f.doc.tags());
        assert!(compiled.is_current(f.doc.tags()));
        let mut grown = f.doc.tags().clone();
        grown.intern("brand-new-tag");
        assert!(!compiled.is_current(&grown));
    }

    #[test]
    fn force_root_output_adds_root_binding() {
        let f = fixture(FIG2, None, 300);
        let plan = QueryPlan::new(parse_query("//h/l").unwrap());
        let compiled = CompiledPlan::compile(&plan, f.doc.tags());
        let c = ctx(&f, None);
        let mut plain = CompiledMatcher::new(&c, compiled.fragment(0), false, None);
        let mut forced = CompiledMatcher::new(&c, compiled.fragment(0), true, None);
        let a = plain.match_root(7).unwrap();
        let b = forced.match_root(7).unwrap();
        assert_eq!(a, vec![vec![(PNodeId(1), 11)]]);
        assert_eq!(b, vec![vec![(PNodeId(0), 7), (PNodeId(1), 11)]]);
    }
}
