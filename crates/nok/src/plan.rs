//! Query planning: NoK-subtree decomposition (paper §3.1).
//!
//! "The NoK query processor first partitions the pattern tree into NoK
//! subtrees, each containing only parent-child … relationships among its
//! nodes. Then the processor finds matches for these NoK subtrees from the
//! data tree. Finally it combines the matched results using structural joins
//! on the ancestor-descendant relationship."

use crate::pattern::{Axis, PNodeId, PatternTree};

/// One NoK subtree: a maximal pattern fragment connected by child edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NokTree {
    /// The fragment's root pattern node.
    pub root: PNodeId,
    /// All pattern nodes of the fragment (root first, preorder).
    pub members: Vec<PNodeId>,
    /// Pattern nodes whose data bindings must be carried out of the
    /// fragment match: the fragment root (needed as the descendant side of
    /// a join), ancestor-side join anchors inside this fragment, and the
    /// query's returning node if it lives here.
    pub outputs: Vec<PNodeId>,
}

/// An ancestor–descendant join edge between two NoK subtrees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinEdge {
    /// Index of the ancestor-side fragment in [`QueryPlan::trees`].
    pub anc_tree: usize,
    /// The pattern node (inside `anc_tree`) that is the ancestor.
    pub anc_pnode: PNodeId,
    /// Index of the descendant-side fragment; its root is the descendant.
    pub desc_tree: usize,
}

/// A decomposed twig query.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// The original pattern.
    pub pattern: PatternTree,
    /// NoK fragments; index 0 contains the pattern root.
    pub trees: Vec<NokTree>,
    /// Join edges; `desc_tree` is always greater than `anc_tree`, so
    /// processing joins in reverse order is bottom-up.
    pub joins: Vec<JoinEdge>,
}

impl QueryPlan {
    /// Decomposes `pattern` at its descendant edges.
    pub fn new(pattern: PatternTree) -> QueryPlan {
        let mut trees: Vec<NokTree> = Vec::new();
        let mut joins: Vec<JoinEdge> = Vec::new();
        // (fragment root, ancestor fragment index + anchor) stack, seeded
        // with the pattern root.
        let mut pending: Vec<(PNodeId, Option<(usize, PNodeId)>)> = vec![(pattern.root(), None)];
        // Depth-first over fragments, so tree 0 holds the pattern root and
        // every join's desc_tree exceeds its anc_tree.
        let mut queue_idx = 0;
        while queue_idx < pending.len() {
            let (root, link) = pending[queue_idx];
            queue_idx += 1;
            let tree_idx = trees.len();
            if let Some((anc_tree, anc_pnode)) = link {
                joins.push(JoinEdge {
                    anc_tree,
                    anc_pnode,
                    desc_tree: tree_idx,
                });
            }
            // Collect the child-edge closure of `root`.
            let mut members = Vec::new();
            let mut stack = vec![root];
            while let Some(n) = stack.pop() {
                members.push(n);
                for &c in pattern.node(n).children.iter().rev() {
                    match pattern.node(c).axis {
                        // Both next-of-kin relationships stay inside the
                        // fragment (paper §3.1).
                        Axis::Child | Axis::FollowingSibling => stack.push(c),
                        Axis::Descendant => pending.push((c, Some((tree_idx, n)))),
                    }
                }
            }
            trees.push(NokTree {
                root,
                members,
                outputs: Vec::new(),
            });
        }
        // Compute outputs.
        let returning = pattern.returning();
        #[allow(clippy::needless_range_loop)] // `i` also indexes `joins` filters
        for i in 0..trees.len() {
            let mut outputs = Vec::new();
            if i != 0 {
                outputs.push(trees[i].root);
            }
            for j in &joins {
                if j.anc_tree == i && !outputs.contains(&j.anc_pnode) {
                    outputs.push(j.anc_pnode);
                }
            }
            if trees[i].members.contains(&returning) && !outputs.contains(&returning) {
                outputs.push(returning);
            }
            trees[i].outputs = outputs;
        }
        QueryPlan {
            pattern,
            trees,
            joins,
        }
    }

    /// Renders the plan as an indented explanation, e.g.
    ///
    /// ```text
    /// plan for //item//emph
    ///   fragment 0: item  (outputs: q0)
    ///   fragment 1: emph  (outputs: q1)  [returning]
    ///   join: fragment 0 @ q0 ancestor-of fragment 1
    /// ```
    pub fn explain(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "plan for {}", self.pattern.to_query_string());
        let rt = self.returning_tree();
        for (i, t) in self.trees.iter().enumerate() {
            let names: Vec<String> = t
                .members
                .iter()
                .map(|&m| {
                    self.pattern
                        .node(m)
                        .tag
                        .clone()
                        .unwrap_or_else(|| "*".into())
                })
                .collect();
            let outputs: Vec<String> = t.outputs.iter().map(|o| o.to_string()).collect();
            let _ = writeln!(
                out,
                "  fragment {i}: {}  (outputs: {}){}",
                names.join(" "),
                outputs.join(", "),
                if i == rt { "  [returning]" } else { "" }
            );
        }
        for j in &self.joins {
            let _ = writeln!(
                out,
                "  join: fragment {} @ {} ancestor-of fragment {}",
                j.anc_tree, j.anc_pnode, j.desc_tree
            );
        }
        out
    }

    /// The fragment index containing the returning node.
    pub fn returning_tree(&self) -> usize {
        let r = self.pattern.returning();
        self.trees
            .iter()
            .position(|t| t.members.contains(&r))
            .expect("returning node is in some fragment")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xpath::parse_query;

    #[test]
    fn single_fragment_queries() {
        // Q1–Q3 decompose into one NoK tree each (all child edges).
        for q in [
            "/site/regions/africa/item[location][name][quantity]",
            "/site/categories/category[name]/description/text/bold",
            "/site/categories/category/name[description/text/bold]",
        ] {
            let plan = QueryPlan::new(parse_query(q).unwrap());
            assert_eq!(plan.trees.len(), 1, "{q}");
            assert!(plan.joins.is_empty());
            assert_eq!(plan.trees[0].members.len(), plan.pattern.len());
            assert_eq!(plan.returning_tree(), 0);
            // Only the returning node must be exported.
            assert_eq!(plan.trees[0].outputs, vec![plan.pattern.returning()]);
        }
    }

    #[test]
    fn two_fragment_join_queries() {
        // Q4–Q6 decompose into two single-node fragments plus one join.
        for q in ["//parlist//parlist", "//listitem//keyword", "//item//emph"] {
            let plan = QueryPlan::new(parse_query(q).unwrap());
            assert_eq!(plan.trees.len(), 2, "{q}");
            assert_eq!(plan.joins.len(), 1);
            let j = plan.joins[0];
            assert_eq!(j.anc_tree, 0);
            assert_eq!(j.desc_tree, 1);
            assert_eq!(j.anc_pnode, plan.pattern.root());
            assert_eq!(plan.returning_tree(), 1);
            // Descendant fragment exports its root (which is also returning).
            assert_eq!(plan.trees[1].outputs.len(), 1);
        }
    }

    #[test]
    fn figure_2_pattern_decomposes_at_the_ad_edge() {
        // The paper's Figure 2: (a (b) (c)) with a//h, h(j)(k)(l).
        let plan = QueryPlan::new(parse_query("/a[b][c]//h[j][k]/l").unwrap());
        assert_eq!(plan.trees.len(), 2);
        assert_eq!(plan.trees[0].members.len(), 3); // a, b, c
        assert_eq!(plan.trees[1].members.len(), 4); // h, j, k, l
        let j = plan.joins[0];
        assert_eq!(plan.pattern.node(j.anc_pnode).tag.as_deref(), Some("a"));
        let h = plan.trees[1].root;
        assert_eq!(plan.pattern.node(h).tag.as_deref(), Some("h"));
        // h must export both itself (join descendant) and l (returning).
        assert_eq!(plan.trees[1].outputs.len(), 2);
    }

    #[test]
    fn chained_descendants() {
        let plan = QueryPlan::new(parse_query("//a//b//c").unwrap());
        assert_eq!(plan.trees.len(), 3);
        assert_eq!(plan.joins.len(), 2);
        // Bottom-up processing order: reverse join order is c-join first.
        assert_eq!(plan.joins[0].desc_tree, 1);
        assert_eq!(plan.joins[1].desc_tree, 2);
        assert!(plan.joins[1].anc_tree < plan.joins[1].desc_tree);
    }

    #[test]
    fn explain_renders_fragments_and_joins() {
        let plan = QueryPlan::new(parse_query("/a[b][c]//h[j][k]/l").unwrap());
        let text = plan.explain();
        assert!(text.contains("fragment 0: a"), "{text}");
        assert!(text.contains("fragment 1: h"), "{text}");
        assert!(text.contains("[returning]"), "{text}");
        assert!(text.contains("ancestor-of fragment 1"), "{text}");
    }

    #[test]
    fn descendant_inside_predicate() {
        let plan = QueryPlan::new(parse_query("/a[b//c]/d").unwrap());
        assert_eq!(plan.trees.len(), 2);
        let j = plan.joins[0];
        assert_eq!(plan.pattern.node(j.anc_pnode).tag.as_deref(), Some("b"));
        // Fragment 0 exports the join anchor b and returning d.
        assert_eq!(plan.trees[0].outputs.len(), 2);
    }
}
