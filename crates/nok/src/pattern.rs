//! Twig pattern trees.

/// Identifier of a pattern-tree node (dense, creation order; 0 is the root).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PNodeId(pub u32);

impl PNodeId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PNodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// The structural relationship between a pattern node and its parent node in
/// the pattern tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Parent/child (`/`) — a next-of-kin relationship.
    Child,
    /// Ancestor/descendant (`//`) — evaluated by structural join.
    Descendant,
    /// Following sibling (`~`) — the *other* next-of-kin relationship: the
    /// matched data node must be a following sibling of the data node bound
    /// to the pattern parent. The paper's NoK subtrees contain "only
    /// parent-child or following-sibling relationships" (§3.1), and its
    /// real experiments used ordered pattern trees.
    FollowingSibling,
}

/// One node of a pattern tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternNode {
    /// Required element name; `None` is the wildcard `*`.
    pub tag: Option<String>,
    /// Required character-data value (`[tag="v"]` predicates).
    pub value: Option<String>,
    /// Axis connecting this node to its parent (ignored on the root, where
    /// it instead records the leading axis of the query: `/` anchors the
    /// root match to the document root, `//` matches anywhere).
    pub axis: Axis,
    /// Child pattern nodes, in creation order.
    pub children: Vec<PNodeId>,
    /// Parent pattern node (`None` on the root).
    pub parent: Option<PNodeId>,
}

/// A twig query: a pattern tree plus a designated returning node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternTree {
    nodes: Vec<PatternNode>,
    returning: PNodeId,
}

impl PatternTree {
    /// Starts a pattern tree with a root node.
    ///
    /// `anchored` records whether the root must bind to the document root
    /// (a query starting with `/` rather than `//`).
    pub fn new(tag: Option<&str>, anchored: bool) -> Self {
        Self {
            nodes: vec![PatternNode {
                tag: tag.map(Into::into),
                value: None,
                axis: if anchored {
                    Axis::Child
                } else {
                    Axis::Descendant
                },
                children: Vec::new(),
                parent: None,
            }],
            returning: PNodeId(0),
        }
    }

    /// Adds a child pattern node under `parent`.
    pub fn add_child(&mut self, parent: PNodeId, axis: Axis, tag: Option<&str>) -> PNodeId {
        let id = PNodeId(self.nodes.len() as u32);
        self.nodes.push(PatternNode {
            tag: tag.map(Into::into),
            value: None,
            axis,
            children: Vec::new(),
            parent: Some(parent),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Attaches a value constraint to a node.
    pub fn set_value(&mut self, node: PNodeId, value: &str) {
        self.nodes[node.index()].value = Some(value.to_owned());
    }

    /// Designates the returning node.
    pub fn set_returning(&mut self, node: PNodeId) {
        assert!(node.index() < self.nodes.len());
        self.returning = node;
    }

    /// The returning node.
    pub fn returning(&self) -> PNodeId {
        self.returning
    }

    /// The root pattern node.
    pub fn root(&self) -> PNodeId {
        PNodeId(0)
    }

    /// Whether the root must bind to the document root.
    pub fn anchored(&self) -> bool {
        self.nodes[0].axis == Axis::Child
    }

    /// Immutable node access.
    pub fn node(&self, id: PNodeId) -> &PatternNode {
        &self.nodes[id.index()]
    }

    /// Number of pattern nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Pattern trees are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates all pattern node ids in creation (preorder-compatible) order.
    pub fn iter(&self) -> impl Iterator<Item = PNodeId> {
        (0..self.nodes.len() as u32).map(PNodeId)
    }

    /// Renders the pattern back to query syntax (canonical form; predicates
    /// print in child order, the returning node is the main-path leaf).
    pub fn to_query_string(&self) -> String {
        let mut out = String::new();
        self.write_node(self.root(), true, &mut out);
        out
    }

    fn write_node(&self, id: PNodeId, top: bool, out: &mut String) {
        let n = self.node(id);
        if top {
            out.push_str(match n.axis {
                Axis::Child => "/",
                Axis::Descendant => "//",
                Axis::FollowingSibling => "~",
            });
        }
        out.push_str(n.tag.as_deref().unwrap_or("*"));
        if let Some(v) = &n.value {
            out.push_str(&format!("=\"{v}\""));
        }
        // The main path continues through the child that leads to the
        // returning node (or the last child); other children are predicates.
        let main = self.main_child(id);
        for &c in &n.children {
            if Some(c) != main {
                out.push('[');
                self.write_node(c, true, out);
                out.push(']');
            }
        }
        if let Some(c) = main {
            self.write_node(c, true, out);
        }
    }

    fn main_child(&self, id: PNodeId) -> Option<PNodeId> {
        let n = self.node(id);
        n.children
            .iter()
            .copied()
            .find(|&c| self.on_path_to_returning(c))
            .or(if id == self.returning {
                None
            } else {
                n.children.last().copied()
            })
    }

    fn on_path_to_returning(&self, id: PNodeId) -> bool {
        let mut cur = Some(self.returning);
        while let Some(c) = cur {
            if c == id {
                return true;
            }
            cur = self.node(c).parent;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut p = PatternTree::new(Some("site"), true);
        let regions = p.add_child(p.root(), Axis::Child, Some("regions"));
        let item = p.add_child(regions, Axis::Descendant, Some("item"));
        let name = p.add_child(item, Axis::Child, Some("name"));
        p.set_value(name, "gold");
        p.set_returning(item);
        assert_eq!(p.len(), 4);
        assert!(p.anchored());
        assert_eq!(p.returning(), item);
        assert_eq!(p.node(item).axis, Axis::Descendant);
        assert_eq!(p.node(name).value.as_deref(), Some("gold"));
        assert_eq!(p.node(regions).parent, Some(p.root()));
    }

    #[test]
    fn canonical_rendering() {
        let mut p = PatternTree::new(Some("a"), true);
        let b = p.add_child(p.root(), Axis::Child, Some("b"));
        p.add_child(b, Axis::Child, Some("c"));
        let d = p.add_child(b, Axis::Descendant, Some("d"));
        p.set_returning(d);
        assert_eq!(p.to_query_string(), "/a/b[/c]//d");
    }

    #[test]
    fn wildcard_renders_star() {
        let mut p = PatternTree::new(None, false);
        let c = p.add_child(p.root(), Axis::Child, Some("x"));
        p.set_returning(c);
        assert_eq!(p.to_query_string(), "//*/x");
        assert!(!p.anchored());
    }
}
