//! Property tests: the full query engine against the naive reference
//! evaluator, over random documents, random twig patterns, random
//! accessibility labelings and all three security semantics.

use dol_acl::{AccessibilityMap, SubjectId};
use dol_core::EmbeddedDol;
use dol_nok::reference::{naive_eval, RefSecurity};
use dol_nok::{Axis, ExecOptions, PatternTree, QueryEngine, QueryPlan, Security};
use dol_storage::{BufferPool, MemDisk, StoreConfig, StructStore, ValueStore};
use dol_xml::{Document, DocumentBuilder, NodeId};
use proptest::prelude::*;
use std::sync::Arc;

const TAGS: [&str; 4] = ["a", "b", "c", "d"];
const VALUES: [&str; 2] = ["x", "y"];

/// Random document: a stack-disciplined walk over a small tag alphabet,
/// some nodes carrying values.
fn arb_doc() -> impl Strategy<Value = Document> {
    proptest::collection::vec((0usize..4, 0u8..4, proptest::option::of(0usize..2)), 1..60).prop_map(
        |raw| {
            let mut b = DocumentBuilder::new();
            b.open(TAGS[0]);
            let mut depth = 1;
            for (tag, action, value) in raw {
                match action {
                    0 if depth < 6 => {
                        b.open(TAGS[tag]);
                        depth += 1;
                    }
                    1 | 2 => {
                        b.leaf(TAGS[tag], value.map(|v| VALUES[v]));
                    }
                    _ => {
                        if depth > 1 {
                            b.close();
                            depth -= 1;
                        }
                    }
                }
            }
            while depth > 0 {
                b.close();
                depth -= 1;
            }
            b.finish().unwrap()
        },
    )
}

/// Random twig pattern of up to 6 nodes.
fn arb_pattern() -> impl Strategy<Value = PatternTree> {
    (
        proptest::option::of(0usize..4), // root tag (None = wildcard)
        any::<bool>(),                   // anchored
        proptest::collection::vec(
            (
                0usize..6,                       // parent (mod current size)
                proptest::option::of(0usize..4), // tag
                0u8..3,                          // axis pick
                proptest::option::of(0usize..2), // value constraint
            ),
            0..5,
        ),
        0usize..6, // returning pick
    )
        .prop_map(|(root_tag, anchored, children, ret)| {
            let mut p = PatternTree::new(root_tag.map(|t| TAGS[t]), anchored);
            for (parent, tag, axis_pick, value) in children {
                let parent = dol_nok::PNodeId((parent % p.len()) as u32);
                let axis = match axis_pick {
                    0 => Axis::Child,
                    1 => Axis::Descendant,
                    _ => Axis::FollowingSibling,
                };
                let id = p.add_child(parent, axis, tag.map(|t| TAGS[t]));
                if let Some(v) = value {
                    p.set_value(id, VALUES[v]);
                }
            }
            let ret = dol_nok::PNodeId((ret % p.len()) as u32);
            p.set_returning(ret);
            p
        })
}

fn arb_map(nodes: usize) -> impl Strategy<Value = AccessibilityMap> {
    proptest::collection::vec(any::<bool>(), nodes * 2..=nodes * 2).prop_map(move |bits| {
        let mut m = AccessibilityMap::new(2, nodes);
        for (i, bit) in bits.into_iter().enumerate() {
            if bit {
                m.set(
                    SubjectId((i / nodes) as u32),
                    NodeId((i % nodes) as u32),
                    true,
                );
            }
        }
        m
    })
}

struct Fixture {
    store: StructStore,
    values: ValueStore,
    dol: EmbeddedDol,
    doc: Document,
}

fn build(doc: Document, map: &AccessibilityMap, max_rec: usize) -> Fixture {
    let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 64));
    let (store, dol) = EmbeddedDol::build(
        pool.clone(),
        StoreConfig {
            max_records_per_block: max_rec,
        },
        &doc,
        map,
    )
    .unwrap();
    let mut values = ValueStore::new(pool);
    for id in doc.preorder() {
        if let Some(v) = &doc.node(id).value {
            values.put(u64::from(id.0), v).unwrap();
        }
    }
    Fixture {
        store,
        values,
        dol,
        doc,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn engine_matches_reference(
        doc in arb_doc(),
        pattern in arb_pattern(),
        seed_map in proptest::bool::ANY,
        max_rec in prop_oneof![Just(4usize), Just(300usize)],
    ) {
        let map = if seed_map {
            // Mostly-accessible labeling.
            let mut m = AccessibilityMap::new(2, doc.len());
            for p in 0..doc.len() {
                m.set(SubjectId(0), NodeId(p as u32), true);
                if p % 3 != 0 {
                    m.set(SubjectId(1), NodeId(p as u32), true);
                }
            }
            m
        } else {
            let mut m = AccessibilityMap::new(2, doc.len());
            for p in 0..doc.len() {
                if p % 2 == 0 {
                    m.set(SubjectId(0), NodeId(p as u32), true);
                }
            }
            m
        };
        let f = build(doc, &map, max_rec);
        let engine = QueryEngine::new(&f.store, &f.values, f.doc.tags(), Some(&f.dol)).unwrap();
        let plan = QueryPlan::new(pattern.clone());

        let got = engine.execute_plan(&plan, Security::None).unwrap().matches;
        let expect = naive_eval(&f.doc, &pattern, RefSecurity::None);
        prop_assert_eq!(&got, &expect, "unsecured, query {}", pattern.to_query_string());

        for s in [SubjectId(0), SubjectId(1)] {
            let got = engine
                .execute_plan(&plan, Security::BindingLevel(s))
                .unwrap()
                .matches;
            let expect = naive_eval(&f.doc, &pattern, RefSecurity::Binding(&map, s));
            prop_assert_eq!(&got, &expect, "binding {} query {}", s, pattern.to_query_string());

            let got = engine
                .execute_plan(&plan, Security::SubtreeVisibility(s))
                .unwrap()
                .matches;
            let expect = naive_eval(&f.doc, &pattern, RefSecurity::Subtree(&map, s));
            prop_assert_eq!(&got, &expect, "subtree {} query {}", s, pattern.to_query_string());
        }
    }

    #[test]
    fn random_map_engine_matches_reference(
        doc in arb_doc(),
        pattern in arb_pattern(),
        bits in proptest::collection::vec(any::<bool>(), 0..120),
    ) {
        let n = doc.len();
        let mut map = AccessibilityMap::new(2, n);
        for (i, bit) in bits.iter().enumerate() {
            if *bit {
                map.set(SubjectId((i / n.max(1) % 2) as u32), NodeId((i % n.max(1)) as u32), true);
            }
        }
        let f = build(doc, &map, 4);
        let engine = QueryEngine::new(&f.store, &f.values, f.doc.tags(), Some(&f.dol)).unwrap();
        let plan = QueryPlan::new(pattern.clone());
        for s in [SubjectId(0), SubjectId(1)] {
            let got = engine
                .execute_plan(&plan, Security::BindingLevel(s))
                .unwrap()
                .matches;
            let expect = naive_eval(&f.doc, &pattern, RefSecurity::Binding(&map, s));
            prop_assert_eq!(&got, &expect, "query {}", pattern.to_query_string());
        }
    }

    #[test]
    fn parallel_execution_matches_sequential(
        doc in arb_doc(),
        pattern in arb_pattern(),
        bits in proptest::collection::vec(any::<bool>(), 0..120),
        parallelism in prop_oneof![Just(0usize), Just(2usize), Just(3usize), Just(5usize)],
        max_rec in prop_oneof![Just(4usize), Just(300usize)],
    ) {
        let n = doc.len();
        let mut map = AccessibilityMap::new(2, n);
        for (i, bit) in bits.iter().enumerate() {
            if *bit {
                map.set(SubjectId((i / n.max(1) % 2) as u32), NodeId((i % n.max(1)) as u32), true);
            }
        }
        let f = build(doc, &map, max_rec);
        let engine = QueryEngine::new(&f.store, &f.values, f.doc.tags(), Some(&f.dol)).unwrap();
        let plan = QueryPlan::new(pattern.clone());
        let par_opts = ExecOptions { parallelism, ..ExecOptions::default() };
        for sec in [
            Security::None,
            Security::BindingLevel(SubjectId(0)),
            Security::SubtreeVisibility(SubjectId(1)),
        ] {
            let seq = engine.execute_plan_opts(&plan, sec, ExecOptions::default()).unwrap();
            let par = engine.execute_plan_opts(&plan, sec, par_opts.clone()).unwrap();
            prop_assert_eq!(&par.matches, &seq.matches, "query {}", pattern.to_query_string());
            prop_assert_eq!(par.stats.candidates, seq.stats.candidates);
            prop_assert_eq!(par.stats.nodes_visited, seq.stats.nodes_visited);
            prop_assert_eq!(par.stats.nodes_denied, seq.stats.nodes_denied);
            prop_assert_eq!(par.stats.blocks_skipped, seq.stats.blocks_skipped);
            prop_assert_eq!(par.stats.join_pairs, seq.stats.join_pairs);
        }
    }

    #[test]
    fn canonical_query_string_roundtrips_through_engine(
        doc in arb_doc(),
        pattern in arb_pattern(),
    ) {
        // Rendering the pattern and re-parsing it must not change results
        // when the returning node lies on the main path (the renderer picks
        // a main path through the returning node).
        let map = arb_map(doc.len());
        let _ = map; // strategy unused here; all-grant suffices
        let mut grant = AccessibilityMap::new(1, doc.len());
        for p in 0..doc.len() {
            grant.set(SubjectId(0), NodeId(p as u32), true);
        }
        let f = build(doc, &grant, 300);
        let engine = QueryEngine::new(&f.store, &f.values, f.doc.tags(), Some(&f.dol)).unwrap();
        let rendered = pattern.to_query_string();
        if let Ok(reparsed) = dol_nok::parse_query(&rendered) {
            if reparsed == pattern {
                let a = engine
                    .execute_plan(&QueryPlan::new(pattern.clone()), Security::None)
                    .unwrap()
                    .matches;
                let b = engine.execute(&rendered, Security::None).unwrap().matches;
                prop_assert_eq!(a, b, "query {}", rendered);
            }
        }
    }
}
