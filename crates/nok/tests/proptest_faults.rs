//! Property tests for fail-closed semantics under storage faults: over
//! random documents, random twig patterns, random labelings and random
//! deterministic fault schedules, a secure query on a faulty store must
//! never error, never panic, and never return an answer the fault-free
//! oracle would not — corruption may *hide* nodes, never *leak* them.
//! Unsecured queries have nothing to protect, so they may surface the
//! storage error instead; but when they succeed they must be exact.

use dol_acl::{AccessibilityMap, SubjectId};
use dol_core::EmbeddedDol;
use dol_nok::{Axis, PatternTree, QueryEngine, QueryPlan, Security};
use dol_storage::{
    BufferPool, FaultConfig, FaultDisk, MemDisk, StoreConfig, StructStore, ValueStore,
};
use dol_xml::{Document, DocumentBuilder, NodeId};
use proptest::prelude::*;
use std::sync::Arc;

const TAGS: [&str; 4] = ["a", "b", "c", "d"];
const VALUES: [&str; 2] = ["x", "y"];

/// Random document: a stack-disciplined walk over a small tag alphabet,
/// some nodes carrying values (same shape as `proptest_engine`).
fn arb_doc() -> impl Strategy<Value = Document> {
    proptest::collection::vec((0usize..4, 0u8..4, proptest::option::of(0usize..2)), 1..60).prop_map(
        |raw| {
            let mut b = DocumentBuilder::new();
            b.open(TAGS[0]);
            let mut depth = 1;
            for (tag, action, value) in raw {
                match action {
                    0 if depth < 6 => {
                        b.open(TAGS[tag]);
                        depth += 1;
                    }
                    1 | 2 => {
                        b.leaf(TAGS[tag], value.map(|v| VALUES[v]));
                    }
                    _ => {
                        if depth > 1 {
                            b.close();
                            depth -= 1;
                        }
                    }
                }
            }
            while depth > 0 {
                b.close();
                depth -= 1;
            }
            b.finish().unwrap()
        },
    )
}

/// Random twig pattern of up to 6 nodes.
fn arb_pattern() -> impl Strategy<Value = PatternTree> {
    (
        proptest::option::of(0usize..4),
        any::<bool>(),
        proptest::collection::vec(
            (
                0usize..6,
                proptest::option::of(0usize..4),
                0u8..3,
                proptest::option::of(0usize..2),
            ),
            0..5,
        ),
        0usize..6,
    )
        .prop_map(|(root_tag, anchored, children, ret)| {
            let mut p = PatternTree::new(root_tag.map(|t| TAGS[t]), anchored);
            for (parent, tag, axis_pick, value) in children {
                let parent = dol_nok::PNodeId((parent % p.len()) as u32);
                let axis = match axis_pick {
                    0 => Axis::Child,
                    1 => Axis::Descendant,
                    _ => Axis::FollowingSibling,
                };
                let id = p.add_child(parent, axis, tag.map(|t| TAGS[t]));
                if let Some(v) = value {
                    p.set_value(id, VALUES[v]);
                }
            }
            let ret = dol_nok::PNodeId((ret % p.len()) as u32);
            p.set_returning(ret);
            p
        })
}

/// Random fault schedule. Rates are deliberately brutal compared to any
/// real disk — small documents need dense faults to hit the interesting
/// paths — and include `0.0` so some cases double as a no-fault control.
fn arb_faults() -> impl Strategy<Value = FaultConfig> {
    (
        any::<u64>(),
        prop_oneof![Just(0.0), Just(0.1), Just(0.5)], // transient_read_error
        prop_oneof![Just(0.0), Just(0.1), Just(0.4)], // sticky_bit_flip
        prop_oneof![Just(0.0), Just(0.1), Just(0.4)], // permanent_read_failure
        prop_oneof![Just(0.0), Just(0.2)],            // read_bit_flip
    )
        .prop_map(
            |(
                seed,
                transient_read_error,
                sticky_bit_flip,
                permanent_read_failure,
                read_bit_flip,
            )| {
                FaultConfig {
                    seed,
                    transient_read_error,
                    sticky_bit_flip,
                    permanent_read_failure,
                    read_bit_flip,
                    ..FaultConfig::default()
                }
            },
        )
}

struct Fixture {
    store: StructStore,
    values: ValueStore,
    dol: EmbeddedDol,
    doc: Document,
    pool: Arc<BufferPool>,
}

fn build(disk: Arc<dyn dol_storage::Disk>, doc: Document, map: &AccessibilityMap) -> Fixture {
    let pool = Arc::new(BufferPool::new(disk, 64));
    let (store, dol) = EmbeddedDol::build(
        pool.clone(),
        StoreConfig {
            max_records_per_block: 4,
        },
        &doc,
        map,
    )
    .unwrap();
    let mut values = ValueStore::new(pool.clone());
    for id in doc.preorder() {
        if let Some(v) = &doc.node(id).value {
            values.put(u64::from(id.0), v).unwrap();
        }
    }
    Fixture {
        store,
        values,
        dol,
        doc,
        pool,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn faulty_secure_answers_are_a_subset_of_the_oracle(
        doc in arb_doc(),
        pattern in arb_pattern(),
        bits in proptest::collection::vec(any::<bool>(), 0..120),
        faults in arb_faults(),
    ) {
        let n = doc.len();
        let mut map = AccessibilityMap::new(2, n);
        for (i, bit) in bits.iter().enumerate() {
            if *bit {
                map.set(SubjectId((i / n.max(1) % 2) as u32), NodeId((i % n.max(1)) as u32), true);
            }
        }

        // Twin builds: the fault decorator is disarmed during the build and
        // allocation always passes through, so the faulty twin's page layout
        // is byte-identical to the fault-free oracle's.
        let oracle = build(Arc::new(MemDisk::new()), doc.clone(), &map);
        let fault = Arc::new(FaultDisk::new(Arc::new(MemDisk::new()), faults));
        fault.set_armed(false);
        let faulty = build(fault.clone(), doc, &map);
        let oracle_engine =
            QueryEngine::new(&oracle.store, &oracle.values, oracle.doc.tags(), Some(&oracle.dol))
                .unwrap();
        let faulty_engine =
            QueryEngine::new(&faulty.store, &faulty.values, faulty.doc.tags(), Some(&faulty.dol))
                .unwrap();
        faulty.pool.flush_all().unwrap();
        fault.set_armed(true);
        faulty.pool.clear_cache().unwrap();

        let plan = QueryPlan::new(pattern.clone());
        for s in [SubjectId(0), SubjectId(1)] {
            for sec in [Security::BindingLevel(s), Security::SubtreeVisibility(s)] {
                let expect = oracle_engine.execute_plan(&plan, sec).unwrap();
                faulty.pool.clear_cache().unwrap();
                // Fail-closed: secure execution never errors, whatever the
                // schedule throws at it.
                let got = faulty_engine.execute_plan(&plan, sec).unwrap_or_else(|e| {
                    panic!(
                        "secure query errored under faults ({sec:?}): {e} — query {}",
                        pattern.to_query_string()
                    )
                });
                for m in &got.matches {
                    prop_assert!(
                        expect.matches.contains(m),
                        "{sec:?}: faulty store leaked {m:?} absent from the oracle — query {}",
                        pattern.to_query_string()
                    );
                }
                if got.matches.len() < expect.matches.len() {
                    // Losing answers is only legitimate if something
                    // actually failed closed along the way.
                    prop_assert!(
                        got.stats.blocks_failed_closed > 0,
                        "{sec:?}: answers disappeared without a recorded fail-closed block"
                    );
                }
            }
        }

        // Unsecured runs may propagate the storage error; a successful run
        // must be exact.
        let expect = oracle_engine.execute_plan(&plan, Security::None).unwrap();
        faulty.pool.clear_cache().unwrap();
        if let Ok(got) = faulty_engine.execute_plan(&plan, Security::None) {
            prop_assert_eq!(
                &got.matches,
                &expect.matches,
                "unsecured run succeeded but differs — query {}",
                pattern.to_query_string()
            );
            prop_assert_eq!(got.stats.blocks_failed_closed, 0);
        }
    }
}
