//! Differential property tests for compiled twig execution: the compiled
//! automaton must agree with the interpreted matcher — byte-for-byte on the
//! answer — over random documents, random twig patterns, random
//! two-subject accessibility matrices, all three security semantics, both
//! page-skip settings, and block sizes that force multi-block layouts.
//!
//! Deadline behavior is part of the contract: at any injected abort point
//! each path must return either the full correct answer or a typed
//! [`QueryError::DeadlineExceeded`] — never a partial or shrunken answer.
//! (The two paths may legitimately *differ* in whether they hit the
//! deadline: the compiled leaf path can answer some fragments with zero
//! node loads.)

use dol_acl::{AccessibilityMap, SubjectId};
use dol_core::EmbeddedDol;
use dol_nok::{Axis, ExecOptions, PatternTree, QueryEngine, QueryError, QueryPlan, Security};
use dol_storage::{BufferPool, Deadline, MemDisk, StoreConfig, StructStore, ValueStore};
use dol_xml::{Document, DocumentBuilder, NodeId};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const TAGS: [&str; 4] = ["a", "b", "c", "d"];
const VALUES: [&str; 2] = ["x", "y"];

fn arb_doc() -> impl Strategy<Value = Document> {
    proptest::collection::vec((0usize..4, 0u8..4, proptest::option::of(0usize..2)), 1..60).prop_map(
        |raw| {
            let mut b = DocumentBuilder::new();
            b.open(TAGS[0]);
            let mut depth = 1;
            for (tag, action, value) in raw {
                match action {
                    0 if depth < 6 => {
                        b.open(TAGS[tag]);
                        depth += 1;
                    }
                    1 | 2 => {
                        b.leaf(TAGS[tag], value.map(|v| VALUES[v]));
                    }
                    _ => {
                        if depth > 1 {
                            b.close();
                            depth -= 1;
                        }
                    }
                }
            }
            while depth > 0 {
                b.close();
                depth -= 1;
            }
            b.finish().unwrap()
        },
    )
}

fn arb_pattern() -> impl Strategy<Value = PatternTree> {
    (
        proptest::option::of(0usize..4),
        any::<bool>(),
        proptest::collection::vec(
            (
                0usize..6,
                proptest::option::of(0usize..4),
                0u8..3,
                proptest::option::of(0usize..2),
            ),
            0..5,
        ),
        0usize..6,
    )
        .prop_map(|(root_tag, anchored, children, ret)| {
            let mut p = PatternTree::new(root_tag.map(|t| TAGS[t]), anchored);
            for (parent, tag, axis_pick, value) in children {
                let parent = dol_nok::PNodeId((parent % p.len()) as u32);
                let axis = match axis_pick {
                    0 => Axis::Child,
                    1 => Axis::Descendant,
                    _ => Axis::FollowingSibling,
                };
                let id = p.add_child(parent, axis, tag.map(|t| TAGS[t]));
                if let Some(v) = value {
                    p.set_value(id, VALUES[v]);
                }
            }
            let ret = dol_nok::PNodeId((ret % p.len()) as u32);
            p.set_returning(ret);
            p
        })
}

struct Fixture {
    store: StructStore,
    values: ValueStore,
    dol: EmbeddedDol,
    doc: Document,
}

fn build(doc: Document, map: &AccessibilityMap, max_rec: usize) -> Fixture {
    let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 64));
    let (store, dol) = EmbeddedDol::build(
        pool.clone(),
        StoreConfig {
            max_records_per_block: max_rec,
        },
        &doc,
        map,
    )
    .unwrap();
    let mut values = ValueStore::new(pool);
    for id in doc.preorder() {
        if let Some(v) = &doc.node(id).value {
            values.put(u64::from(id.0), v).unwrap();
        }
    }
    Fixture {
        store,
        values,
        dol,
        doc,
    }
}

fn map_from_bits(bits: &[bool], n: usize) -> AccessibilityMap {
    let mut map = AccessibilityMap::new(2, n);
    for (i, bit) in bits.iter().enumerate() {
        if *bit {
            map.set(
                SubjectId((i / n.max(1) % 2) as u32),
                NodeId((i % n.max(1)) as u32),
                true,
            );
        }
    }
    map
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The core differential property: compiled ≡ interpreted on the answer,
    /// for every security mode × page-skip setting × block size.
    #[test]
    fn compiled_execution_matches_interpreted(
        doc in arb_doc(),
        pattern in arb_pattern(),
        bits in proptest::collection::vec(any::<bool>(), 0..120),
        max_rec in prop_oneof![Just(4usize), Just(300usize)],
        page_skip in any::<bool>(),
    ) {
        let map = map_from_bits(&bits, doc.len());
        let f = build(doc, &map, max_rec);
        let engine = QueryEngine::new(&f.store, &f.values, f.doc.tags(), Some(&f.dol)).unwrap();
        let plan = QueryPlan::new(pattern.clone());
        for sec in [
            Security::None,
            Security::BindingLevel(SubjectId(0)),
            Security::BindingLevel(SubjectId(1)),
            Security::SubtreeVisibility(SubjectId(0)),
            Security::SubtreeVisibility(SubjectId(1)),
        ] {
            let compiled = engine
                .execute_plan_opts(&plan, sec, ExecOptions { page_skip, ..ExecOptions::default() })
                .unwrap();
            let interpreted = engine
                .execute_plan_opts(
                    &plan,
                    sec,
                    ExecOptions { page_skip, compiled: false, ..ExecOptions::default() },
                )
                .unwrap();
            prop_assert_eq!(
                &compiled.matches,
                &interpreted.matches,
                "query {} sec {:?} page_skip {}",
                pattern.to_query_string(),
                sec,
                page_skip
            );
        }
    }

    /// Deadline contract inside the compiled loop: at every injected abort
    /// point the result is either the full correct answer or a typed
    /// `DeadlineExceeded` with partial stats and no data fault — never a
    /// partial answer. Cancellation tokens behave identically.
    #[test]
    fn compiled_deadline_aborts_are_typed_and_never_partial(
        doc in arb_doc(),
        pattern in arb_pattern(),
        bits in proptest::collection::vec(any::<bool>(), 0..120),
        cancel in any::<bool>(),
    ) {
        let map = map_from_bits(&bits, doc.len());
        let f = build(doc, &map, 4);
        let engine = QueryEngine::new(&f.store, &f.values, f.doc.tags(), Some(&f.dol)).unwrap();
        let plan = QueryPlan::new(pattern.clone());
        for sec in [
            Security::None,
            Security::BindingLevel(SubjectId(0)),
            Security::SubtreeVisibility(SubjectId(1)),
        ] {
            // The full answer, compiled, no deadline.
            let full = engine
                .execute_plan_opts(&plan, sec, ExecOptions::default())
                .unwrap()
                .matches;
            // An abort point that fires at the first check.
            let deadline = if cancel {
                let d = Deadline::never();
                d.token().cancel();
                d
            } else {
                Deadline::after(Duration::ZERO)
            };
            let opts = ExecOptions { deadline, ..ExecOptions::default() };
            match engine.execute_plan_opts(&plan, sec, opts) {
                // Zero-I/O fast paths may legitimately complete even with an
                // expired deadline — but then the answer must be the full one.
                Ok(r) => prop_assert_eq!(
                    &r.matches, &full,
                    "query {} sec {:?}: completed answer must be full",
                    pattern.to_query_string(), sec
                ),
                Err(QueryError::DeadlineExceeded(stats)) => {
                    prop_assert_eq!(
                        stats.blocks_failed_closed, 0,
                        "deadline is availability, not a data fault"
                    );
                }
                Err(other) => prop_assert!(
                    false,
                    "query {} sec {:?}: unexpected error {:?}",
                    pattern.to_query_string(), sec, other
                ),
            }
        }
    }
}
