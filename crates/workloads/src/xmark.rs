//! A seeded generator for XMark-shaped documents.
//!
//! The experiments only depend on the *shape* of XMark data — fan-out, the
//! recursive `parlist`/`listitem` nesting, inline `bold`/`keyword`/`emph`
//! markup, and the tag vocabulary the six benchmark queries mention — so the
//! generator reproduces the schema faithfully at a configurable scale
//! instead of shipping the original corpus. At `scale = 1.0` a document has
//! roughly 40k element nodes; the paper's 50 MB instance corresponds to
//! `scale ≈ 20`.

use dol_xml::{Document, DocumentBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct XmarkConfig {
    /// Document size multiplier (1.0 ≈ 40k nodes).
    pub scale: f64,
    /// RNG seed; equal configs generate identical documents.
    pub seed: u64,
}

impl Default for XmarkConfig {
    fn default() -> Self {
        Self {
            scale: 0.25,
            seed: 20050405, // ICDE 2005
        }
    }
}

/// The six XMark continents with their item-count weights.
const REGIONS: [(&str, usize); 6] = [
    ("africa", 5),
    ("asia", 20),
    ("australia", 10),
    ("europe", 25),
    ("namerica", 25),
    ("samerica", 15),
];

const WORDS: [&str; 24] = [
    "gold", "silver", "cobalt", "amber", "silk", "grain", "copper", "iron", "salt", "olive",
    "ebony", "ivory", "linen", "wool", "pepper", "cinnamon", "marble", "jade", "coral", "quartz",
    "tin", "lead", "resin", "indigo",
];

const CITIES: [&str; 10] = [
    "waterloo", "toronto", "boston", "geneva", "lagos", "lima", "osaka", "cairo", "perth", "oslo",
];

/// Generates a document.
pub fn xmark(cfg: &XmarkConfig) -> Document {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = Document::builder();
    let g = &mut Gen {
        rng: &mut rng,
        b: &mut b,
    };
    let s = cfg.scale;
    let items_base = (40.0 * s).ceil() as usize;
    let categories = ((100.0 * s).ceil() as usize).max(2);
    let people = ((250.0 * s).ceil() as usize).max(2);
    let open_auctions = ((120.0 * s).ceil() as usize).max(1);
    let closed_auctions = ((60.0 * s).ceil() as usize).max(1);

    g.b.open("site");
    // Regions.
    g.b.open("regions");
    let mut item_no = 0usize;
    for (name, weight) in REGIONS {
        g.b.open(name);
        for _ in 0..(items_base * weight / 10).max(1) {
            g.item(item_no, categories);
            item_no += 1;
        }
        g.b.close();
    }
    g.b.close();
    // Categories (recursive parlists live here and in annotations).
    g.b.open("categories");
    for c in 0..categories {
        g.b.open("category");
        g.b.attribute("id", &format!("category{c}"));
        let w = g.word();
        g.b.leaf("name", Some(w));
        g.description();
        g.b.close();
    }
    g.b.close();
    g.catgraph(categories);
    // People.
    g.b.open("people");
    for p in 0..people {
        g.person(p);
    }
    g.b.close();
    // Auctions.
    g.b.open("open_auctions");
    for a in 0..open_auctions {
        g.open_auction(a, item_no, people);
    }
    g.b.close();
    g.b.open("closed_auctions");
    for a in 0..closed_auctions {
        g.closed_auction(a, item_no, people);
    }
    g.b.close();
    g.b.close(); // site
    b.finish().expect("generator produces balanced documents")
}

struct Gen<'a> {
    rng: &'a mut StdRng,
    b: &'a mut DocumentBuilder,
}

impl Gen<'_> {
    fn word(&mut self) -> &'static str {
        WORDS[self.rng.gen_range(0..WORDS.len())]
    }

    fn sentence(&mut self) -> String {
        let n = self.rng.gen_range(3..9);
        let mut s = String::new();
        for i in 0..n {
            if i > 0 {
                s.push(' ');
            }
            s.push_str(WORDS[self.rng.gen_range(0..WORDS.len())]);
        }
        s
    }

    /// `<text>` with optional inline `bold` / `keyword` / `emph` children —
    /// the mixed content Q2, Q5 and Q6 navigate into. Content that is a
    /// single text chunk is stored as the element's value, matching the
    /// parser's coalescing convention so documents round-trip node-exactly.
    fn text(&mut self) {
        enum Chunk {
            Text(String),
            Inline(&'static str, &'static str),
        }
        let mut chunks: Vec<Chunk> = Vec::new();
        for _ in 0..self.rng.gen_range(1..4) {
            let t = self.sentence();
            // Adjacent text chunks merge into one character-data node when
            // the document is reparsed, so merge them here as well.
            if let Some(Chunk::Text(prev)) = chunks.last_mut() {
                prev.push(' ');
                prev.push_str(&t);
            } else {
                chunks.push(Chunk::Text(t));
            }
            match self.rng.gen_range(0..5) {
                0 => chunks.push(Chunk::Inline("bold", self.word())),
                1 => chunks.push(Chunk::Inline("keyword", self.word())),
                2 => chunks.push(Chunk::Inline("emph", self.word())),
                _ => {}
            }
        }
        if let [Chunk::Text(t)] = chunks.as_slice() {
            let t = t.clone();
            self.b.leaf("text", Some(&t));
            return;
        }
        self.b.open("text");
        for c in chunks {
            match c {
                Chunk::Text(t) => {
                    self.b.text(&t);
                }
                Chunk::Inline(tag, w) => {
                    self.b.leaf(tag, Some(w));
                }
            }
        }
        self.b.close();
    }

    /// `<parlist>` with recursive `listitem`s (Q4: `//parlist//parlist`).
    fn parlist(&mut self, depth: usize) {
        self.b.open("parlist");
        let items = self.rng.gen_range(2..5);
        for _ in 0..items {
            self.b.open("listitem");
            if depth < 3 && self.rng.gen_bool(0.3) {
                self.parlist(depth + 1);
            } else {
                self.text();
            }
            self.b.close();
        }
        self.b.close();
    }

    fn description(&mut self) {
        self.b.open("description");
        if self.rng.gen_bool(0.35) {
            self.parlist(0);
        } else {
            self.text();
        }
        self.b.close();
    }

    fn item(&mut self, no: usize, categories: usize) {
        self.b.open("item");
        self.b.attribute("id", &format!("item{no}"));
        if self.rng.gen_bool(0.1) {
            self.b.attribute("featured", "yes");
        }
        let city = CITIES[self.rng.gen_range(0..CITIES.len())];
        self.b.leaf("location", Some(city));
        let q = self.rng.gen_range(1..10).to_string();
        self.b.leaf("quantity", Some(&q));
        let w = self.word();
        self.b.leaf("name", Some(w));
        self.b.leaf("payment", Some("Cash"));
        self.description();
        self.b.leaf("shipping", Some("Will ship internationally"));
        for _ in 0..self.rng.gen_range(1..4) {
            self.b.open("incategory");
            let c = self.rng.gen_range(0..categories);
            self.b.attribute("category", &format!("category{c}"));
            self.b.close();
        }
        self.b.open("mailbox");
        for _ in 0..self.rng.gen_range(0..3) {
            self.b.open("mail");
            let f = self.word();
            self.b.leaf("from", Some(f));
            let t = self.word();
            self.b.leaf("to", Some(t));
            self.b.leaf("date", Some("04/05/2005"));
            self.text();
            self.b.close();
        }
        self.b.close();
        self.b.close();
    }

    fn catgraph(&mut self, categories: usize) {
        self.b.open("catgraph");
        for _ in 0..categories / 2 {
            self.b.open("edge");
            let f = self.rng.gen_range(0..categories);
            let t = self.rng.gen_range(0..categories);
            self.b.attribute("from", &format!("category{f}"));
            self.b.attribute("to", &format!("category{t}"));
            self.b.close();
        }
        self.b.close();
    }

    fn person(&mut self, no: usize) {
        self.b.open("person");
        self.b.attribute("id", &format!("person{no}"));
        let w = self.word();
        self.b.leaf("name", Some(&format!("{w} {no}")));
        self.b
            .leaf("emailaddress", Some(&format!("mailto:p{no}@example.org")));
        if self.rng.gen_bool(0.4) {
            self.b.leaf("phone", Some("+1 519 555 0100"));
        }
        if self.rng.gen_bool(0.5) {
            self.b.open("address");
            self.b.leaf("street", Some("200 University Ave W"));
            let city = CITIES[self.rng.gen_range(0..CITIES.len())];
            self.b.leaf("city", Some(city));
            self.b.leaf("country", Some("Canada"));
            self.b.close();
        }
        if self.rng.gen_bool(0.3) {
            self.b.open("watches");
            for _ in 0..self.rng.gen_range(1..3) {
                self.b.open("watch");
                self.b.attribute("open_auction", "open_auction0");
                self.b.close();
            }
            self.b.close();
        }
        self.b.close();
    }

    fn open_auction(&mut self, no: usize, items: usize, people: usize) {
        self.b.open("open_auction");
        self.b.attribute("id", &format!("open_auction{no}"));
        let v = format!("{}.{:02}", self.rng.gen_range(1..200), 50);
        self.b.leaf("initial", Some(&v));
        for _ in 0..self.rng.gen_range(0..4) {
            self.b.open("bidder");
            self.b.leaf("date", Some("04/05/2005"));
            self.b.open("personref");
            let p = self.rng.gen_range(0..people);
            self.b.attribute("person", &format!("person{p}"));
            self.b.close();
            let inc = format!("{}.00", self.rng.gen_range(1..20));
            self.b.leaf("increase", Some(&inc));
            self.b.close();
        }
        let cur = format!("{}.00", self.rng.gen_range(1..400));
        self.b.leaf("current", Some(&cur));
        self.b.open("itemref");
        let i = self.rng.gen_range(0..items.max(1));
        self.b.attribute("item", &format!("item{i}"));
        self.b.close();
        self.b.open("seller");
        let p = self.rng.gen_range(0..people);
        self.b.attribute("person", &format!("person{p}"));
        self.b.close();
        self.annotation();
        let q = self.rng.gen_range(1..5).to_string();
        self.b.leaf("quantity", Some(&q));
        self.b.leaf("type", Some("Regular"));
        self.b.open("interval");
        self.b.leaf("start", Some("04/01/2005"));
        self.b.leaf("end", Some("05/01/2005"));
        self.b.close();
        self.b.close();
    }

    fn closed_auction(&mut self, no: usize, items: usize, people: usize) {
        self.b.open("closed_auction");
        self.b.attribute("id", &format!("closed_auction{no}"));
        self.b.open("seller");
        let p = self.rng.gen_range(0..people);
        self.b.attribute("person", &format!("person{p}"));
        self.b.close();
        self.b.open("buyer");
        let p = self.rng.gen_range(0..people);
        self.b.attribute("person", &format!("person{p}"));
        self.b.close();
        self.b.open("itemref");
        let i = self.rng.gen_range(0..items.max(1));
        self.b.attribute("item", &format!("item{i}"));
        self.b.close();
        let pr = format!("{}.00", self.rng.gen_range(1..400));
        self.b.leaf("price", Some(&pr));
        self.b.leaf("date", Some("04/05/2005"));
        let q = self.rng.gen_range(1..5).to_string();
        self.b.leaf("quantity", Some(&q));
        self.b.leaf("type", Some("Regular"));
        self.annotation();
        self.b.close();
    }

    fn annotation(&mut self) {
        self.b.open("annotation");
        self.b.open("author");
        self.b.attribute("person", "person0");
        self.b.close();
        self.description();
        self.b.leaf("happiness", Some("7"));
        self.b.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = XmarkConfig {
            scale: 0.05,
            seed: 1,
        };
        let a = xmark(&cfg);
        let b = xmark(&cfg);
        assert_eq!(a.to_xml(), b.to_xml());
        let c = xmark(&XmarkConfig {
            scale: 0.05,
            seed: 2,
        });
        assert_ne!(a.to_xml(), c.to_xml());
    }

    #[test]
    fn scale_controls_size() {
        let small = xmark(&XmarkConfig {
            scale: 0.05,
            seed: 1,
        });
        let large = xmark(&XmarkConfig {
            scale: 0.2,
            seed: 1,
        });
        small.check_integrity().unwrap();
        large.check_integrity().unwrap();
        assert!(large.len() > 2 * small.len());
    }

    #[test]
    fn query_relevant_tags_present() {
        let doc = xmark(&XmarkConfig {
            scale: 0.2,
            seed: 7,
        });
        for tag in [
            "site",
            "regions",
            "africa",
            "item",
            "location",
            "name",
            "quantity",
            "categories",
            "category",
            "description",
            "text",
            "bold",
            "parlist",
            "listitem",
            "keyword",
            "emph",
            "people",
            "person",
            "open_auctions",
        ] {
            let t = doc
                .tags()
                .get(tag)
                .unwrap_or_else(|| panic!("missing tag {tag}"));
            assert!(!doc.nodes_with_tag(t).is_empty(), "no nodes with tag {tag}");
        }
    }

    #[test]
    fn parlists_nest_for_q4() {
        let doc = xmark(&XmarkConfig {
            scale: 0.3,
            seed: 11,
        });
        let parlist = doc.tags().get("parlist").unwrap();
        let lists = doc.nodes_with_tag(parlist);
        let nested = lists
            .iter()
            .any(|&p| doc.descendants(p).any(|d| doc.node(d).tag == parlist));
        assert!(nested, "need nested parlists for //parlist//parlist");
    }

    #[test]
    fn roundtrips_through_parser() {
        let doc = xmark(&XmarkConfig {
            scale: 0.02,
            seed: 3,
        });
        let reparsed = dol_xml::parse(&doc.to_xml()).unwrap();
        assert_eq!(reparsed.len(), doc.len());
    }
}
