//! Synthetic access controls (paper §5).
//!
//! "We generated synthetic access controls on XMark benchmarks by randomly
//! choosing some nodes from the document as seeds, and then labeling these
//! seeds as accessible or non-accessible. We simulate horizontal structural
//! locality by randomly setting the seeds' direct siblings with the same
//! accessibility, provided that the siblings are not themselves seeds. Then,
//! we simulate vertical structural locality by propagating accessibilities
//! of labeled nodes to their descendants using the Most-Specific-Override
//! policy … We always choose the document root as seed to ensure all nodes
//! be labeled."

use dol_acl::{AccessibilityMap, BitVec, SubjectId};
use dol_xml::Document;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic labeling.
#[derive(Debug, Clone, Copy)]
pub struct SynthAclConfig {
    /// Fraction of nodes chosen as seeds ("propagation ratio").
    pub propagation_ratio: f64,
    /// Fraction of seeds labeled accessible ("accessibility ratio").
    pub accessibility_ratio: f64,
    /// Probability that a seed's non-seed direct sibling copies its label
    /// (horizontal locality).
    pub sibling_locality: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthAclConfig {
    fn default() -> Self {
        Self {
            propagation_ratio: 0.03,
            accessibility_ratio: 0.5,
            sibling_locality: 0.5,
            seed: 17,
        }
    }
}

/// Generates a single subject's accessibility column.
pub fn synth_single(doc: &Document, cfg: &SynthAclConfig) -> BitVec {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    synth_column(doc, cfg, &mut rng)
}

/// Generates `subjects` independent columns as an [`AccessibilityMap`]
/// (uncorrelated subjects — the §2.1 worst-case regime).
pub fn synth_multi(doc: &Document, cfg: &SynthAclConfig, subjects: usize) -> AccessibilityMap {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut map = AccessibilityMap::new(subjects, doc.len());
    for s in 0..subjects {
        *map.column_mut(SubjectId(s as u32)) = synth_column(doc, cfg, &mut rng);
    }
    map
}

fn synth_column(doc: &Document, cfg: &SynthAclConfig, rng: &mut StdRng) -> BitVec {
    let n = doc.len();
    // 1. Seeds, root forced.
    let mut label: Vec<Option<bool>> = vec![None; n];
    let mut is_seed = vec![false; n];
    for i in 0..n {
        if i == 0 || rng.gen_bool(cfg.propagation_ratio) {
            is_seed[i] = true;
            label[i] = Some(rng.gen_bool(cfg.accessibility_ratio));
        }
    }
    // 2. Horizontal locality: non-seed siblings copy the seed's label.
    for id in doc.preorder() {
        if !is_seed[id.index()] {
            continue;
        }
        let Some(parent) = doc.parent(id) else {
            continue;
        };
        let val = label[id.index()].unwrap();
        for sib in doc.children(parent) {
            if sib != id && !is_seed[sib.index()] && rng.gen_bool(cfg.sibling_locality) {
                label[sib.index()] = Some(val);
            }
        }
    }
    // 3. Vertical locality: Most-Specific-Override — each node inherits from
    //    its closest labeled ancestor-or-self.
    let mut acc = BitVec::zeros(n);
    let mut effective = vec![false; n];
    for id in doc.preorder() {
        let inherited = doc
            .parent(id)
            .map(|p| effective[p.index()])
            .unwrap_or(false);
        let v = label[id.index()].unwrap_or(inherited);
        effective[id.index()] = v;
        if v {
            acc.set(id.index(), true);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use dol_xml::parse;

    fn doc() -> Document {
        crate::xmark::xmark(&crate::xmark::XmarkConfig {
            scale: 0.05,
            seed: 5,
        })
    }

    #[test]
    fn deterministic() {
        let d = doc();
        let cfg = SynthAclConfig::default();
        assert_eq!(synth_single(&d, &cfg), synth_single(&d, &cfg));
    }

    #[test]
    fn accessibility_ratio_moves_density() {
        let d = doc();
        let lo = synth_single(
            &d,
            &SynthAclConfig {
                accessibility_ratio: 0.1,
                ..Default::default()
            },
        );
        let hi = synth_single(
            &d,
            &SynthAclConfig {
                accessibility_ratio: 0.9,
                ..Default::default()
            },
        );
        let dl = lo.count_ones() as f64 / lo.len() as f64;
        let dh = hi.count_ones() as f64 / hi.len() as f64;
        assert!(dl < 0.35, "low ratio density {dl}");
        assert!(dh > 0.65, "high ratio density {dh}");
    }

    #[test]
    fn propagation_ratio_controls_fragmentation() {
        // More seeds ⇒ more transitions in document order.
        let d = doc();
        let count_transitions = |col: &BitVec| {
            let mut t = 1;
            for i in 1..col.len() {
                if col.get(i) != col.get(i - 1) {
                    t += 1;
                }
            }
            t
        };
        let sparse = synth_single(
            &d,
            &SynthAclConfig {
                propagation_ratio: 0.01,
                ..Default::default()
            },
        );
        let dense = synth_single(
            &d,
            &SynthAclConfig {
                propagation_ratio: 0.3,
                ..Default::default()
            },
        );
        assert!(count_transitions(&dense) > 2 * count_transitions(&sparse));
    }

    #[test]
    fn structural_locality_beats_random_labeling() {
        // The whole point of the scheme: propagated labels produce far fewer
        // document-order transitions than independently random bits.
        let d = doc();
        let col = synth_single(&d, &SynthAclConfig::default());
        let mut transitions = 1u32;
        for i in 1..col.len() {
            if col.get(i) != col.get(i - 1) {
                transitions += 1;
            }
        }
        assert!(
            (transitions as usize) < d.len() / 5,
            "{transitions} transitions on {} nodes",
            d.len()
        );
    }

    #[test]
    fn multi_subject_columns_are_independent() {
        let d = parse("<a><b/><c/><d/></a>").unwrap();
        let map = synth_multi(&d, &SynthAclConfig::default(), 8);
        assert_eq!(map.subjects(), 8);
        // With 8 independent columns over 4 nodes, not all can be equal.
        let distinct: std::collections::HashSet<String> = (0..8)
            .map(|s| map.column(SubjectId(s)).to_string())
            .collect();
        assert!(distinct.len() > 1);
    }
}
