//! A LiveLink-style corporate-portal simulator.
//!
//! The paper's first real dataset is a production OpenText LiveLink
//! instance: 1,150,000 tree-structured items with average depth 7.9 and
//! maximum depth 19, 8,639 access-control subjects (users and groups), and
//! ten action modes. The dataset is proprietary; this simulator reproduces
//! the *statistical structure* the experiments depend on:
//!
//! * a workspace / department / project / folder hierarchy calibrated to the
//!   published depth statistics;
//! * a subject hierarchy (company → departments → teams, users in teams);
//! * role-based **subtree grants** per action mode, with occasional
//!   confidential-folder deny-then-regrant overrides and per-user home
//!   folders.
//!
//! Because grants are issued to a shared group structure, the access rights
//! of different subjects are strongly correlated — which is exactly the
//! property (paper §5.1.1) that keeps the DOL codebook sub-exponential and
//! the transition count sub-linear in the number of subjects.

use dol_acl::{BitVec, CascadeRules, SubjectCatalog, SubjectId};
use dol_xml::{Document, DocumentBuilder, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Simulator parameters.
#[derive(Debug, Clone, Copy)]
pub struct LiveLinkConfig {
    /// Number of departments.
    pub departments: usize,
    /// Projects per department.
    pub projects_per_dept: usize,
    /// Approximate folder-tree size per project (nodes).
    pub project_size: usize,
    /// Number of users.
    pub users: usize,
    /// Number of action modes (the real system has ten).
    pub modes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LiveLinkConfig {
    fn default() -> Self {
        Self {
            departments: 8,
            projects_per_dept: 5,
            project_size: 120,
            users: 300,
            modes: 10,
            seed: 7919,
        }
    }
}

/// Per-mode probability that a *department* group is granted that mode on
/// its department subtree (mode 0 ≈ "see", mode 9 ≈ "admin").
const DEPT_GRANT_P: [f64; 10] = [0.95, 0.8, 0.7, 0.55, 0.45, 0.35, 0.3, 0.2, 0.12, 0.06];
/// Per-mode probability for *team* grants on project subtrees.
const TEAM_GRANT_P: [f64; 10] = [0.98, 0.9, 0.85, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1];

/// The generated world: document, subjects and per-mode rule sets.
pub struct LiveLinkWorld {
    /// The item tree.
    pub doc: Document,
    /// Users and groups (groups first: company, departments, teams).
    pub subjects: SubjectCatalog,
    rules: Vec<CascadeRules>,
    dept_roots: Vec<NodeId>,
}

impl LiveLinkWorld {
    /// Generates a world.
    pub fn generate(cfg: &LiveLinkConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let modes = cfg.modes.clamp(1, 10);

        // ---- subjects -------------------------------------------------
        let mut subjects = SubjectCatalog::new();
        let company = subjects.add_group("company");
        let mut dept_groups = Vec::with_capacity(cfg.departments);
        let mut team_groups: Vec<Vec<SubjectId>> = Vec::with_capacity(cfg.departments);
        for d in 0..cfg.departments {
            let g = subjects.add_group(&format!("dept{d}"));
            subjects.add_membership(g, company);
            dept_groups.push(g);
            let mut teams = Vec::new();
            for p in 0..cfg.projects_per_dept {
                let t = subjects.add_group(&format!("team{d}.{p}"));
                subjects.add_membership(t, g);
                teams.push(t);
            }
            team_groups.push(teams);
        }
        let mut users = Vec::with_capacity(cfg.users);
        for u in 0..cfg.users {
            let id = subjects.add_user(&format!("user{u}"));
            // Primary team in a "home" department, sometimes a second team.
            let d = rng.gen_range(0..cfg.departments);
            let t = rng.gen_range(0..cfg.projects_per_dept);
            subjects.add_membership(id, team_groups[d][t]);
            if rng.gen_bool(0.25) {
                let d2 = rng.gen_range(0..cfg.departments);
                let t2 = rng.gen_range(0..cfg.projects_per_dept);
                subjects.add_membership(id, team_groups[d2][t2]);
            }
            users.push((id, d));
        }
        let subject_count = subjects.len();

        // ---- document + rule anchors ----------------------------------
        let mut b = Document::builder();
        b.open("workspace");
        let mut dept_roots = Vec::new();
        let mut project_roots: Vec<(usize, usize, NodeId)> = Vec::new();
        let mut confidential: Vec<(usize, usize, NodeId)> = Vec::new();
        let mut homes: Vec<(SubjectId, NodeId)> = Vec::new();
        for d in 0..cfg.departments {
            let dept = b.open("department");
            b.attribute("name", &format!("dept{d}"));
            dept_roots.push(dept);
            for p in 0..cfg.projects_per_dept {
                let proj = b.open("project");
                b.attribute("name", &format!("proj{d}.{p}"));
                project_roots.push((d, p, proj));
                let conf = grow_folders(&mut b, &mut rng, cfg.project_size, 2);
                if let Some(c) = conf {
                    confidential.push((d, p, c));
                }
                b.close();
            }
            // Per-user home folders for this department's users.
            b.open("homes");
            for &(uid, ud) in &users {
                if ud == d {
                    let h = b.open("home");
                    b.attribute("owner", subjects.name(uid));
                    b.leaf("inbox", None);
                    if rng.gen_bool(0.5) {
                        b.leaf("drafts", None);
                    }
                    b.close();
                    homes.push((uid, h));
                }
            }
            b.close();
            b.close();
        }
        b.close();
        let doc = b.finish().expect("balanced build");

        // ---- rules -----------------------------------------------------
        // The production system the paper measured exports *effective*
        // accessibility per subject: a rule naming a group also determines
        // every member user's bit at the same anchor. We therefore expand
        // group rules to their (transitive) member users, preserving rule
        // order so Most-Specific-Override ties resolve identically. The
        // expansion is what gives anchors their subject multiplicity — many
        // subjects' rights change at the same document position, the
        // correlation DOL compresses and per-subject CAMs cannot.
        let mut members_of: Vec<Vec<SubjectId>> = vec![Vec::new(); subject_count];
        for &(uid, _) in &users {
            for g in subjects.effective_subjects(uid) {
                if g != uid {
                    members_of[g.index()].push(uid);
                }
            }
        }
        let mut rules: Vec<CascadeRules> = (0..modes)
            .map(|_| CascadeRules::new(subject_count))
            .collect();
        for (m, raw) in raw_rules(
            &mut rng,
            modes,
            cfg,
            company,
            &dept_groups,
            &team_groups,
            &users,
            &dept_roots,
            &project_roots,
            &confidential,
            &homes,
            doc.root(),
        )
        .into_iter()
        .enumerate()
        {
            let rs = &mut rules[m];
            for (subject, node, allow) in raw {
                rs.add(subject, node, allow);
                for &u in &members_of[subject.index()] {
                    rs.add(u, node, allow);
                }
            }
        }
        LiveLinkWorld {
            doc,
            subjects,
            rules,
            dept_roots,
        }
    }
}

/// Generates the per-mode rule lists (subject, anchor, allow) in order.
#[allow(clippy::too_many_arguments)]
fn raw_rules(
    rng: &mut StdRng,
    modes: usize,
    cfg: &LiveLinkConfig,
    company: SubjectId,
    dept_groups: &[SubjectId],
    team_groups: &[Vec<SubjectId>],
    users: &[(SubjectId, usize)],
    dept_roots: &[NodeId],
    project_roots: &[(usize, usize, NodeId)],
    confidential: &[(usize, usize, NodeId)],
    homes: &[(SubjectId, NodeId)],
    root: NodeId,
) -> Vec<Vec<(SubjectId, NodeId, bool)>> {
    let mut out = Vec::with_capacity(modes);
    for m in 0..modes {
        let mut rs: Vec<(SubjectId, NodeId, bool)> = Vec::new();
        {
            // Everyone can "see" the workspace root area in mode 0.
            if m == 0 {
                rs.push((company, root, true));
            }
            for (d, &g) in dept_groups.iter().enumerate() {
                if rng.gen_bool(DEPT_GRANT_P[m]) {
                    rs.push((g, dept_roots[d], true));
                }
            }
            for &(d, p, proj) in project_roots {
                let team = team_groups[d][p];
                if rng.gen_bool(TEAM_GRANT_P[m]) {
                    rs.push((team, proj, true));
                }
            }
            for &(d, p, conf) in confidential {
                // Confidential folders: the department loses access, the
                // owning team keeps it (Most-Specific-Override in action).
                rs.push((dept_groups[d], conf, false));
                rs.push((team_groups[d][p], conf, true));
            }
            for &(uid, h) in homes {
                if m < 6 || rng.gen_bool(0.3) {
                    rs.push((uid, h, true));
                }
            }
            // Cross-team sharing: a pool of folders that several teams and
            // individual users are granted directly. Shared anchors are what
            // correlate subjects' rights — many subjects change their ACL at
            // the same document positions, so DOL transitions are shared
            // while per-subject CAMs each pay for their own labels.
            // A real folder ACL lists *many* subjects at once: the anchor is
            // one document position (a couple of DOL transitions) but every
            // listed subject's per-user CAM pays its own labels there. This
            // multiplicity is the source of the paper's orders-of-magnitude
            // DOL-vs-CAM gap.
            for (i, &(d, p, proj)) in project_roots.iter().enumerate() {
                if i % 4 != 0 {
                    continue; // every 4th project is a shared area
                }
                let _ = (d, p);
                for _ in 0..rng.gen_range(2..8) {
                    let td = rng.gen_range(0..cfg.departments);
                    let tp = rng.gen_range(0..cfg.projects_per_dept);
                    if rng.gen_bool(0.7) {
                        rs.push((team_groups[td][tp], proj, true));
                    }
                }
                let listed = rng.gen_range(5..(cfg.users / 8).max(6));
                for _ in 0..listed {
                    let u = users[rng.gen_range(0..users.len())].0;
                    if rng.gen_bool(0.6) {
                        rs.push((u, proj, true));
                    }
                }
            }
            // Individual ad-hoc grants: users given access to random
            // project folders outside their teams (fragmenting per-user
            // rights the way real collaboration does).
            for &(uid, _) in users {
                if rng.gen_bool(0.35) {
                    for _ in 0..rng.gen_range(1..3) {
                        let k = rng.gen_range(0..project_roots.len());
                        rs.push((uid, project_roots[k].2, true));
                    }
                }
            }
        }
        out.push(rs);
    }
    out
}

impl LiveLinkWorld {
    /// Number of action modes.
    pub fn modes(&self) -> usize {
        self.rules.len()
    }

    /// Total subjects (users + groups).
    pub fn subject_count(&self) -> usize {
        self.subjects.len()
    }

    /// The cascade rule set of one mode.
    pub fn rules(&self, mode: usize) -> &CascadeRules {
        &self.rules[mode]
    }

    /// Department folder roots (rule anchors), exposed for tests.
    pub fn dept_roots(&self) -> &[NodeId] {
        &self.dept_roots
    }

    /// Document-order ACL row-change stream for a mode, optionally
    /// restricted to a subject subset (see
    /// [`CascadeRules::row_stream`]).
    pub fn row_stream(&self, mode: usize, restrict: Option<&[SubjectId]>) -> Vec<(u64, BitVec)> {
        self.rules[mode].row_stream(&self.doc, restrict)
    }

    /// One subject's accessibility column for a mode.
    pub fn subject_column(&self, subject: SubjectId, mode: usize) -> BitVec {
        self.rules[mode].column(&self.doc, subject)
    }

    /// A **user's** effective accessibility: their own subject OR-ed with
    /// every group they transitively belong to (paper §4 footnote 4). This
    /// is what the per-user CAM/DOL comparison of Figure 4(b) labels.
    pub fn user_effective_column(&self, user: SubjectId, mode: usize) -> BitVec {
        let mut col = BitVec::zeros(self.doc.len());
        for s in self.subjects.effective_subjects(user) {
            col.or_assign(&self.subject_column(s, mode));
        }
        col
    }

    /// Samples `n` distinct subjects uniformly (both users and groups, as in
    /// the paper's subject-scaling plots).
    pub fn sample_subjects(&self, n: usize, seed: u64) -> Vec<SubjectId> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut all: Vec<SubjectId> = self.subjects.iter().collect();
        all.shuffle(&mut rng);
        all.truncate(n.min(all.len()));
        all
    }

    /// Samples `n` distinct users.
    pub fn sample_users(&self, n: usize, seed: u64) -> Vec<SubjectId> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut all: Vec<SubjectId> = self.subjects.users().collect();
        all.shuffle(&mut rng);
        all.truncate(n.min(all.len()));
        all
    }
}

/// Grows a random folder tree of roughly `budget` nodes under the currently
/// open element; returns a "confidential" folder node if one was created.
fn grow_folders(
    b: &mut DocumentBuilder,
    rng: &mut StdRng,
    budget: usize,
    base_depth: usize,
) -> Option<NodeId> {
    let mut confidential = None;
    let mut remaining = budget as i64;
    // Recursive helper via explicit stack of open folder depths.
    fn folder(
        b: &mut DocumentBuilder,
        rng: &mut StdRng,
        remaining: &mut i64,
        depth: usize,
        confidential: &mut Option<NodeId>,
    ) {
        // Documents in this folder.
        for _ in 0..rng.gen_range(0..5) {
            if *remaining <= 0 {
                return;
            }
            b.leaf("document", None);
            *remaining -= 1;
        }
        // Subfolders, thinning out with depth (max total depth ≤ 19: the
        // folder chain starts at depth ~3 and is capped at 16 levels here).
        if depth >= 16 {
            return;
        }
        let fanout_p = (0.75 - depth as f64 * 0.04).max(0.08);
        while *remaining > 0 && rng.gen_bool(fanout_p) {
            let f = b.open("folder");
            *remaining -= 1;
            if confidential.is_none() && rng.gen_bool(0.08) {
                *confidential = Some(f);
            }
            folder(b, rng, remaining, depth + 1, confidential);
            b.close();
        }
    }
    while remaining > 0 {
        let f = b.open("folder");
        remaining -= 1;
        if confidential.is_none() && rng.gen_bool(0.08) {
            confidential = Some(f);
        }
        folder(b, rng, &mut remaining, base_depth + 1, &mut confidential);
        b.close();
    }
    confidential
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> LiveLinkWorld {
        LiveLinkWorld::generate(&LiveLinkConfig {
            departments: 4,
            projects_per_dept: 3,
            project_size: 80,
            users: 60,
            modes: 10,
            seed: 1,
        })
    }

    #[test]
    fn shape_is_calibrated() {
        let w = LiveLinkWorld::generate(&LiveLinkConfig::default());
        w.doc.check_integrity().unwrap();
        let s = w.doc.stats();
        assert!(
            s.avg_depth > 3.5 && s.avg_depth < 12.0,
            "avg depth {} out of LiveLink range",
            s.avg_depth
        );
        assert!(s.max_depth <= 19, "max depth {} exceeds 19", s.max_depth);
        assert!(s.nodes > 2000);
    }

    #[test]
    fn deterministic() {
        let a = world();
        let b = world();
        assert_eq!(a.doc.to_xml(), b.doc.to_xml());
        assert_eq!(a.row_stream(0, None).len(), b.row_stream(0, None).len());
    }

    #[test]
    fn subject_correlation_bounds_distinct_rows() {
        let w = world();
        let stream = w.row_stream(0, None);
        let distinct: std::collections::HashSet<&BitVec> = stream.iter().map(|(_, r)| r).collect();
        // Correlated grants keep distinct ACLs far below both bounds of
        // §2.1: min(|D|, 2^|S|).
        assert!(
            distinct.len() < w.doc.len() / 4,
            "{} distinct rows",
            distinct.len()
        );
        // And transitions are sparse relative to the document.
        assert!(stream.len() < w.doc.len() / 2);
    }

    #[test]
    fn user_rights_include_groups() {
        let w = world();
        let user = w.subjects.get("user0").unwrap();
        let own = w.subject_column(user, 0);
        let eff = w.user_effective_column(user, 0);
        assert!(eff.count_ones() >= own.count_ones());
        // Mode 0 grants the company group the whole workspace, so any user
        // sees at least that much.
        assert!(eff.count_ones() > 0);
    }

    #[test]
    fn confidential_override_holds() {
        // Find a confidential rule (dept deny + team grant at same node).
        let w = world();
        let rs = w.rules(0);
        assert!(!rs.is_empty());
        // At minimum, every department-grant mode-0 run makes dept members
        // see their department.
        let dept = w.subjects.get("dept0").unwrap();
        let col = w.subject_column(dept, 0);
        let _ = col.count_ones();
    }

    #[test]
    fn sampling_is_stable_and_distinct() {
        let w = world();
        let a = w.sample_subjects(10, 3);
        let b = w.sample_subjects(10, 3);
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 10);
        let users = w.sample_users(5, 4);
        assert!(users
            .iter()
            .all(|&u| w.subjects.kind(u) == dol_acl::SubjectKind::User));
    }

    #[test]
    fn row_stream_restriction_matches_columns() {
        let w = world();
        let subset = w.sample_subjects(6, 9);
        let stream = w.row_stream(2, Some(&subset));
        for (i, &s) in subset.iter().enumerate() {
            let col = w.subject_column(s, 2);
            for p in (0..w.doc.len() as u64).step_by(37) {
                let j = stream.partition_point(|&(q, _)| q <= p) - 1;
                assert_eq!(
                    stream[j].1.get(i),
                    col.get(p as usize),
                    "subject {s} pos {p}"
                );
            }
        }
    }
}
