#![warn(missing_docs)]

//! Workload generators for the DOL experiments (paper §5).
//!
//! The paper evaluates on three data sources, two of which are proprietary;
//! this crate provides seeded, deterministic stand-ins calibrated to the
//! published statistics (see DESIGN.md for the substitution rationale):
//!
//! * [`xmark`] — documents with the XMark benchmark's schema shape
//!   (regions/items, categories with recursively nested `parlist`s, people,
//!   auctions, inline `bold`/`keyword`/`emph` content), so the paper's
//!   queries Q1–Q6 exercise the same structural classes;
//! * [`synth`] — the synthetic access controls of §5: random seeds
//!   controlled by a *propagation ratio*, accessible with probability the
//!   *accessibility ratio*, horizontal locality via same-labeled siblings,
//!   vertical locality via Most-Specific-Override propagation;
//! * [`livelink`] — a corporate-portal simulator (OpenText LiveLink
//!   surrogate): department/project folder trees (avg depth ≈ 8, max ≤ 19),
//!   a group hierarchy, role-based subtree grants across ten action modes —
//!   the source of the subject-correlation the multi-user experiments
//!   measure;
//! * [`unixfs`] — a multi-user Unix file-system surrogate: per-file
//!   `owner/group/mode-bits` with directory-level inheritance, users in
//!   groups, accessibility derived by the Unix permission algorithm.

pub mod grouped;
pub mod livelink;
pub mod synth;
pub mod unixfs;
pub mod xmark;

pub use grouped::{GroupedConfig, GroupedOracle, GroupedWorld};
pub use livelink::{LiveLinkConfig, LiveLinkWorld};
pub use synth::{synth_multi, synth_single, SynthAclConfig};
pub use unixfs::{UnixFsConfig, UnixFsWorld, UnixMode};
pub use xmark::{xmark, XmarkConfig};
