//! A multi-user Unix file-system surrogate.
//!
//! The paper's second real dataset is a University of Waterloo multi-user
//! Unix file system: 182 users, 65 groups, over 1.3 million files and
//! directories. This simulator generates a directory tree whose per-node
//! `owner / group / mode-bits` metadata follows the usual administrative
//! conventions (ownership inherited down directories with occasional
//! hand-offs, a small set of common permission patterns), and derives
//! per-subject accessibility with the standard Unix permission algorithm:
//!
//! * a **user subject** `u` may access a node in mode `m` iff `u` owns it
//!   and the owner bit of `m` is set, or `u` does not own it and the other
//!   bit is set;
//! * a **group subject** `g` may access it iff the node's group is `g` and
//!   the group bit is set, or otherwise the other bit is set;
//! * a user's *effective* rights OR their user subject with their groups'
//!   subjects, as in the paper's subject model.
//!
//! Because most files share a handful of `(owner, group, mode)` patterns,
//! subjects' rights are heavily correlated — the Unix-side evidence for the
//! paper's codebook-compression argument.

use dol_acl::{AccessOracle, BitVec, SubjectCatalog, SubjectId};
use dol_xml::{Document, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Simulator parameters.
#[derive(Debug, Clone, Copy)]
pub struct UnixFsConfig {
    /// Approximate total node count (files + directories).
    pub nodes: usize,
    /// Number of users (the real system had 182).
    pub users: usize,
    /// Number of groups (the real system had 65).
    pub groups: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UnixFsConfig {
    fn default() -> Self {
        Self {
            nodes: 30_000,
            users: 182,
            groups: 65,
            seed: 65,
        }
    }
}

/// The three Unix action modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnixMode {
    /// `r`
    Read,
    /// `w`
    Write,
    /// `x`
    Execute,
}

impl UnixMode {
    /// All three modes.
    pub const ALL: [UnixMode; 3] = [UnixMode::Read, UnixMode::Write, UnixMode::Execute];

    /// Bit shift of the owner bit for this mode (`r` = 8, `w` = 7, `x` = 6).
    fn owner_shift(self) -> u16 {
        match self {
            UnixMode::Read => 8,
            UnixMode::Write => 7,
            UnixMode::Execute => 6,
        }
    }
}

/// Per-node metadata.
#[derive(Debug, Clone, Copy)]
struct Meta {
    owner: u16,
    group: u16,
    /// Classic 9-bit permission word (e.g. `0o755`).
    mode: u16,
}

/// The generated world.
pub struct UnixFsWorld {
    /// The directory tree (`dir` / `file` elements with name values).
    pub doc: Document,
    /// Users (ids `0..users`) then groups (ids `users..users+groups`).
    pub subjects: SubjectCatalog,
    meta: Vec<Meta>,
    users: usize,
    groups: usize,
}

impl UnixFsWorld {
    /// Generates a world.
    pub fn generate(cfg: &UnixFsConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut subjects = SubjectCatalog::new();
        for u in 0..cfg.users {
            subjects.add_user(&format!("user{u}"));
        }
        let mut primary_group = Vec::with_capacity(cfg.users);
        for g in 0..cfg.groups {
            subjects.add_group(&format!("group{g}"));
        }
        for u in 0..cfg.users {
            let g = rng.gen_range(0..cfg.groups);
            primary_group.push(g as u16);
            subjects.add_membership(SubjectId(u as u32), SubjectId((cfg.users + g) as u32));
            if rng.gen_bool(0.3) {
                let extra = rng.gen_range(0..cfg.groups);
                subjects.add_membership(SubjectId(u as u32), SubjectId((cfg.users + extra) as u32));
            }
        }

        let mut b = Document::builder();
        let mut meta: Vec<Meta> = Vec::with_capacity(cfg.nodes);
        let root_meta = Meta {
            owner: 0,
            group: 0,
            mode: 0o755,
        };
        b.open("dir");
        meta.push(root_meta);
        let mut remaining = cfg.nodes as i64 - 1;
        // Top-level areas: /home-like user trees plus shared areas.
        let mut top = 0usize;
        while remaining > 0 {
            // Area styles pair directory and file modes the way umask-driven
            // creation does: the other/group visibility of files matches
            // their directories, which is the locality DOL compresses.
            let (dir_mode, default_file_mode) = *if top.is_multiple_of(3) {
                // A user's home area: stricter styles.
                [(0o700, 0o600), (0o750, 0o640), (0o755, 0o644)]
                    .choose(&mut rng)
                    .unwrap()
            } else {
                // A shared project area: mostly world-readable.
                [
                    (0o755, 0o644),
                    (0o755, 0o644),
                    (0o775, 0o664),
                    (0o750, 0o640),
                ]
                .choose(&mut rng)
                .unwrap()
            };
            let inherited = if top.is_multiple_of(3) {
                let u = rng.gen_range(0..cfg.users) as u16;
                Meta {
                    owner: u,
                    group: primary_group[u as usize],
                    mode: dir_mode,
                }
            } else {
                Meta {
                    owner: rng.gen_range(0..cfg.users) as u16,
                    group: rng.gen_range(0..cfg.groups) as u16,
                    mode: dir_mode,
                }
            };
            top += 1;
            grow_dir(
                &mut b,
                &mut meta,
                &mut rng,
                inherited,
                default_file_mode,
                &primary_group,
                cfg,
                &mut remaining,
                1,
            );
        }
        b.close();
        let doc = b.finish().expect("balanced build");
        debug_assert_eq!(doc.len(), meta.len());
        UnixFsWorld {
            doc,
            subjects,
            meta,
            users: cfg.users,
            groups: cfg.groups,
        }
    }

    /// Total subjects (users + groups), the paper's 247 for the real system.
    pub fn subject_count(&self) -> usize {
        self.users + self.groups
    }

    /// Number of users.
    pub fn user_count(&self) -> usize {
        self.users
    }

    /// Whether `subject` (by the Unix algorithm) can access `node` in `mode`.
    pub fn accessible(&self, subject: SubjectId, node: NodeId, mode: UnixMode) -> bool {
        let m = &self.meta[node.index()];
        let shift = mode.owner_shift();
        let s = subject.index();
        if s < self.users {
            if m.owner as usize == s {
                m.mode >> shift & 1 == 1
            } else {
                m.mode >> (shift - 6) & 1 == 1 // other bit
            }
        } else {
            let g = s - self.users;
            if m.group as usize == g {
                m.mode >> (shift - 3) & 1 == 1 // group bit
            } else {
                m.mode >> (shift - 6) & 1 == 1
            }
        }
    }

    /// An [`AccessOracle`] over all subjects for one mode.
    pub fn oracle(&self, mode: UnixMode) -> UnixOracle<'_> {
        UnixOracle {
            world: self,
            mode,
            restrict: None,
        }
    }

    /// An oracle over a subject subset (rows indexed by subset position).
    pub fn oracle_for(&self, mode: UnixMode, subjects: Vec<SubjectId>) -> UnixOracle<'_> {
        UnixOracle {
            world: self,
            mode,
            restrict: Some(subjects),
        }
    }

    /// A user's effective accessibility column (user OR their groups).
    pub fn user_effective_column(&self, user: SubjectId, mode: UnixMode) -> BitVec {
        let eff = self.subjects.effective_subjects(user);
        BitVec::from_fn(self.doc.len(), |i| {
            eff.iter()
                .any(|&s| self.accessible(s, NodeId(i as u32), mode))
        })
    }

    /// One subject's accessibility column.
    pub fn subject_column(&self, subject: SubjectId, mode: UnixMode) -> BitVec {
        BitVec::from_fn(self.doc.len(), |i| {
            self.accessible(subject, NodeId(i as u32), mode)
        })
    }

    /// Samples `n` distinct subjects.
    pub fn sample_subjects(&self, n: usize, seed: u64) -> Vec<SubjectId> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut all: Vec<SubjectId> = self.subjects.iter().collect();
        all.shuffle(&mut rng);
        all.truncate(n.min(all.len()));
        all
    }
}

/// Streaming row oracle for a [`UnixFsWorld`] mode.
pub struct UnixOracle<'a> {
    world: &'a UnixFsWorld,
    mode: UnixMode,
    restrict: Option<Vec<SubjectId>>,
}

impl AccessOracle for UnixOracle<'_> {
    fn subject_count(&self) -> usize {
        self.restrict
            .as_ref()
            .map(|r| r.len())
            .unwrap_or_else(|| self.world.subject_count())
    }

    fn acl_row(&self, node: NodeId, out: &mut BitVec) {
        match &self.restrict {
            Some(list) => {
                out.resize(list.len());
                out.fill(false);
                for (i, &s) in list.iter().enumerate() {
                    if self.world.accessible(s, node, self.mode) {
                        out.set(i, true);
                    }
                }
            }
            None => {
                let w = self.world;
                let m = &w.meta[node.index()];
                let shift = self.mode.owner_shift();
                let other = m.mode >> (shift - 6) & 1 == 1;
                out.resize(w.subject_count());
                out.fill(other);
                // Owner and group overrides.
                out.set(m.owner as usize, m.mode >> shift & 1 == 1);
                out.set(w.users + m.group as usize, m.mode >> (shift - 3) & 1 == 1);
            }
        }
    }
}

/// Grows one directory subtree, inheriting metadata with occasional
/// ownership hand-offs and permission changes. Files predominantly take the
/// directory's *default file mode* — permission settings run in
/// per-directory batches on real systems, and that locality is what keeps
/// DOL transitions sparse.
#[allow(clippy::too_many_arguments)]
fn grow_dir(
    b: &mut dol_xml::DocumentBuilder,
    meta: &mut Vec<Meta>,
    rng: &mut StdRng,
    inherited: Meta,
    default_file_mode: u16,
    primary_group: &[u16],
    cfg: &UnixFsConfig,
    remaining: &mut i64,
    depth: usize,
) {
    if *remaining <= 0 {
        return;
    }
    b.open("dir");
    meta.push(inherited);
    *remaining -= 1;
    // Files in this directory: the directory default, rarely overridden.
    let files = rng.gen_range(0..12);
    for _ in 0..files {
        if *remaining <= 0 {
            break;
        }
        // Per-file overrides keep the same other-visibility as the default
        // (scripts, read-only data): one-off private files are rare enough
        // on real systems that per-directory defaults dominate.
        let mode = if rng.gen_bool(0.05) {
            *[0o664, 0o444, 0o755].choose(rng).unwrap()
        } else {
            default_file_mode
        };
        b.leaf("file", None);
        meta.push(Meta { mode, ..inherited });
        *remaining -= 1;
    }
    // Subdirectories.
    if depth < 12 {
        let subdirs = rng.gen_range(0..4);
        for _ in 0..subdirs {
            if *remaining <= 0 {
                break;
            }
            let mut child = inherited;
            let mut child_file_mode = default_file_mode;
            if rng.gen_bool(0.12) {
                let u = rng.gen_range(0..cfg.users) as u16;
                child.owner = u;
                child.group = primary_group[u as usize];
            }
            if rng.gen_bool(0.15) {
                let (dm, fm) = *[
                    (0o755, 0o644),
                    (0o750, 0o640),
                    (0o700, 0o600),
                    (0o775, 0o664),
                ]
                .choose(rng)
                .unwrap();
                child.mode = dm;
                child_file_mode = fm;
            }
            grow_dir(
                b,
                meta,
                rng,
                child,
                child_file_mode,
                primary_group,
                cfg,
                remaining,
                depth + 1,
            );
        }
    }
    b.close();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> UnixFsWorld {
        UnixFsWorld::generate(&UnixFsConfig {
            nodes: 4000,
            users: 40,
            groups: 12,
            seed: 3,
        })
    }

    #[test]
    fn generation_is_deterministic_and_sized() {
        let a = world();
        let b = world();
        assert_eq!(a.doc.to_xml(), b.doc.to_xml());
        a.doc.check_integrity().unwrap();
        assert!(a.doc.len() >= 3500, "{} nodes", a.doc.len());
        assert_eq!(a.subject_count(), 52);
    }

    #[test]
    fn unix_semantics() {
        let w = world();
        // Find a node owned by some user with mode 0o700-style privacy.
        for p in 0..w.doc.len() {
            let n = NodeId(p as u32);
            let m = &w.meta[p];
            let owner = SubjectId(m.owner.into());
            let owner_read = m.mode >> 8 & 1 == 1;
            assert_eq!(w.accessible(owner, n, UnixMode::Read), owner_read);
            // A non-owner user uses the other bit.
            let stranger = SubjectId(if m.owner == 0 { 1 } else { 0 });
            assert_eq!(
                w.accessible(stranger, n, UnixMode::Read),
                m.mode >> 2 & 1 == 1
            );
            // The owning group uses the group bit.
            let gsub = SubjectId((w.users + m.group as usize) as u32);
            assert_eq!(w.accessible(gsub, n, UnixMode::Read), m.mode >> 5 & 1 == 1);
        }
    }

    #[test]
    fn oracle_matches_direct_accessibility() {
        let w = world();
        let oracle = w.oracle(UnixMode::Write);
        let mut row = BitVec::zeros(0);
        for p in (0..w.doc.len()).step_by(97) {
            oracle.acl_row(NodeId(p as u32), &mut row);
            for s in 0..w.subject_count() {
                assert_eq!(
                    row.get(s),
                    w.accessible(SubjectId(s as u32), NodeId(p as u32), UnixMode::Write),
                    "node {p} subject {s}"
                );
            }
        }
    }

    #[test]
    fn restricted_oracle() {
        let w = world();
        let subset = w.sample_subjects(5, 1);
        let oracle = w.oracle_for(UnixMode::Read, subset.clone());
        assert_eq!(oracle.subject_count(), 5);
        let mut row = BitVec::zeros(0);
        oracle.acl_row(NodeId(10), &mut row);
        for (i, &s) in subset.iter().enumerate() {
            assert_eq!(row.get(i), w.accessible(s, NodeId(10), UnixMode::Read));
        }
    }

    #[test]
    fn effective_rights_superset_of_own() {
        let w = world();
        let u = SubjectId(3);
        let own = w.subject_column(u, UnixMode::Read);
        let eff = w.user_effective_column(u, UnixMode::Read);
        for i in 0..own.len() {
            assert!(!own.get(i) || eff.get(i));
        }
    }

    #[test]
    fn correlation_keeps_distinct_rows_small() {
        let w = world();
        let oracle = w.oracle(UnixMode::Read);
        let mut row = BitVec::zeros(0);
        let mut distinct = std::collections::HashSet::new();
        for p in 0..w.doc.len() {
            oracle.acl_row(NodeId(p as u32), &mut row);
            distinct.insert(row.clone());
        }
        // (owner, group, mode-pattern) combinations are few relative to both
        // node count and 2^subjects.
        assert!(
            distinct.len() < w.doc.len() / 4,
            "{} distinct rows",
            distinct.len()
        );
    }
}
