//! A natively group-factored portal world for subject-scaling experiments.
//!
//! [`LiveLinkWorld`](crate::livelink) reproduces the paper's measured
//! deployment by *expanding* every group rule to its member users — faithful
//! to the export format of the production system, but it materializes one
//! accessibility column per user, which caps how far a subject sweep can go.
//!
//! [`GroupedWorld`] is the same corporate shape (company → departments →
//! teams, subtree grants to the group structure, confidential
//! deny-then-regrant overrides, cross-team shares) expressed directly over
//! **physical columns**: the rule set and the document labels mention only
//! the 1 + D + D·T groups, and users exist purely as [`GroupSpace`]
//! membership rows whose rights are the OR of their transitive group
//! closure. Registering the millionth user costs a few bytes of membership
//! table and zero codebook bits — the property the `subjects` benchmark
//! sweep and `serve --subjects=N` are built to demonstrate.
//!
//! Group logical ids coincide with their physical columns (groups are
//! created first, in column order), so the [`CascadeRules`] subject space
//! *is* the physical column space.

use dol_acl::{AccessOracle, BitVec, CascadeRules, GroupSpace, SubjectId};
use dol_xml::{Document, DocumentBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct GroupedConfig {
    /// Number of departments (one group + one document subtree each).
    pub departments: usize,
    /// Teams per department.
    pub teams_per_dept: usize,
    /// Approximate folder-tree size per team area (nodes).
    pub team_size: usize,
    /// Users registered at generation time (more can be added later
    /// through the membership table without touching the document).
    pub initial_users: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GroupedConfig {
    fn default() -> Self {
        Self {
            departments: 8,
            teams_per_dept: 8,
            team_size: 90,
            initial_users: 4,
            seed: 2713,
        }
    }
}

/// The generated world: document, physical rule set, and the group space
/// that factors logical subjects onto it.
pub struct GroupedWorld {
    /// The item tree.
    pub doc: Document,
    rules: CascadeRules,
    space: GroupSpace,
    company: SubjectId,
    depts: Vec<SubjectId>,
    teams: Vec<SubjectId>,
    users: Vec<SubjectId>,
    physical: usize,
}

impl GroupedWorld {
    /// Generates a world.
    pub fn generate(cfg: &GroupedConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let d_n = cfg.departments.max(1);
        let t_n = cfg.teams_per_dept.max(1);
        let physical = 1 + d_n + d_n * t_n;

        // ---- group space: logical id == physical column ----------------
        let mut space = GroupSpace::new();
        let company = space.add_subject(&[]);
        space.bind_direct(company, company.0);
        let mut depts = Vec::with_capacity(d_n);
        let mut teams = Vec::with_capacity(d_n * t_n);
        for _ in 0..d_n {
            let g = space.add_subject(&[company]);
            space.bind_direct(g, g.0);
            depts.push(g);
        }
        for &dept in &depts {
            for _ in 0..t_n {
                let g = space.add_subject(&[dept]);
                space.bind_direct(g, g.0);
                teams.push(g);
            }
        }
        debug_assert_eq!(space.len(), physical);

        // ---- document ---------------------------------------------------
        let mut b = Document::builder();
        let root = b.open("workspace");
        let mut dept_roots = Vec::with_capacity(d_n);
        let mut team_roots = Vec::with_capacity(d_n * t_n);
        let mut confidential: Vec<(usize, usize, NodeId)> = Vec::new();
        for d in 0..d_n {
            let dr = b.open("department");
            b.attribute("name", &format!("dept{d}"));
            dept_roots.push(dr);
            for t in 0..t_n {
                let tr = b.open("team");
                b.attribute("name", &format!("team{d}.{t}"));
                team_roots.push(tr);
                if let Some(c) = grow_folders(&mut b, &mut rng, cfg.team_size) {
                    confidential.push((d, d * t_n + t, c));
                }
                b.close();
            }
            b.close();
        }
        // Cross-team shared areas, granted to a random set of teams below.
        let shared_n = (d_n * t_n / 8).max(2);
        let mut shared = Vec::with_capacity(shared_n);
        b.open("shared");
        for s in 0..shared_n {
            let f = b.open("area");
            b.attribute("name", &format!("share{s}"));
            grow_folders(&mut b, &mut rng, cfg.team_size / 2);
            b.close();
            shared.push(f);
        }
        b.close();
        b.close();
        let doc = b.finish().expect("balanced build");

        // ---- rules over physical columns only ---------------------------
        let mut rules = CascadeRules::new(physical);
        rules.add(company, root, true);
        for (d, &g) in depts.iter().enumerate() {
            if rng.gen_bool(0.85) {
                rules.add(g, dept_roots[d], true);
            }
        }
        for (i, &g) in teams.iter().enumerate() {
            if rng.gen_bool(0.95) {
                rules.add(g, team_roots[i], true);
            }
        }
        for &(d, team_idx, conf) in &confidential {
            // Confidential folder: the department loses access, the owning
            // team keeps it (Most-Specific-Override over physical columns;
            // the membership OR then gives exactly the owning team's users
            // access through their team column).
            rules.add(depts[d], conf, false);
            rules.add(teams[team_idx], conf, true);
        }
        for &area in &shared {
            for _ in 0..rng.gen_range(2..6) {
                let t = rng.gen_range(0..teams.len());
                rules.add(teams[t], area, true);
            }
            if rng.gen_bool(0.3) {
                let d = rng.gen_range(0..depts.len());
                rules.add(depts[d], area, true);
            }
        }

        // ---- initial users ----------------------------------------------
        let mut users = Vec::with_capacity(cfg.initial_users);
        for u in 0..cfg.initial_users {
            let team = teams[u % teams.len()];
            users.push(space.add_subject(&[team]));
        }

        GroupedWorld {
            doc,
            rules,
            space,
            company,
            depts,
            teams,
            users,
            physical,
        }
    }

    /// Number of physical columns (groups); the rule-set width.
    pub fn physical_subjects(&self) -> usize {
        self.physical
    }

    /// The physical-column rule set.
    pub fn rules(&self) -> &CascadeRules {
        &self.rules
    }

    /// The membership table (clone it into
    /// `SecureXmlDb::from_document_factored`).
    pub fn space(&self) -> &GroupSpace {
        &self.space
    }

    /// The company-wide group.
    pub fn company(&self) -> SubjectId {
        self.company
    }

    /// Department groups, in column order.
    pub fn depts(&self) -> &[SubjectId] {
        &self.depts
    }

    /// Team groups, flattened `d * teams_per_dept + t`, in column order.
    pub fn teams(&self) -> &[SubjectId] {
        &self.teams
    }

    /// Users registered at generation time.
    pub fn users(&self) -> &[SubjectId] {
        &self.users
    }

    /// The team the `i`-th registered user joins (round-robin), also used
    /// by callers bulk-adding users beyond `initial_users`.
    pub fn team_for(&self, i: usize) -> SubjectId {
        self.teams[i % self.teams.len()]
    }

    /// An [`AccessOracle`] labeling the document over the physical columns.
    pub fn oracle(&self) -> GroupedOracle {
        GroupedOracle {
            width: self.physical,
            transitions: self.rules.row_stream(&self.doc, None),
        }
    }

    /// A logical subject's effective accessibility column: the OR of the
    /// physical columns in its transitive group closure. The reference
    /// semantics the factored codebook must reproduce.
    pub fn user_column(&self, subject: SubjectId) -> BitVec {
        let mut col = BitVec::zeros(self.doc.len());
        for c in self.space.closure_columns(subject) {
            col.or_assign(&self.rules.column(&self.doc, SubjectId(c)));
        }
        col
    }
}

/// Grows a random folder tree of roughly `budget` nodes under the currently
/// open element, occasionally marking one folder confidential (returned).
fn grow_folders(b: &mut DocumentBuilder, rng: &mut StdRng, budget: usize) -> Option<NodeId> {
    let mut conf = None;
    let mut depth = 0usize;
    let mut n = 0usize;
    while n < budget {
        let r: f64 = rng.gen();
        if depth < 4 && r < 0.35 {
            let f = b.open("folder");
            if conf.is_none() && depth >= 1 && rng.gen_bool(0.08) {
                b.attribute("class", "confidential");
                n += 1;
                conf = Some(f);
            }
            depth += 1;
        } else if depth > 0 && r < 0.55 {
            b.close();
            depth -= 1;
        } else {
            b.leaf("doc", None);
        }
        n += 1;
    }
    while depth > 0 {
        b.close();
        depth -= 1;
    }
    conf
}

/// Precomputed document-order row stream served as an [`AccessOracle`]
/// (binary search over the transition positions — the builder asks in
/// document order, so the search is effectively O(1) amortized).
pub struct GroupedOracle {
    width: usize,
    transitions: Vec<(u64, BitVec)>,
}

impl AccessOracle for GroupedOracle {
    fn subject_count(&self) -> usize {
        self.width
    }

    fn acl_row(&self, node: NodeId, out: &mut BitVec) {
        out.resize(self.width);
        out.fill(false);
        let pos = node.0 as u64;
        let i = self.transitions.partition_point(|&(p, _)| p <= pos);
        if i > 0 {
            out.or_assign(&self.transitions[i - 1].1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_deterministically() {
        let a = GroupedWorld::generate(&GroupedConfig::default());
        let b = GroupedWorld::generate(&GroupedConfig::default());
        assert_eq!(a.doc.len(), b.doc.len());
        assert_eq!(a.physical_subjects(), 1 + 8 + 64);
        assert_eq!(a.space().len(), a.physical_subjects() + 4);
        assert!(a.doc.len() > 1000);
    }

    #[test]
    fn group_ids_coincide_with_columns() {
        let w = GroupedWorld::generate(&GroupedConfig::default());
        assert_eq!(w.space().direct_column(w.company()), Some(w.company().0));
        for &g in w.depts().iter().chain(w.teams()) {
            assert_eq!(w.space().direct_column(g), Some(g.0));
        }
        // Users have no direct column until someone grants them directly.
        for &u in w.users() {
            assert_eq!(w.space().direct_column(u), None);
        }
    }

    #[test]
    fn oracle_rows_match_per_column_cascade() {
        let cfg = GroupedConfig {
            team_size: 30,
            ..Default::default()
        };
        let w = GroupedWorld::generate(&cfg);
        let oracle = w.oracle();
        let cols: Vec<BitVec> = (0..w.physical_subjects())
            .map(|c| w.rules().column(&w.doc, SubjectId(c as u32)))
            .collect();
        let mut row = BitVec::zeros(0);
        for n in (0..w.doc.len()).step_by(7) {
            oracle.acl_row(NodeId(n as u32), &mut row);
            for (c, col) in cols.iter().enumerate() {
                assert_eq!(row.get(c), col.get(n), "node {n} column {c}");
            }
        }
    }

    #[test]
    fn user_column_is_closure_or() {
        let w = GroupedWorld::generate(&GroupedConfig::default());
        let u = w.users()[0];
        let team = w.team_for(0);
        // The user's rights contain the team's own rights...
        let team_col = w.rules().column(&w.doc, SubjectId(team.0));
        let user_col = w.user_column(u);
        for n in 0..w.doc.len() {
            if team_col.get(n) {
                assert!(user_col.get(n), "user misses team right at {n}");
            }
        }
        // ...and the closure reaches company through the department.
        let closure = w.space().closure_columns(u);
        assert!(closure.contains(&w.company().0));
        assert_eq!(closure.len(), 3, "team + dept + company");
    }
}
