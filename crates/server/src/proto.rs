//! The request/response vocabulary of the wire protocol.
//!
//! Every frame payload is one JSON object. Requests carry a client-chosen
//! `id` (echoed verbatim on the response, so pipelined requests cannot be
//! mis-attributed), a `method`, optional `params`, and an optional
//! `deadline_ms` budget that the server threads into the storage layer's
//! [`Deadline`](dol_storage::Deadline) machinery. Responses carry either a
//! `result` or a typed `error` — never both, and never a partial answer:
//! the fail-closed contract of the in-process engine extends to the wire,
//! so a refused request leaks nothing.
//!
//! The error codes are a closed set ([`ErrorCode`]) mapping the typed
//! in-process failures one-to-one, so a wire client can distinguish
//! back-off-and-retry conditions (`overloaded`, `retention_exceeded`,
//! `stale_reader`) from heal-first conditions (`poisoned`,
//! `shard_unavailable`) and hard refusals (`deadline_exceeded`,
//! `invalid_request`, `draining`).

use crate::json::Json;
use secure_xml::DbError;

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// The decoded method with its parameters.
    pub method: Method,
    /// Optional per-request budget in milliseconds, measured from the
    /// moment the server decodes the frame (queue wait counts against it).
    pub deadline_ms: Option<u64>,
}

/// Security semantics names on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireSemantics {
    /// `"none"` — unsecured evaluation (admin/debug only).
    None,
    /// `"binding"` — ε-NoK binding-level semantics.
    Binding,
    /// `"subtree"` — Gabillon–Bruno subtree-visibility semantics.
    Subtree,
}

/// A typed update operation (closures cannot cross the wire, so the
/// protocol names the mutations it admits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateOp {
    /// Set one node's accessibility bit for a subject.
    SetNodeAccess {
        /// Document position.
        pos: u64,
        /// Subject id.
        subject: u32,
        /// Grant (`true`) or revoke.
        allow: bool,
    },
    /// Set a whole subtree's accessibility for a subject.
    SetSubtreeAccess {
        /// Subtree root position.
        pos: u64,
        /// Subject id.
        subject: u32,
        /// Grant (`true`) or revoke.
        allow: bool,
    },
    /// Testing only (`ServerConfig::testing`): dirty a page, then fail the
    /// transaction — rolls back and poisons the handle, opening a degraded
    /// window the chaos harness drives recovery through.
    FailAfterDirty {
        /// Position whose page the doomed transaction dirties.
        pos: u64,
    },
}

/// A decoded method and its parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Method {
    /// Liveness probe; answers `{"pong": true}`.
    Ping,
    /// Secure query through the snapshot reader path.
    Query {
        /// The twig query text.
        query: String,
        /// Requesting subject id (ignored under `semantics: "none"`).
        subject: u32,
        /// Security semantics.
        semantics: WireSemantics,
    },
    /// One typed update through the group committer.
    Update(UpdateOp),
    /// Register a new subject: flat copy (`copy_from`) or grouped
    /// (`groups`, zero-entry-touch membership registration).
    RegisterSubject {
        /// Subject whose grants the new one copies (flat path).
        copy_from: Option<u32>,
        /// Parent groups (factored path). Mutually exclusive with
        /// `copy_from`; both empty registers an empty flat subject.
        groups: Vec<u32>,
    },
    /// Toggle one subject↔group membership edge (the subject's derived
    /// rights change live).
    SetMembership {
        /// The subject to re-home.
        subject: u32,
        /// The group whose edge changes.
        group: u32,
        /// Add (`true`) or remove the edge.
        member: bool,
    },
    /// Aggregate server statistics as JSON.
    Stats,
    /// The Prometheus-style metrics text (also served over HTTP `GET`).
    Metrics,
    /// Admin: heal a poisoned handle in process (WAL replay + verify).
    Recover,
    /// Admin: graceful drain — stop accepting, finish or deadline-out
    /// in-flight requests, flush the committer, checkpoint, exit.
    Shutdown,
}

impl Method {
    /// Stable method name (metrics label and wire string).
    pub fn name(&self) -> &'static str {
        match self {
            Method::Ping => "ping",
            Method::Query { .. } => "query",
            Method::Update(_) => "update",
            Method::RegisterSubject { .. } => "register_subject",
            Method::SetMembership { .. } => "set_membership",
            Method::Stats => "stats",
            Method::Metrics => "metrics",
            Method::Recover => "recover",
            Method::Shutdown => "shutdown",
        }
    }
}

/// The closed set of wire error codes. Fail-closed: every refusal is one of
/// these, with no partial result attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control refused the request (server or committer queue
    /// full). Nothing was applied; back off and resubmit.
    Overloaded,
    /// The serving snapshot outlived the MVCC retention window and the
    /// bounded refresh ladder did not land. Retry.
    RetentionExceeded,
    /// Legacy-protocol stale snapshot that the refresh ladder did not
    /// absorb. Retry.
    StaleReader,
    /// The database handle is poisoned: updates are refused (reads degrade
    /// to the pre-transaction snapshot). Remedy: the `recover` method.
    Poisoned,
    /// A sharded deployment could not reach a required shard.
    ShardUnavailable,
    /// The request's deadline expired before an answer was produced. The
    /// partial work was discarded — never a partial answer.
    DeadlineExceeded,
    /// The frame decoded but the request was malformed (unknown method,
    /// missing or mistyped parameter, unknown semantics, ...).
    InvalidRequest,
    /// The server is draining: no new requests are admitted.
    Draining,
    /// The operation is not enabled on this server (e.g. a testing-only
    /// update op without `--testing`).
    Forbidden,
    /// Any other typed database failure (storage, query, integrity, ...);
    /// the message carries the in-process rendering.
    Internal,
}

impl ErrorCode {
    /// The wire string of this code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::RetentionExceeded => "retention_exceeded",
            ErrorCode::StaleReader => "stale_reader",
            ErrorCode::Poisoned => "poisoned",
            ErrorCode::ShardUnavailable => "shard_unavailable",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::InvalidRequest => "invalid_request",
            ErrorCode::Draining => "draining",
            ErrorCode::Forbidden => "forbidden",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses a wire string back into the code (client side).
    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "overloaded" => ErrorCode::Overloaded,
            "retention_exceeded" => ErrorCode::RetentionExceeded,
            "stale_reader" => ErrorCode::StaleReader,
            "poisoned" => ErrorCode::Poisoned,
            "shard_unavailable" => ErrorCode::ShardUnavailable,
            "deadline_exceeded" => ErrorCode::DeadlineExceeded,
            "invalid_request" => ErrorCode::InvalidRequest,
            "draining" => ErrorCode::Draining,
            "forbidden" => ErrorCode::Forbidden,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// Maps a typed in-process failure to its wire code. Distinct in-process
/// refusals keep distinct codes so wire clients can react like in-process
/// callers do.
pub fn wire_code(e: &DbError) -> ErrorCode {
    match e {
        DbError::Overloaded => ErrorCode::Overloaded,
        DbError::RetentionExceeded { .. } => ErrorCode::RetentionExceeded,
        DbError::StaleReader { .. } => ErrorCode::StaleReader,
        DbError::Poisoned => ErrorCode::Poisoned,
        DbError::ShardUnavailable { .. } => ErrorCode::ShardUnavailable,
        DbError::DeadlineExceeded(_) => ErrorCode::DeadlineExceeded,
        _ => ErrorCode::Internal,
    }
}

/// Why a frame payload failed to decode as a request. `Malformed` closes
/// the connection (the stream cannot be trusted); `Invalid` answers a typed
/// `invalid_request` error (the stream is fine, the request is not).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Not JSON, not an object, or no usable `id`: nothing to respond to.
    Malformed,
    /// A well-framed request with a bad method or parameters; the id is
    /// echoed on the error response.
    Invalid {
        /// The request id to echo.
        id: u64,
        /// Human-readable reason.
        reason: String,
    },
}

fn param_u64(params: &Json, key: &str) -> Result<u64, String> {
    params
        .get(key)
        .and_then(Json::as_uint)
        .ok_or_else(|| format!("missing or invalid `{key}`"))
}

fn param_u32(params: &Json, key: &str) -> Result<u32, String> {
    let v = param_u64(params, key)?;
    u32::try_from(v).map_err(|_| format!("`{key}` out of range"))
}

fn param_bool(params: &Json, key: &str) -> Result<bool, String> {
    params
        .get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing or invalid `{key}`"))
}

fn param_groups(params: &Json, key: &str) -> Result<Vec<u32>, String> {
    match params.get(key) {
        None => Ok(Vec::new()),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| {
                v.as_uint()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| format!("`{key}` entries must be u32"))
            })
            .collect(),
        Some(_) => Err(format!("`{key}` must be an array")),
    }
}

/// Decodes one frame payload into a [`Request`].
pub fn decode_request(payload: &[u8]) -> Result<Request, DecodeError> {
    let v = crate::json::parse(payload).map_err(|_| DecodeError::Malformed)?;
    let id = v
        .get("id")
        .and_then(Json::as_uint)
        .ok_or(DecodeError::Malformed)?;
    let invalid = |reason: String| DecodeError::Invalid { id, reason };
    let name = v
        .get("method")
        .and_then(Json::as_str)
        .ok_or_else(|| invalid("missing `method`".into()))?;
    let deadline_ms = match v.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(d) => Some(
            d.as_uint()
                .ok_or_else(|| invalid("`deadline_ms` must be a non-negative integer".into()))?,
        ),
    };
    let empty = Json::Obj(Default::default());
    let params = v.get("params").unwrap_or(&empty);
    let method = match name {
        "ping" => Method::Ping,
        "query" => {
            let query = params
                .get("query")
                .and_then(Json::as_str)
                .ok_or_else(|| invalid("missing `query`".into()))?
                .to_string();
            let semantics = match params.get("semantics").and_then(Json::as_str) {
                Some("binding") | None => WireSemantics::Binding,
                Some("subtree") => WireSemantics::Subtree,
                Some("none") => WireSemantics::None,
                Some(other) => return Err(invalid(format!("unknown semantics `{other}`"))),
            };
            let subject = if matches!(semantics, WireSemantics::None) {
                params.get("subject").and_then(Json::as_uint).unwrap_or(0) as u32
            } else {
                param_u32(params, "subject").map_err(invalid)?
            };
            Method::Query {
                query,
                subject,
                semantics,
            }
        }
        "update" => {
            let op = params
                .get("op")
                .and_then(Json::as_str)
                .ok_or_else(|| invalid("missing `op`".into()))?;
            let update = match op {
                "set_node_access" => UpdateOp::SetNodeAccess {
                    pos: param_u64(params, "pos").map_err(invalid)?,
                    subject: param_u32(params, "subject").map_err(invalid)?,
                    allow: param_bool(params, "allow").map_err(invalid)?,
                },
                "set_subtree_access" => UpdateOp::SetSubtreeAccess {
                    pos: param_u64(params, "pos").map_err(invalid)?,
                    subject: param_u32(params, "subject").map_err(invalid)?,
                    allow: param_bool(params, "allow").map_err(invalid)?,
                },
                "fail_after_dirty" => UpdateOp::FailAfterDirty {
                    pos: param_u64(params, "pos").map_err(invalid)?,
                },
                other => return Err(invalid(format!("unknown update op `{other}`"))),
            };
            Method::Update(update)
        }
        "register_subject" => Method::RegisterSubject {
            copy_from: match params.get("copy_from") {
                None | Some(Json::Null) => None,
                Some(c) => Some(
                    c.as_uint()
                        .and_then(|n| u32::try_from(n).ok())
                        .ok_or_else(|| invalid("`copy_from` must be a u32".into()))?,
                ),
            },
            groups: param_groups(params, "groups").map_err(invalid)?,
        },
        "set_membership" => Method::SetMembership {
            subject: param_u32(params, "subject").map_err(invalid)?,
            group: param_u32(params, "group").map_err(invalid)?,
            member: param_bool(params, "member").map_err(invalid)?,
        },
        "stats" => Method::Stats,
        "metrics" => Method::Metrics,
        "recover" => Method::Recover,
        "shutdown" => Method::Shutdown,
        other => return Err(invalid(format!("unknown method `{other}`"))),
    };
    Ok(Request {
        id,
        method,
        deadline_ms,
    })
}

/// Encodes a request (client side).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut top = vec![
        ("id", Json::Int(req.id as i64)),
        ("method", Json::Str(req.method.name().into())),
    ];
    if let Some(ms) = req.deadline_ms {
        top.push(("deadline_ms", Json::Int(ms as i64)));
    }
    let params = match &req.method {
        Method::Ping | Method::Stats | Method::Metrics | Method::Recover | Method::Shutdown => None,
        Method::Query {
            query,
            subject,
            semantics,
        } => Some(Json::obj(vec![
            ("query", Json::Str(query.clone())),
            ("subject", Json::Int(i64::from(*subject))),
            (
                "semantics",
                Json::Str(
                    match semantics {
                        WireSemantics::None => "none",
                        WireSemantics::Binding => "binding",
                        WireSemantics::Subtree => "subtree",
                    }
                    .into(),
                ),
            ),
        ])),
        Method::Update(op) => Some(match op {
            UpdateOp::SetNodeAccess {
                pos,
                subject,
                allow,
            } => Json::obj(vec![
                ("op", Json::Str("set_node_access".into())),
                ("pos", Json::Int(*pos as i64)),
                ("subject", Json::Int(i64::from(*subject))),
                ("allow", Json::Bool(*allow)),
            ]),
            UpdateOp::SetSubtreeAccess {
                pos,
                subject,
                allow,
            } => Json::obj(vec![
                ("op", Json::Str("set_subtree_access".into())),
                ("pos", Json::Int(*pos as i64)),
                ("subject", Json::Int(i64::from(*subject))),
                ("allow", Json::Bool(*allow)),
            ]),
            UpdateOp::FailAfterDirty { pos } => Json::obj(vec![
                ("op", Json::Str("fail_after_dirty".into())),
                ("pos", Json::Int(*pos as i64)),
            ]),
        }),
        Method::RegisterSubject { copy_from, groups } => {
            let mut p = Vec::new();
            if let Some(c) = copy_from {
                p.push(("copy_from", Json::Int(i64::from(*c))));
            }
            p.push((
                "groups",
                Json::Arr(groups.iter().map(|&g| Json::Int(i64::from(g))).collect()),
            ));
            Some(Json::obj(p))
        }
        Method::SetMembership {
            subject,
            group,
            member,
        } => Some(Json::obj(vec![
            ("subject", Json::Int(i64::from(*subject))),
            ("group", Json::Int(i64::from(*group))),
            ("member", Json::Bool(*member)),
        ])),
    };
    if let Some(p) = params {
        top.push(("params", p));
    }
    Json::obj(top).encode().into_bytes()
}

/// Encodes a success response.
pub fn ok_response(id: u64, result: Json) -> Vec<u8> {
    Json::obj(vec![("id", Json::Int(id as i64)), ("result", result)])
        .encode()
        .into_bytes()
}

/// Encodes a typed error response (fail-closed: no result attached).
pub fn err_response(id: u64, code: ErrorCode, message: &str) -> Vec<u8> {
    Json::obj(vec![
        ("id", Json::Int(id as i64)),
        (
            "error",
            Json::obj(vec![
                ("code", Json::Str(code.as_str().into())),
                ("message", Json::Str(message.into())),
            ]),
        ),
    ])
    .encode()
    .into_bytes()
}

/// A decoded response (client side): the echoed id plus either a result or
/// a typed error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The echoed request id.
    pub id: u64,
    /// `Ok(result)` or `Err((code, message))`.
    pub outcome: Result<Json, (ErrorCode, String)>,
}

/// Decodes a response frame payload (client side).
pub fn decode_response(payload: &[u8]) -> Option<Response> {
    let v = crate::json::parse(payload).ok()?;
    let id = v.get("id").and_then(Json::as_uint)?;
    if let Some(err) = v.get("error") {
        let code = ErrorCode::parse(err.get("code").and_then(Json::as_str)?)?;
        let message = err
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        return Some(Response {
            id,
            outcome: Err((code, message)),
        });
    }
    let result = v.get("result")?.clone();
    Some(Response {
        id,
        outcome: Ok(result),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let cases = vec![
            Request {
                id: 1,
                method: Method::Ping,
                deadline_ms: None,
            },
            Request {
                id: 7,
                method: Method::Query {
                    query: "//a[b=\"x\"]/c".into(),
                    subject: 3,
                    semantics: WireSemantics::Subtree,
                },
                deadline_ms: Some(250),
            },
            Request {
                id: u64::from(u32::MAX),
                method: Method::Update(UpdateOp::SetSubtreeAccess {
                    pos: 99,
                    subject: 2,
                    allow: false,
                }),
                deadline_ms: None,
            },
            Request {
                id: 3,
                method: Method::RegisterSubject {
                    copy_from: None,
                    groups: vec![4, 5],
                },
                deadline_ms: None,
            },
            Request {
                id: 4,
                method: Method::SetMembership {
                    subject: 9,
                    group: 4,
                    member: true,
                },
                deadline_ms: Some(0),
            },
            Request {
                id: 5,
                method: Method::Shutdown,
                deadline_ms: None,
            },
        ];
        for req in cases {
            let bytes = encode_request(&req);
            let back = decode_request(&bytes).expect("decode");
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_roundtrip_and_echo_ids() {
        let ok = ok_response(42, Json::obj(vec![("pong", Json::Bool(true))]));
        let r = decode_response(&ok).unwrap();
        assert_eq!(r.id, 42);
        assert_eq!(
            r.outcome.unwrap().get("pong").and_then(Json::as_bool),
            Some(true)
        );

        let err = err_response(43, ErrorCode::Overloaded, "queue full");
        let r = decode_response(&err).unwrap();
        assert_eq!(r.id, 43);
        let (code, msg) = r.outcome.unwrap_err();
        assert_eq!(code, ErrorCode::Overloaded);
        assert_eq!(msg, "queue full");
    }

    #[test]
    fn malformed_vs_invalid_is_the_close_vs_respond_split() {
        // Garbage: close the connection.
        assert_eq!(decode_request(b"not json"), Err(DecodeError::Malformed));
        // JSON without an id: nothing to respond to, close.
        assert_eq!(
            decode_request(b"{\"method\":\"ping\"}"),
            Err(DecodeError::Malformed)
        );
        // A good id with a bad method: typed error response, keep the
        // connection.
        match decode_request(b"{\"id\":9,\"method\":\"frobnicate\"}") {
            Err(DecodeError::Invalid { id: 9, .. }) => {}
            other => panic!("expected Invalid with echoed id, got {other:?}"),
        }
        match decode_request(b"{\"id\":10,\"method\":\"query\",\"params\":{}}") {
            Err(DecodeError::Invalid { id: 10, .. }) => {}
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn every_dberror_maps_to_a_distinct_refusal_where_it_matters() {
        use secure_xml::DbError;
        assert_eq!(wire_code(&DbError::Overloaded), ErrorCode::Overloaded);
        assert_eq!(
            wire_code(&DbError::RetentionExceeded {
                seen: 0,
                oldest: 1,
                now: 2
            }),
            ErrorCode::RetentionExceeded
        );
        assert_eq!(
            wire_code(&DbError::StaleReader { seen: 0, now: 1 }),
            ErrorCode::StaleReader
        );
        assert_eq!(wire_code(&DbError::Poisoned), ErrorCode::Poisoned);
        assert_eq!(
            wire_code(&DbError::ShardUnavailable {
                shard: 1,
                cause: Box::new(DbError::Poisoned)
            }),
            ErrorCode::ShardUnavailable
        );
        assert_eq!(
            wire_code(&DbError::DeadlineExceeded(Default::default())),
            ErrorCode::DeadlineExceeded
        );
        assert_eq!(wire_code(&DbError::InvalidNode(3)), ErrorCode::Internal);
        // And the codes survive the wire.
        for code in [
            ErrorCode::Overloaded,
            ErrorCode::RetentionExceeded,
            ErrorCode::StaleReader,
            ErrorCode::Poisoned,
            ErrorCode::ShardUnavailable,
            ErrorCode::DeadlineExceeded,
            ErrorCode::InvalidRequest,
            ErrorCode::Draining,
            ErrorCode::Forbidden,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
        }
    }
}
