//! Length-prefixed, CRC-framed records over a byte stream.
//!
//! One frame is `[len: u32 LE][crc: u32 LE][payload: len bytes]`, where
//! `crc` is CRC-32C of the payload (the same polynomial the storage layer
//! trailers every page with). The decoder is the trust boundary of the
//! server: it must survive arbitrary bytes from the network, so every
//! failure mode is a typed [`FrameError`] and none of them can panic, hang
//! past the socket's read timeout, or allocate more than
//! [`max_frame`](read_frame) bytes:
//!
//! * a clean EOF **between** frames is a normal close (`Ok(None)`);
//! * an EOF or timeout **inside** a frame is a torn frame;
//! * a length above the cap is refused before any payload is read;
//! * a CRC mismatch (bit flip in transit or a desynchronized stream) is
//!   surfaced as [`FrameError::Crc`].
//!
//! On any `Err` the connection is closed — framing cannot resynchronize a
//! corrupt stream, and the database is never touched by an undecoded frame.

use dol_storage::checksum::crc32c;
use std::io::{self, Read, Write};

/// Frame header size: length + CRC, both little-endian `u32`.
pub const HEADER_SIZE: usize = 8;

/// Default cap on a single frame's payload (1 MiB): larger than any
/// legitimate protocol message by orders of magnitude, small enough that a
/// hostile length prefix cannot balloon server memory.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Why a frame could not be decoded. Every variant closes the connection.
#[derive(Debug)]
pub enum FrameError {
    /// The stream ended (or timed out) mid-header or mid-payload.
    Torn,
    /// The length prefix exceeded the frame cap.
    Oversize(usize),
    /// The payload's CRC-32C did not match the header.
    Crc {
        /// The checksum the header promised.
        expect: u32,
        /// The checksum of the payload actually read.
        got: u32,
    },
    /// The underlying socket failed (reset, shutdown, timeout, ...).
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Torn => write!(f, "torn frame (EOF inside a record)"),
            FrameError::Oversize(n) => write!(f, "frame of {n} bytes exceeds the cap"),
            FrameError::Crc { expect, got } => {
                write!(
                    f,
                    "frame CRC mismatch (header {expect:#010x}, payload {got:#010x})"
                )
            }
            FrameError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

/// Reads bytes until `buf` is full. Distinguishes EOF-before-any-byte
/// (`Ok(false)`) from EOF-midway (`Err(Torn)`).
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<bool, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(FrameError::Torn)
                }
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // A read timeout: idle between frames is a quiet close-worthy
                // condition, a stall inside one is a torn frame. Either way
                // the caller closes; report which for the log line.
                return if filled == 0 {
                    Err(FrameError::Io(e))
                } else {
                    Err(FrameError::Torn)
                };
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(true)
}

/// Reads one frame. `Ok(None)` is a clean close (EOF exactly on a frame
/// boundary). `preread` carries bytes already consumed from the stream by a
/// protocol sniffer (the `/metrics` HTTP peek) — they are treated as the
/// first header bytes.
pub fn read_frame(
    r: &mut impl Read,
    preread: &[u8],
    max_frame: usize,
) -> Result<Option<Vec<u8>>, FrameError> {
    debug_assert!(preread.len() <= HEADER_SIZE);
    let mut header = [0u8; HEADER_SIZE];
    header[..preread.len()].copy_from_slice(preread);
    if preread.is_empty() {
        if !read_full(r, &mut header)? {
            return Ok(None);
        }
    } else if preread.len() < HEADER_SIZE && !read_full(r, &mut header[preread.len()..])? {
        return Err(FrameError::Torn);
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let expect = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > max_frame {
        return Err(FrameError::Oversize(len));
    }
    let mut payload = vec![0u8; len];
    if !read_full(r, &mut payload)? && len > 0 {
        return Err(FrameError::Torn);
    }
    let got = crc32c(&payload);
    if got != expect {
        return Err(FrameError::Crc { expect, got });
    }
    Ok(Some(payload))
}

/// Writes one frame (header + payload) and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let mut header = [0u8; HEADER_SIZE];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&crc32c(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Encodes one frame into a buffer (for tests and the client).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_SIZE + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32c(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrips_frames_back_to_back() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, &[0xAB; 300]).unwrap();
        let mut r = Cursor::new(wire);
        assert_eq!(
            read_frame(&mut r, &[], DEFAULT_MAX_FRAME).unwrap().unwrap(),
            b"hello"
        );
        assert_eq!(
            read_frame(&mut r, &[], DEFAULT_MAX_FRAME).unwrap().unwrap(),
            b""
        );
        assert_eq!(
            read_frame(&mut r, &[], DEFAULT_MAX_FRAME).unwrap().unwrap(),
            vec![0xAB; 300]
        );
        assert!(
            read_frame(&mut r, &[], DEFAULT_MAX_FRAME)
                .unwrap()
                .is_none(),
            "EOF on a boundary is a clean close"
        );
    }

    #[test]
    fn preread_bytes_splice_into_the_header() {
        let wire = encode_frame(b"spliced");
        let (head, rest) = wire.split_at(3);
        let mut r = Cursor::new(rest.to_vec());
        assert_eq!(
            read_frame(&mut r, head, DEFAULT_MAX_FRAME)
                .unwrap()
                .unwrap(),
            b"spliced"
        );
    }

    #[test]
    fn torn_oversize_and_flipped_frames_are_typed_errors() {
        // Torn header.
        let mut r = Cursor::new(vec![1, 2, 3]);
        assert!(matches!(
            read_frame(&mut r, &[], DEFAULT_MAX_FRAME),
            Err(FrameError::Torn)
        ));
        // Torn payload.
        let mut wire = encode_frame(b"truncate me");
        wire.truncate(HEADER_SIZE + 4);
        let mut r = Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut r, &[], DEFAULT_MAX_FRAME),
            Err(FrameError::Torn)
        ));
        // Oversize length prefix refused before the payload allocation.
        let mut huge = Vec::new();
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&0u32.to_le_bytes());
        let mut r = Cursor::new(huge);
        assert!(matches!(
            read_frame(&mut r, &[], 1024),
            Err(FrameError::Oversize(_))
        ));
        // One flipped payload bit.
        let mut wire = encode_frame(b"bitflip");
        let last = wire.len() - 1;
        wire[last] ^= 0x40;
        let mut r = Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut r, &[], DEFAULT_MAX_FRAME),
            Err(FrameError::Crc { .. })
        ));
    }
}
