//! A small blocking client for the framed protocol — the other half of the
//! wire contract, used by the loopback benchmark harness, the tests, and
//! anything else that wants typed access to a running server.

use crate::frame::{self, FrameError};
use crate::json::Json;
use crate::proto::{self, ErrorCode, Method, Request, UpdateOp, WireSemantics};
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// Why a call failed on the client side.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (connect, write, or read).
    Io(io::Error),
    /// The response stream was torn, oversize, or failed its CRC.
    Frame(FrameError),
    /// The response decoded but violated the protocol (bad JSON shape or a
    /// mismatched request id).
    Protocol(String),
    /// The server answered with a typed refusal.
    Server(ErrorCode, String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Frame(e) => write!(f, "frame: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Server(code, m) => write!(f, "server {}: {m}", code.as_str()),
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking connection to a [`Server`](crate::Server). One request in
/// flight at a time ([`call`](Self::call) writes, then reads the matching
/// response); pipelining tests drive frames by hand instead.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    max_frame: usize,
}

impl Client {
    /// Connects, with TCP_NODELAY and a read timeout so a dead server
    /// surfaces as an error instead of a hang.
    pub fn connect(addr: &str, read_timeout: Duration) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(read_timeout))?;
        Ok(Client {
            stream,
            next_id: 1,
            max_frame: frame::DEFAULT_MAX_FRAME,
        })
    }

    /// Sends one request and blocks for its response. Returns the `result`
    /// object, or [`ClientError::Server`] carrying the typed refusal.
    pub fn call(&mut self, method: Method, deadline_ms: Option<u64>) -> Result<Json, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let req = Request {
            id,
            method,
            deadline_ms,
        };
        frame::write_frame(&mut self.stream, &proto::encode_request(&req))?;
        let payload = match frame::read_frame(&mut self.stream, &[], self.max_frame) {
            Ok(Some(p)) => p,
            Ok(None) => {
                return Err(ClientError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed before responding",
                )))
            }
            Err(e) => return Err(ClientError::Frame(e)),
        };
        let resp = proto::decode_response(&payload)
            .ok_or_else(|| ClientError::Protocol("undecodable response".into()))?;
        if resp.id != id {
            return Err(ClientError::Protocol(format!(
                "response id {} for request {id}",
                resp.id
            )));
        }
        match resp.outcome {
            Ok(result) => Ok(result),
            Err((code, message)) => Err(ClientError::Server(code, message)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call(Method::Ping, None).map(|_| ())
    }

    /// Runs a secure query; returns the matched node positions.
    pub fn query(
        &mut self,
        query: &str,
        subject: u32,
        semantics: WireSemantics,
        deadline_ms: Option<u64>,
    ) -> Result<Vec<u64>, ClientError> {
        let result = self.call(
            Method::Query {
                query: query.to_string(),
                subject,
                semantics,
            },
            deadline_ms,
        )?;
        let arr = result
            .get("matches")
            .and_then(|m| match m {
                Json::Arr(a) => Some(a),
                _ => None,
            })
            .ok_or_else(|| ClientError::Protocol("query result missing `matches`".into()))?;
        arr.iter()
            .map(|v| {
                v.as_uint()
                    .ok_or_else(|| ClientError::Protocol("non-integer match".into()))
            })
            .collect()
    }

    /// Submits one typed update through the server's group committer.
    pub fn update(&mut self, op: UpdateOp, deadline_ms: Option<u64>) -> Result<(), ClientError> {
        self.call(Method::Update(op), deadline_ms).map(|_| ())
    }

    /// Registers a subject; returns its id.
    pub fn register_subject(
        &mut self,
        copy_from: Option<u32>,
        groups: &[u32],
    ) -> Result<u32, ClientError> {
        let result = self.call(
            Method::RegisterSubject {
                copy_from,
                groups: groups.to_vec(),
            },
            None,
        )?;
        result
            .get("subject")
            .and_then(Json::as_uint)
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| ClientError::Protocol("register result missing `subject`".into()))
    }

    /// Toggles one subject↔group membership edge.
    pub fn set_membership(
        &mut self,
        subject: u32,
        group: u32,
        member: bool,
    ) -> Result<bool, ClientError> {
        let result = self.call(
            Method::SetMembership {
                subject,
                group,
                member,
            },
            None,
        )?;
        result
            .get("changed")
            .and_then(Json::as_bool)
            .ok_or_else(|| ClientError::Protocol("set_membership result missing `changed`".into()))
    }

    /// Fetches the aggregate statistics object.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.call(Method::Stats, None)
    }

    /// Fetches the Prometheus text exposition over the framed protocol.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        let result = self.call(Method::Metrics, None)?;
        result
            .get("text")
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| ClientError::Protocol("metrics result missing `text`".into()))
    }

    /// Asks a poisoned server to recover in place; returns whether a
    /// recovery actually ran.
    pub fn recover(&mut self) -> Result<bool, ClientError> {
        let result = self.call(Method::Recover, None)?;
        result
            .get("recovered")
            .and_then(Json::as_bool)
            .ok_or_else(|| ClientError::Protocol("recover result missing `recovered`".into()))
    }

    /// Requests a graceful drain. The server responds, then stops
    /// admitting work and shuts down once in-flight requests finish.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.call(Method::Shutdown, None).map(|_| ())
    }
}
