//! A minimal JSON value, encoder, and recursive-descent parser.
//!
//! The wire protocol needs exactly the JSON subset implemented here:
//! objects, arrays, strings, 64-bit signed integers, booleans, and `null`.
//! Floating-point literals are rejected — nothing on the wire is fractional,
//! and refusing them keeps round-tripping exact. The parser is hardened for
//! untrusted input: input length is already bounded by the frame decoder,
//! nesting depth is capped at [`MAX_DEPTH`] (a bit-flipped frame must not
//! overflow the stack), and every error is a typed [`JsonError`] — no panics
//! on any byte sequence, which the decoder property test exercises.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts. Well-formed protocol messages
/// nest 3–4 levels; 32 leaves headroom without risking deep recursion on
/// adversarial input.
pub const MAX_DEPTH: usize = 32;

/// A parsed JSON value (the protocol subset — integers only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A 64-bit signed integer (floats are rejected at parse time).
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps encoding deterministic (sorted keys),
    /// which the bench fingerprints rely on.
    Obj(BTreeMap<String, Json>),
}

/// Why a byte sequence failed to parse as protocol JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Unexpected byte or premature end of input at this offset.
    Syntax(usize),
    /// Nesting exceeded [`MAX_DEPTH`].
    TooDeep,
    /// A number literal was fractional, exponential, or out of `i64` range.
    BadNumber(usize),
    /// A string literal contained an invalid escape or raw control byte.
    BadString(usize),
    /// Valid JSON followed by trailing non-whitespace bytes.
    Trailing(usize),
    /// The input was not valid UTF-8.
    Utf8,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonError::Syntax(at) => write!(f, "syntax error at byte {at}"),
            JsonError::TooDeep => write!(f, "nesting deeper than {MAX_DEPTH}"),
            JsonError::BadNumber(at) => write!(f, "unsupported number at byte {at}"),
            JsonError::BadString(at) => write!(f, "bad string at byte {at}"),
            JsonError::Trailing(at) => write!(f, "trailing bytes at {at}"),
            JsonError::Utf8 => write!(f, "input is not UTF-8"),
        }
    }
}

impl Json {
    /// Convenience constructor for an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on an object (`None` on other variants or missing key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer widened to `u64`.
    pub fn as_uint(&self) -> Option<u64> {
        match self {
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Encodes the value as compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => encode_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.encode_into(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses `bytes` as one JSON value (the protocol subset). Never panics.
pub fn parse(bytes: &[u8]) -> Result<Json, JsonError> {
    let text = std::str::from_utf8(bytes).map_err(|_| JsonError::Utf8)?;
    let mut p = Parser {
        b: text.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.at != p.b.len() {
        return Err(JsonError::Trailing(p.at));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.at += 1;
            Ok(())
        } else {
            Err(JsonError::Syntax(self.at))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(JsonError::Syntax(self.at))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::TooDeep);
        }
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(JsonError::Syntax(self.at)),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let digits_start = self.at;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.at += 1;
        }
        if self.at == digits_start {
            return Err(JsonError::Syntax(start));
        }
        // Fractions and exponents are outside the protocol subset.
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(JsonError::BadNumber(start));
        }
        // SAFETY of unwrap-free parse: the slice is ASCII digits with an
        // optional leading '-'; only overflow can fail.
        let text = std::str::from_utf8(&self.b[start..self.at]).map_err(|_| JsonError::Utf8)?;
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| JsonError::BadNumber(start))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        let start = self.at;
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            // Scan a run of plain bytes, then handle the interesting one.
            let run_start = self.at;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.at += 1;
            }
            // The parser input was validated UTF-8 and runs break only at
            // ASCII bytes, so the run is valid UTF-8.
            out.push_str(
                std::str::from_utf8(&self.b[run_start..self.at]).map_err(|_| JsonError::Utf8)?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.at += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: accept a following low
                            // surrogate; lone surrogates are rejected.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.b[self.at..].starts_with(b"\\u") {
                                    self.at += 2;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(JsonError::BadString(start));
                                    }
                                    let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(c).ok_or(JsonError::BadString(start))?
                                } else {
                                    return Err(JsonError::BadString(start));
                                }
                            } else {
                                char::from_u32(cp).ok_or(JsonError::BadString(start))?
                            };
                            out.push(c);
                            continue; // hex4 advanced past the escape
                        }
                        _ => return Err(JsonError::BadString(start)),
                    }
                    self.at += 1;
                }
                _ => return Err(JsonError::BadString(start)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let s = self
            .b
            .get(self.at..self.at + 4)
            .ok_or(JsonError::BadString(self.at))?;
        let mut v = 0u32;
        for &c in s {
            v = v * 16
                + match c {
                    b'0'..=b'9' => (c - b'0') as u32,
                    b'a'..=b'f' => (c - b'a' + 10) as u32,
                    b'A'..=b'F' => (c - b'A' + 10) as u32,
                    _ => return Err(JsonError::BadString(self.at)),
                };
        }
        self.at += 4;
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::Syntax(self.at)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            m.insert(k, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(JsonError::Syntax(self.at)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        let text = v.encode();
        let back = parse(text.as_bytes()).expect("reparse");
        assert_eq!(&back, v, "round-trip through {text}");
    }

    #[test]
    fn roundtrips_the_protocol_shapes() {
        roundtrip(&Json::Null);
        roundtrip(&Json::Bool(true));
        roundtrip(&Json::Int(-42));
        roundtrip(&Json::Int(i64::MAX));
        roundtrip(&Json::Int(i64::MIN));
        roundtrip(&Json::Str("hello \"world\"\n\\ \t \u{1} ünïcode 🦀".into()));
        roundtrip(&Json::obj(vec![
            ("id", Json::Int(7)),
            ("method", Json::Str("query".into())),
            (
                "params",
                Json::obj(vec![
                    ("query", Json::Str("//a/b".into())),
                    ("subject", Json::Int(3)),
                    (
                        "matches",
                        Json::Arr(vec![Json::Int(1), Json::Int(2), Json::Int(3)]),
                    ),
                ]),
            ),
        ]));
    }

    #[test]
    fn rejects_what_the_protocol_rejects() {
        assert!(parse(b"1.5").is_err(), "floats are out of the subset");
        assert!(parse(b"1e3").is_err());
        assert!(parse(b"99999999999999999999").is_err(), "i64 overflow");
        assert!(parse(b"{\"a\":1} junk").is_err(), "trailing bytes");
        assert!(parse(b"\"\\ud800\"").is_err(), "lone surrogate");
        assert!(parse(&[0xff, 0xfe]).is_err(), "not UTF-8");
        assert!(parse(b"").is_err());
        assert!(parse(b"[1,2,").is_err(), "truncated");
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert_eq!(parse(deep.as_bytes()), Err(JsonError::TooDeep));
    }

    #[test]
    fn escapes_decode() {
        assert_eq!(
            parse(br#""a\u0041\n\u00e9\ud83e\udd80""#).unwrap(),
            Json::Str("aA\né🦀".into())
        );
    }

    #[test]
    fn accessors() {
        let v = Json::obj(vec![
            ("n", Json::Int(5)),
            ("s", Json::Str("x".into())),
            ("b", Json::Bool(false)),
            ("a", Json::Arr(vec![Json::Int(1)])),
        ]);
        assert_eq!(v.get("n").and_then(Json::as_int), Some(5));
        assert_eq!(v.get("n").and_then(Json::as_uint), Some(5));
        assert_eq!(Json::Int(-1).as_uint(), None);
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("a").and_then(Json::as_arr).map(|a| a.len()), Some(1));
        assert!(v.get("missing").is_none());
        assert!(Json::Int(1).get("x").is_none());
    }
}
