//! The wire front door: a TCP server speaking the framed JSON protocol.
//!
//! ## Architecture
//!
//! One **accept thread** polls a non-blocking listener so it can also watch
//! the drain flag. Each connection gets a **reader thread** (frame decode,
//! admission control, deadline stamping) and a **worker thread** (method
//! execution, response writing) joined by a channel — so the reader keeps
//! consuming the socket while a request executes, which is what lets a
//! client disconnect *cancel* its in-flight requests: the reader sees the
//! EOF and fires every [`CancelToken`] it registered.
//!
//! ## Robustness properties
//!
//! * **Admission control**: a server-wide in-flight cap; a request that
//!   finds the window full is refused with `overloaded` before any work
//!   happens. The slot is held by an RAII guard, so every exit path —
//!   success, typed error, cancelled client, worker exit — releases it.
//! * **Fail closed**: a refused or failed request is answered with a typed
//!   error and nothing else; partial answers never reach the wire (the
//!   engine already guarantees this in-process; the server maps each
//!   [`DbError`] to its wire code and attaches no result).
//! * **Deadlines**: `deadline_ms` starts at decode time, so queue wait
//!   counts against the budget. A request whose deadline expired before
//!   dispatch is refused with `deadline_exceeded` — even when a warm cache
//!   could have answered it — keeping wire availability accounting aligned
//!   with the in-process benchmarks' bounded-refusal column.
//! * **Degraded serving**: a poisoned database keeps answering queries
//!   (pre-transaction mirror snapshots) while updates are refused with
//!   `poisoned`; the `recover` admin method heals in place.
//! * **Graceful drain**: `shutdown` (or [`Server::drain`]) stops the
//!   accept loop, half-closes every connection's read side, lets in-flight
//!   requests finish (or deadline out), flushes and closes the group
//!   committer, and checkpoints the database before [`Server::wait`]
//!   returns.

use crate::frame;
use crate::json::Json;
use crate::metrics::Metrics;
use crate::proto::{self, DecodeError, ErrorCode, Method, Request, UpdateOp, WireSemantics};
use dol_acl::SubjectId;
use secure_xml::{
    DbError, Deadline, ExecOptions, GroupCommitConfig, GroupCommitter, SecureXmlDb, Security,
    ServerStats,
};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::thread;
use std::time::{Duration, Instant};

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`"127.0.0.1:0"` picks an ephemeral port; read it back
    /// with [`Server::local_addr`]).
    pub addr: String,
    /// Per-frame payload cap (see [`frame::DEFAULT_MAX_FRAME`]).
    pub max_frame: usize,
    /// Server-wide in-flight request cap (admission control): requests over
    /// it are refused with `overloaded`.
    pub max_inflight: usize,
    /// Socket read timeout: a connection idle past it is closed.
    pub idle_timeout: Duration,
    /// Query latency (µs) at or above which the slow-query counter bumps.
    pub slow_query_us: u64,
    /// Retry budget for the snapshot-refresh/backoff ladder under each
    /// `query` request.
    pub query_retries: u32,
    /// Group-committer tuning for the `update` path.
    pub commit: GroupCommitConfig,
    /// Enables testing-only operations (`fail_after_dirty`): off in
    /// production, on in the chaos harness.
    pub testing: bool,
    /// Base seed for the per-connection jittered retry backoff.
    pub seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            max_frame: frame::DEFAULT_MAX_FRAME,
            max_inflight: 64,
            idle_timeout: Duration::from_secs(30),
            slow_query_us: 50_000,
            query_retries: 3,
            commit: GroupCommitConfig::default(),
            testing: false,
            seed: 1,
        }
    }
}

/// Counting semaphore for admission control; slots release by RAII.
struct Admission {
    cap: usize,
    used: AtomicUsize,
}

impl Admission {
    fn try_acquire(self: &Arc<Self>) -> Option<AdmissionSlot> {
        let mut cur = self.used.load(Ordering::Acquire);
        loop {
            if cur >= self.cap {
                return None;
            }
            match self
                .used
                .compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    return Some(AdmissionSlot {
                        adm: Arc::clone(self),
                    })
                }
                Err(now) => cur = now,
            }
        }
    }

    fn in_flight(&self) -> usize {
        self.used.load(Ordering::Acquire)
    }
}

/// An occupied admission slot; dropping it (any exit path) frees the slot.
struct AdmissionSlot {
    adm: Arc<Admission>,
}

impl Drop for AdmissionSlot {
    fn drop(&mut self) {
        self.adm.used.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Poison-tolerant lock helpers: a panicked writer must not wedge the
/// server (the database has its own poison latch for logical corruption).
fn rlock(db: &RwLock<SecureXmlDb>) -> RwLockReadGuard<'_, SecureXmlDb> {
    db.read().unwrap_or_else(|e| e.into_inner())
}

fn wlock(db: &RwLock<SecureXmlDb>) -> RwLockWriteGuard<'_, SecureXmlDb> {
    db.write().unwrap_or_else(|e| e.into_inner())
}

fn mlock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    db: Arc<RwLock<SecureXmlDb>>,
    /// `Some` while serving; taken (and thereby flushed + joined) by the
    /// drain choreography.
    committer: Mutex<Option<Arc<GroupCommitter>>>,
    cfg: ServerConfig,
    draining: AtomicBool,
    admission: Arc<Admission>,
    metrics: Metrics,
    active_conns: AtomicUsize,
    /// Read-half handles of live connections, for the drain's half-close.
    conns: Mutex<HashMap<u64, TcpStream>>,
    conn_seq: AtomicU64,
}

impl Shared {
    fn wire_error(&self, e: &DbError) -> (ErrorCode, String) {
        (proto::wire_code(e), format!("{e}"))
    }

    fn server_stats(&self) -> ServerStats {
        let commit = mlock(&self.committer).as_ref().map(|c| c.stats());
        let db = rlock(&self.db);
        ServerStats::snapshot(&db, commit)
    }
}

/// One unit of admitted work travelling from reader to worker.
struct Job {
    req: Request,
    deadline: Deadline,
    started: Instant,
    _slot: AdmissionSlot,
}

/// A running wire server. Dropping it drains and waits.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `cfg.addr`, wraps `db` behind a group committer, and starts
    /// serving. Returns once the listener is live.
    pub fn start(db: SecureXmlDb, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let db = Arc::new(RwLock::new(db));
        let committer = Arc::new(GroupCommitter::new(Arc::clone(&db), cfg.commit));
        let shared = Arc::new(Shared {
            db,
            committer: Mutex::new(Some(committer)),
            admission: Arc::new(Admission {
                cap: cfg.max_inflight.max(1),
                used: AtomicUsize::new(0),
            }),
            metrics: Metrics::new(cfg.slow_query_us),
            cfg,
            draining: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            conn_seq: AtomicU64::new(0),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(shared, listener))
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (the ephemeral port when `addr` ended in `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals a graceful drain (same effect as the `shutdown` method).
    pub fn drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has been signalled.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Requests currently admitted (for tests and monitoring).
    pub fn in_flight(&self) -> usize {
        self.shared.admission.in_flight()
    }

    /// The server's metric registry.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Blocks until a drain (wire `shutdown` or [`drain`](Self::drain))
    /// completes: in-flight requests finished, committer flushed and
    /// closed, database checkpointed.
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.metrics.connection_opened();
                let id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
                if let Ok(clone) = stream.try_clone() {
                    mlock(&shared.conns).insert(id, clone);
                }
                shared.active_conns.fetch_add(1, Ordering::AcqRel);
                let shared = Arc::clone(&shared);
                thread::spawn(move || handle_conn(shared, stream, id));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
    // Drain choreography. 1: stop accepting.
    drop(listener);
    // 2: half-close every connection's read side — readers see a clean EOF
    // at the next frame boundary and stop feeding their workers; responses
    // already in flight still go out on the intact write side.
    for (_, s) in mlock(&shared.conns).iter() {
        let _ = s.shutdown(Shutdown::Read);
    }
    // 3: wait for every connection (reader + worker) to finish.
    while shared.active_conns.load(Ordering::Acquire) > 0 {
        thread::sleep(Duration::from_millis(2));
    }
    // 4: flush and close the committer (its Drop drains the queue, joins
    // the commit worker, and delivers every pending durability receipt).
    let committer = mlock(&shared.committer).take();
    drop(committer);
    // 5: checkpoint so a subsequent open replays nothing (best-effort: an
    // in-memory or poisoned database has nothing to checkpoint).
    let _ = rlock(&shared.db).checkpoint();
}

fn handle_conn(shared: Arc<Shared>, mut stream: TcpStream, conn_id: u64) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.idle_timeout));
    serve_conn(&shared, &mut stream, conn_id);
    mlock(&shared.conns).remove(&conn_id);
    shared.metrics.connection_closed();
    shared.active_conns.fetch_sub(1, Ordering::AcqRel);
}

fn serve_conn(shared: &Arc<Shared>, stream: &mut TcpStream, conn_id: u64) {
    // Protocol sniff: the first four bytes distinguish an HTTP scrape
    // (`GET `) from a frame header. They are spliced back into the frame
    // decoder otherwise, so no byte is lost.
    let mut sniff = [0u8; 4];
    let mut got = 0;
    while got < sniff.len() {
        match stream.read(&mut sniff[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                if got > 0 {
                    shared.metrics.frame_rejected();
                }
                return;
            }
        }
    }
    if got < sniff.len() {
        if got > 0 {
            shared.metrics.frame_rejected(); // torn inside the first header
        }
        return; // clean close before any byte
    }
    if &sniff == b"GET " {
        serve_http_metrics(shared, stream);
        return;
    }

    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let inflight: Arc<Mutex<HashMap<u64, secure_xml::CancelToken>>> =
        Arc::new(Mutex::new(HashMap::new()));
    let (tx, rx) = mpsc::channel::<Job>();
    let worker = {
        let shared = Arc::clone(shared);
        let writer = Arc::clone(&writer);
        let inflight = Arc::clone(&inflight);
        thread::spawn(move || worker_loop(shared, writer, inflight, rx, conn_id))
    };

    let mut first = true;
    loop {
        let preread: &[u8] = if first { &sniff } else { &[] };
        first = false;
        let payload = match frame::read_frame(stream, preread, shared.cfg.max_frame) {
            Ok(Some(p)) => p,
            Ok(None) => break, // clean close on a frame boundary
            Err(_) => {
                shared.metrics.frame_rejected();
                break;
            }
        };
        match proto::decode_request(&payload) {
            Err(DecodeError::Malformed) => {
                // The stream cannot be trusted past an undecodable record.
                shared.metrics.frame_rejected();
                break;
            }
            Err(DecodeError::Invalid { id, reason }) => {
                shared.metrics.record_refusal(ErrorCode::InvalidRequest);
                write_response(
                    &writer,
                    &proto::err_response(id, ErrorCode::InvalidRequest, &reason),
                );
            }
            Ok(req) => {
                if shared.draining.load(Ordering::SeqCst)
                    && !matches!(req.method, Method::Shutdown | Method::Ping)
                {
                    shared.metrics.record_refusal(ErrorCode::Draining);
                    write_response(
                        &writer,
                        &proto::err_response(
                            req.id,
                            ErrorCode::Draining,
                            "server is draining; no new requests admitted",
                        ),
                    );
                    continue;
                }
                let slot = match shared.admission.try_acquire() {
                    Some(s) => s,
                    None => {
                        shared.metrics.record_refusal(ErrorCode::Overloaded);
                        write_response(
                            &writer,
                            &proto::err_response(
                                req.id,
                                ErrorCode::Overloaded,
                                "server at its in-flight request cap",
                            ),
                        );
                        continue;
                    }
                };
                // The budget starts now: queue wait counts against it.
                let deadline = match req.deadline_ms {
                    Some(ms) => Deadline::after(Duration::from_millis(ms)),
                    None => Deadline::never(),
                };
                mlock(&inflight).insert(req.id, deadline.token());
                let job = Job {
                    req,
                    deadline,
                    started: Instant::now(),
                    _slot: slot,
                };
                if tx.send(job).is_err() {
                    break; // worker gone (should not happen before close)
                }
            }
        }
    }
    // Reader exit. A *client*-initiated close cancels whatever is still in
    // flight (the answer has no recipient; holding the admission slot for
    // it only hurts other clients). A *drain*-initiated half-close does
    // not: those requests must finish and be answered.
    if !shared.draining.load(Ordering::SeqCst) {
        let cancelled: Vec<_> = mlock(&inflight).drain().collect();
        for (_, token) in cancelled {
            token.cancel();
            shared.metrics.disconnect_cancelled();
        }
    }
    drop(tx);
    let _ = worker.join();
    let _ = stream.shutdown(Shutdown::Both);
}

fn write_response(writer: &Arc<Mutex<TcpStream>>, payload: &[u8]) -> bool {
    let mut w = mlock(writer);
    frame::write_frame(&mut *w, payload).is_ok()
}

fn worker_loop(
    shared: Arc<Shared>,
    writer: Arc<Mutex<TcpStream>>,
    inflight: Arc<Mutex<HashMap<u64, secure_xml::CancelToken>>>,
    rx: mpsc::Receiver<Job>,
    conn_id: u64,
) {
    while let Ok(job) = rx.recv() {
        let id = job.req.id;
        let name = job.req.method.name();
        let is_shutdown = matches!(job.req.method, Method::Shutdown);
        let outcome = execute(&shared, &job, conn_id);
        mlock(&inflight).remove(&id);
        let latency_us = job.started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        match outcome {
            Ok(result) => {
                shared.metrics.record(name, latency_us, Ok(()));
                write_response(&writer, &proto::ok_response(id, result));
                if is_shutdown {
                    shared.draining.store(true, Ordering::SeqCst);
                }
            }
            Err((code, message)) => {
                shared.metrics.record(name, latency_us, Err(code));
                write_response(&writer, &proto::err_response(id, code, &message));
            }
        }
    }
}

fn execute(shared: &Arc<Shared>, job: &Job, conn_id: u64) -> Result<Json, (ErrorCode, String)> {
    let deadline = &job.deadline;
    // Uniform dispatch gate: a budget spent in the queue (or cancelled by a
    // vanished client) is a bounded refusal *before* any work — even work a
    // warm cache would make free — so the wire's availability accounting
    // matches the in-process bounded-refusal column.
    let expired = || {
        (
            ErrorCode::DeadlineExceeded,
            "deadline expired before dispatch".to_string(),
        )
    };
    match &job.req.method {
        Method::Ping => Ok(Json::obj(vec![("pong", Json::Bool(true))])),
        Method::Query {
            query,
            subject,
            semantics,
        } => {
            if deadline.is_expired() {
                return Err(expired());
            }
            let security = match semantics {
                WireSemantics::None => Security::None,
                WireSemantics::Binding => Security::BindingLevel(SubjectId(*subject)),
                WireSemantics::Subtree => Security::SubtreeVisibility(SubjectId(*subject)),
            };
            let mut reader = rlock(&shared.db).reader();
            let opts = ExecOptions {
                deadline: deadline.clone(),
                ..ExecOptions::default()
            };
            let db = Arc::clone(&shared.db);
            let res = reader.query_with_retry_opts(
                query,
                security,
                opts,
                shared.cfg.query_retries,
                // Distinct jitter stream per connection: a burst of shed
                // clients re-arrives decorrelated.
                shared.cfg.seed.wrapping_add(conn_id),
                move || rlock(&db).reader(),
            );
            match res {
                Ok(r) => Ok(Json::obj(vec![
                    (
                        "matches",
                        Json::Arr(r.matches.iter().map(|&p| Json::Int(p as i64)).collect()),
                    ),
                    ("epoch", Json::Int(reader.epoch() as i64)),
                ])),
                Err(e) => Err(shared.wire_error(&e)),
            }
        }
        Method::Update(op) => {
            if deadline.is_expired() {
                return Err(expired());
            }
            match op {
                UpdateOp::FailAfterDirty { pos } => {
                    if !shared.cfg.testing {
                        return Err((
                            ErrorCode::Forbidden,
                            "fail_after_dirty requires a server started with testing enabled"
                                .into(),
                        ));
                    }
                    let pos = *pos;
                    let mut db = wlock(&shared.db);
                    match db.run_update(|_| {
                        Err(DbError::Integrity(format!(
                            "injected fault before committing page of node {pos}"
                        )))
                    }) {
                        // The injection "succeeding" means the transaction
                        // failed and the handle is now poisoned.
                        Err(DbError::Integrity(_)) => {
                            Ok(Json::obj(vec![("poisoned", Json::Bool(db.is_poisoned()))]))
                        }
                        Err(e) => Err(shared.wire_error(&e)),
                        Ok(()) => Ok(Json::obj(vec![("poisoned", Json::Bool(false))])),
                    }
                }
                UpdateOp::SetNodeAccess { .. } | UpdateOp::SetSubtreeAccess { .. } => {
                    let committer = match mlock(&shared.committer).as_ref() {
                        Some(c) => Arc::clone(c),
                        None => {
                            return Err((
                                ErrorCode::Draining,
                                "committer already closed by drain".into(),
                            ))
                        }
                    };
                    let op = op.clone();
                    let res = committer.submit_fn(move |db| match op {
                        UpdateOp::SetNodeAccess {
                            pos,
                            subject,
                            allow,
                        } => db.set_node_access(pos, SubjectId(subject), allow),
                        UpdateOp::SetSubtreeAccess {
                            pos,
                            subject,
                            allow,
                        } => db.set_subtree_access(pos, SubjectId(subject), allow),
                        UpdateOp::FailAfterDirty { .. } => unreachable!("handled above"),
                    });
                    match res {
                        Ok(()) => Ok(Json::obj(vec![("committed", Json::Bool(true))])),
                        Err(e) => Err(shared.wire_error(&e)),
                    }
                }
            }
        }
        Method::RegisterSubject { copy_from, groups } => {
            if deadline.is_expired() {
                return Err(expired());
            }
            let mut db = wlock(&shared.db);
            let res = if groups.is_empty() {
                db.add_subject(copy_from.map(SubjectId))
            } else {
                let parents: Vec<SubjectId> = groups.iter().map(|&g| SubjectId(g)).collect();
                db.add_grouped_subject(&parents)
            };
            match res {
                Ok(sid) => Ok(Json::obj(vec![("subject", Json::Int(i64::from(sid.0)))])),
                Err(e) => Err(shared.wire_error(&e)),
            }
        }
        Method::SetMembership {
            subject,
            group,
            member,
        } => {
            if deadline.is_expired() {
                return Err(expired());
            }
            let mut db = wlock(&shared.db);
            match db.set_group_membership(SubjectId(*subject), SubjectId(*group), *member) {
                Ok(changed) => Ok(Json::obj(vec![("changed", Json::Bool(changed))])),
                Err(e) => Err(shared.wire_error(&e)),
            }
        }
        Method::Stats => Ok(stats_json(&shared.server_stats())),
        Method::Metrics => {
            let text = shared.metrics.render(&shared.server_stats());
            Ok(Json::obj(vec![("text", Json::Str(text))]))
        }
        Method::Recover => {
            let mut db = wlock(&shared.db);
            match db.recover() {
                Ok(report) => Ok(Json::obj(vec![
                    ("recovered", Json::Bool(report.is_some())),
                    ("poisoned", Json::Bool(db.is_poisoned())),
                ])),
                Err(e) => Err(shared.wire_error(&e)),
            }
        }
        Method::Shutdown => Ok(Json::obj(vec![("draining", Json::Bool(true))])),
    }
}

/// Renders the aggregate snapshot as the `stats` method's JSON body.
fn stats_json(s: &ServerStats) -> Json {
    let int = |v: u64| Json::Int(v.min(i64::MAX as u64) as i64);
    Json::obj(vec![
        (
            "io",
            Json::obj(vec![
                ("logical_reads", int(s.io.logical_reads)),
                ("physical_reads", int(s.io.physical_reads)),
                ("physical_writes", int(s.io.physical_writes)),
                ("pages_skipped", int(s.io.pages_skipped)),
                ("backoffs", int(s.io.backoffs)),
                ("breaker_trips", int(s.io.breaker_trips)),
                ("breaker_fast_fails", int(s.io.breaker_fast_fails)),
                ("breaker_probes", int(s.io.breaker_probes)),
            ]),
        ),
        (
            "cache",
            Json::obj(vec![
                ("plan_hits", int(s.cache.plan_hits)),
                ("plan_misses", int(s.cache.plan_misses)),
                ("result_hits", int(s.cache.result_hits)),
                ("result_misses", int(s.cache.result_misses)),
                ("deadline_aborts", int(s.cache.deadline_aborts)),
            ]),
        ),
        (
            "commit",
            Json::obj(vec![
                ("submitted", int(s.commit.submitted)),
                ("committed", int(s.commit.committed)),
                ("rejected", int(s.commit.rejected)),
                ("batches", int(s.commit.batches)),
                ("solo_fallbacks", int(s.commit.solo_fallbacks)),
                ("overloads", int(s.commit.overloads)),
                ("max_batch_seen", int(s.commit.max_batch_seen)),
            ]),
        ),
        ("epoch", int(s.epoch)),
        ("nodes", int(s.nodes)),
        ("poisoned", Json::Bool(s.poisoned)),
        ("breaker_open", Json::Bool(s.breaker_open)),
    ])
}

/// Answers an HTTP `GET` (any path) with the Prometheus text and closes.
fn serve_http_metrics(shared: &Arc<Shared>, stream: &mut TcpStream) {
    // Consume the rest of the request head, bounded: stop at the blank
    // line, 4 KiB, or the read timeout — whichever first.
    let mut head = Vec::with_capacity(256);
    let mut buf = [0u8; 256];
    while head.len() < 4096 && !head.windows(4).any(|w| w == b"\r\n\r\n") {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&buf[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    let body = shared.metrics.render(&shared.server_stats());
    let resp = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = stream.write_all(resp.as_bytes());
    let _ = stream.flush();
}
