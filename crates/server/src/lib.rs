//! `dol-server` — a crash-tolerant wire front door for the secure XML
//! database.
//!
//! The in-process engine (crate `secure-xml`) already has typed refusals,
//! MVCC snapshot readers, group commit, poison latches, and deadlines; this
//! crate extends that contract over TCP without weakening it:
//!
//! * [`frame`] — CRC-32C length-prefixed records; the network trust
//!   boundary (torn/oversize/corrupt frames close the connection, never
//!   touch the database).
//! * [`json`] — a minimal, hardened JSON subset (integers, strings, bools,
//!   arrays, objects; depth-capped; no floats) with deterministic encoding.
//! * [`proto`] — the request/response vocabulary and the closed
//!   [`ErrorCode`](proto::ErrorCode) set mapping
//!   [`DbError`](secure_xml::DbError) one-to-one onto the wire.
//! * [`metrics`] — per-method latency histograms and typed-refusal
//!   counters, rendered as Prometheus text (also served to a plain HTTP
//!   `GET` on the same port).
//! * [`server`] — admission control, per-request deadlines, client
//!   disconnect cancellation, degraded serving while poisoned, and the
//!   graceful drain choreography.
//! * [`client`] — a blocking typed client for harnesses and tests.

#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod json;
pub mod metrics;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError};
pub use frame::{FrameError, DEFAULT_MAX_FRAME};
pub use json::Json;
pub use metrics::Metrics;
pub use proto::{ErrorCode, Method, Request, UpdateOp, WireSemantics};
pub use server::{Server, ServerConfig};
