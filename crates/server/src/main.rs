//! The `dol-server` binary: open a persisted database (WAL replay
//! included) and serve it over TCP until a wire `shutdown` drains it.

use dol_server::{Server, ServerConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: dol-server --db <path> [--addr HOST:PORT] [--max-inflight N]\n\
         \x20                [--idle-timeout-ms N] [--slow-query-us N] [--testing]\n\
         \n\
         Opens the database image at <path> (replaying its write-ahead log\n\
         if the last process died mid-commit) and serves the framed JSON\n\
         protocol until a `shutdown` request drains it. An HTTP GET on the\n\
         same port answers with Prometheus-style metrics."
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = ServerConfig::default();
    let mut db_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--db" => db_path = Some(take("--db")),
            "--addr" => cfg.addr = take("--addr"),
            "--max-inflight" => {
                cfg.max_inflight = take("--max-inflight").parse().unwrap_or_else(|_| usage())
            }
            "--idle-timeout-ms" => {
                let ms: u64 = take("--idle-timeout-ms")
                    .parse()
                    .unwrap_or_else(|_| usage());
                cfg.idle_timeout = Duration::from_millis(ms);
            }
            "--slow-query-us" => {
                cfg.slow_query_us = take("--slow-query-us").parse().unwrap_or_else(|_| usage())
            }
            "--testing" => cfg.testing = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    let Some(db_path) = db_path else { usage() };
    let db = match secure_xml::SecureXmlDb::open_from(std::path::Path::new(&db_path)) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("failed to open {db_path}: {e}");
            std::process::exit(1);
        }
    };
    let server = match Server::start(db, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to bind: {e}");
            std::process::exit(1);
        }
    };
    // The harness parses this line to discover an ephemeral port.
    println!("listening on {}", server.local_addr());
    server.wait();
    println!("drained");
}
