//! Server-side observability: per-method latency histograms, typed-refusal
//! counters, connection/frame counters, and the Prometheus-style text
//! rendering served by the `metrics` method and the HTTP `GET` sniffer.
//!
//! Everything is lock-free atomics — recording happens on every request, so
//! it must never contend with the requests themselves. Buckets are
//! power-of-two microseconds (1µs, 2µs, ... ~8.4s, +Inf), cumulative in the
//! Prometheus `_bucket{le=...}` convention.

use crate::proto::ErrorCode;
use secure_xml::ServerStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of finite histogram buckets: bucket `i` counts latencies
/// `< 2^i` µs, and one implicit `+Inf` bucket catches the rest.
pub const BUCKETS: usize = 24;

/// The methods metrics are keyed by (same strings as
/// [`Method::name`](crate::proto::Method::name)).
pub const METHOD_NAMES: [&str; 9] = [
    "ping",
    "query",
    "update",
    "register_subject",
    "set_membership",
    "stats",
    "metrics",
    "recover",
    "shutdown",
];

/// The codes refusal counters are keyed by.
const CODES: [ErrorCode; 10] = [
    ErrorCode::Overloaded,
    ErrorCode::RetentionExceeded,
    ErrorCode::StaleReader,
    ErrorCode::Poisoned,
    ErrorCode::ShardUnavailable,
    ErrorCode::DeadlineExceeded,
    ErrorCode::InvalidRequest,
    ErrorCode::Draining,
    ErrorCode::Forbidden,
    ErrorCode::Internal,
];

#[derive(Default)]
struct MethodCells {
    requests: AtomicU64,
    errors: AtomicU64,
    /// Cumulative-from-raw: cell `i` counts latencies in `[2^(i-1), 2^i)`
    /// µs (cell 0: `< 1µs`); the renderer accumulates.
    buckets: [AtomicU64; BUCKETS],
    overflow: AtomicU64,
    total_us: AtomicU64,
}

/// The server's metric registry. One per server; shared by reference with
/// every connection thread.
pub struct Metrics {
    methods: [MethodCells; METHOD_NAMES.len()],
    refusals: [AtomicU64; CODES.len()],
    slow_queries: AtomicU64,
    slow_query_us: u64,
    connections_opened: AtomicU64,
    connections_closed: AtomicU64,
    frames_rejected: AtomicU64,
    admission_refused: AtomicU64,
    cancelled_disconnects: AtomicU64,
}

impl Metrics {
    /// A zeroed registry; requests slower than `slow_query_us` bump the
    /// slow-query counter.
    pub fn new(slow_query_us: u64) -> Self {
        Self {
            methods: Default::default(),
            refusals: Default::default(),
            slow_queries: AtomicU64::new(0),
            slow_query_us,
            connections_opened: AtomicU64::new(0),
            connections_closed: AtomicU64::new(0),
            frames_rejected: AtomicU64::new(0),
            admission_refused: AtomicU64::new(0),
            cancelled_disconnects: AtomicU64::new(0),
        }
    }

    fn method_idx(name: &str) -> Option<usize> {
        METHOD_NAMES.iter().position(|m| *m == name)
    }

    /// Records one served request: its method, latency, and outcome. Slow
    /// queries (by the configured threshold) are counted; refusals are
    /// tallied per code.
    pub fn record(&self, method: &str, latency_us: u64, outcome: Result<(), ErrorCode>) {
        if let Some(i) = Self::method_idx(method) {
            let m = &self.methods[i];
            m.requests.fetch_add(1, Ordering::Relaxed);
            m.total_us.fetch_add(latency_us, Ordering::Relaxed);
            let bucket = (64 - u64::leading_zeros(latency_us)) as usize;
            match m.buckets.get(bucket) {
                Some(b) => b.fetch_add(1, Ordering::Relaxed),
                None => m.overflow.fetch_add(1, Ordering::Relaxed),
            };
            if latency_us >= self.slow_query_us && method == "query" {
                self.slow_queries.fetch_add(1, Ordering::Relaxed);
            }
            if outcome.is_err() {
                m.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Err(code) = outcome {
            if let Some(i) = CODES.iter().position(|c| *c == code) {
                self.refusals[i].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Counts a refusal that never reached a worker (admission or drain
    /// refusals written straight from the reader thread).
    pub fn record_refusal(&self, code: ErrorCode) {
        if let Some(i) = CODES.iter().position(|c| *c == code) {
            self.refusals[i].fetch_add(1, Ordering::Relaxed);
        }
        if code == ErrorCode::Overloaded {
            self.admission_refused.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts an accepted connection.
    pub fn connection_opened(&self) {
        self.connections_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a closed connection.
    pub fn connection_closed(&self) {
        self.connections_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a frame the decoder rejected (torn, oversize, CRC mismatch,
    /// or an unparseable payload) — each one closes its connection.
    pub fn frame_rejected(&self) {
        self.frames_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an in-flight request cancelled because its client vanished.
    pub fn disconnect_cancelled(&self) {
        self.cancelled_disconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Total refusals recorded for `code`.
    pub fn refusals(&self, code: ErrorCode) -> u64 {
        CODES
            .iter()
            .position(|c| *c == code)
            .map(|i| self.refusals[i].load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Total requests recorded for `method`.
    pub fn requests(&self, method: &str) -> u64 {
        Self::method_idx(method)
            .map(|i| self.methods[i].requests.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// The slow-query counter.
    pub fn slow_queries(&self) -> u64 {
        self.slow_queries.load(Ordering::Relaxed)
    }

    /// Renders the Prometheus text exposition: the server's own counters
    /// and histograms plus the database families from `stats`
    /// ([`ServerStats`]: I/O, caches, breaker, group commit).
    pub fn render(&self, stats: &ServerStats) -> String {
        let mut out = String::with_capacity(4096);
        fn counter(out: &mut String, name: &str, help: &str, rows: &[(String, u64)]) {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            for (labels, v) in rows {
                out.push_str(&format!("{name}{labels} {v}\n"));
            }
        }
        let plain = |v: u64| vec![(String::new(), v)];

        let per_method = |cell: fn(&MethodCells) -> &AtomicU64| -> Vec<(String, u64)> {
            METHOD_NAMES
                .iter()
                .enumerate()
                .map(|(i, m)| {
                    (
                        format!("{{method=\"{m}\"}}"),
                        cell(&self.methods[i]).load(Ordering::Relaxed),
                    )
                })
                .collect()
        };
        counter(
            &mut out,
            "dol_requests_total",
            "Requests served, by method.",
            &per_method(|m| &m.requests),
        );
        counter(
            &mut out,
            "dol_request_errors_total",
            "Requests answered with a typed error, by method.",
            &per_method(|m| &m.errors),
        );
        counter(
            &mut out,
            "dol_request_latency_us_sum",
            "Summed request latency in microseconds, by method.",
            &per_method(|m| &m.total_us),
        );

        out.push_str(
            "# HELP dol_request_latency_us Request latency histogram (microseconds).\n\
             # TYPE dol_request_latency_us histogram\n",
        );
        for (i, name) in METHOD_NAMES.iter().enumerate() {
            let m = &self.methods[i];
            let mut cum = 0u64;
            for (b, cell) in m.buckets.iter().enumerate() {
                cum += cell.load(Ordering::Relaxed);
                out.push_str(&format!(
                    "dol_request_latency_us_bucket{{method=\"{name}\",le=\"{}\"}} {cum}\n",
                    1u64 << b
                ));
            }
            cum += m.overflow.load(Ordering::Relaxed);
            out.push_str(&format!(
                "dol_request_latency_us_bucket{{method=\"{name}\",le=\"+Inf\"}} {cum}\n"
            ));
            out.push_str(&format!(
                "dol_request_latency_us_count{{method=\"{name}\"}} {cum}\n"
            ));
        }

        let refusal_rows: Vec<(String, u64)> = CODES
            .iter()
            .enumerate()
            .map(|(i, c)| {
                (
                    format!("{{code=\"{}\"}}", c.as_str()),
                    self.refusals[i].load(Ordering::Relaxed),
                )
            })
            .collect();
        counter(
            &mut out,
            "dol_refusals_total",
            "Typed refusals written to the wire, by code.",
            &refusal_rows,
        );
        counter(
            &mut out,
            "dol_slow_queries_total",
            "Query requests at or over the slow-query threshold.",
            &plain(self.slow_queries.load(Ordering::Relaxed)),
        );
        counter(
            &mut out,
            "dol_connections_opened_total",
            "Connections accepted.",
            &plain(self.connections_opened.load(Ordering::Relaxed)),
        );
        counter(
            &mut out,
            "dol_connections_closed_total",
            "Connections closed.",
            &plain(self.connections_closed.load(Ordering::Relaxed)),
        );
        counter(
            &mut out,
            "dol_frames_rejected_total",
            "Frames rejected by the decoder (each closes its connection).",
            &plain(self.frames_rejected.load(Ordering::Relaxed)),
        );
        counter(
            &mut out,
            "dol_disconnect_cancels_total",
            "In-flight requests cancelled by a client disconnect.",
            &plain(self.cancelled_disconnects.load(Ordering::Relaxed)),
        );

        // Database families, flattened from the aggregate snapshot.
        let db_rows: Vec<(&str, &str, u64)> = vec![
            (
                "dol_io_logical_reads",
                "Page accesses served.",
                stats.io.logical_reads,
            ),
            (
                "dol_io_physical_reads",
                "Pages fetched from disk.",
                stats.io.physical_reads,
            ),
            (
                "dol_io_physical_writes",
                "Pages written back.",
                stats.io.physical_writes,
            ),
            (
                "dol_io_pages_skipped",
                "Page reads avoided by the page-skip test.",
                stats.io.pages_skipped,
            ),
            (
                "dol_io_backoffs",
                "Backoff pauses between I/O attempts.",
                stats.io.backoffs,
            ),
            (
                "dol_breaker_trips",
                "Circuit-breaker trips.",
                stats.io.breaker_trips,
            ),
            (
                "dol_breaker_fast_fails",
                "Operations refused while the breaker was open.",
                stats.io.breaker_fast_fails,
            ),
            (
                "dol_breaker_probes",
                "Half-open probes admitted.",
                stats.io.breaker_probes,
            ),
            (
                "dol_cache_plan_hits",
                "Plan-cache hits.",
                stats.cache.plan_hits,
            ),
            (
                "dol_cache_plan_misses",
                "Plan-cache misses.",
                stats.cache.plan_misses,
            ),
            (
                "dol_cache_result_hits",
                "Result-cache hits.",
                stats.cache.result_hits,
            ),
            (
                "dol_cache_result_misses",
                "Result-cache misses.",
                stats.cache.result_misses,
            ),
            (
                "dol_cache_deadline_aborts",
                "Queries aborted on an expired deadline.",
                stats.cache.deadline_aborts,
            ),
            (
                "dol_commit_submitted",
                "Updates accepted by the group committer.",
                stats.commit.submitted,
            ),
            (
                "dol_commit_committed",
                "Updates durably committed.",
                stats.commit.committed,
            ),
            (
                "dol_commit_rejected",
                "Updates rejected by their own closure.",
                stats.commit.rejected,
            ),
            (
                "dol_commit_batches",
                "Group-commit batches (one fsync each).",
                stats.commit.batches,
            ),
            (
                "dol_commit_overloads",
                "Updates refused by committer admission control.",
                stats.commit.overloads,
            ),
        ];
        for (name, help, v) in db_rows {
            counter(&mut out, name, help, &plain(v));
        }
        let mut gauge = |name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {v}\n"
            ));
        };
        gauge("dol_epoch", "Current update epoch.", stats.epoch);
        gauge("dol_nodes", "Nodes in the document.", stats.nodes);
        gauge(
            "dol_poisoned",
            "1 while the handle is poisoned (degraded read-only serving).",
            u64::from(stats.poisoned),
        );
        gauge(
            "dol_breaker_open",
            "1 while the I/O circuit breaker is open.",
            u64::from(stats.breaker_open),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histograms_are_cumulative_and_slow_queries_counted() {
        let m = Metrics::new(1000);
        m.record("query", 3, Ok(()));
        m.record("query", 900, Ok(()));
        m.record("query", 5000, Err(ErrorCode::DeadlineExceeded));
        m.record("update", 50, Ok(()));
        m.record_refusal(ErrorCode::Overloaded);
        assert_eq!(m.requests("query"), 3);
        assert_eq!(m.requests("update"), 1);
        assert_eq!(m.slow_queries(), 1);
        assert_eq!(m.refusals(ErrorCode::DeadlineExceeded), 1);
        assert_eq!(m.refusals(ErrorCode::Overloaded), 1);

        let text = m.render(&secure_xml::ServerStats::default());
        // The +Inf bucket equals the count for every method.
        assert!(text.contains("dol_request_latency_us_bucket{method=\"query\",le=\"+Inf\"} 3"));
        assert!(text.contains("dol_request_latency_us_count{method=\"query\"} 3"));
        // 3µs lands in le=4 cumulatively.
        assert!(text.contains("dol_request_latency_us_bucket{method=\"query\",le=\"4\"} 1"));
        assert!(text.contains("dol_refusals_total{code=\"overloaded\"} 1"));
        assert!(text.contains("dol_slow_queries_total 1"));
    }

    #[test]
    fn huge_latencies_fall_into_inf_without_panicking() {
        let m = Metrics::new(u64::MAX);
        m.record("ping", u64::MAX, Ok(()));
        let text = m.render(&secure_xml::ServerStats::default());
        assert!(text.contains("dol_request_latency_us_bucket{method=\"ping\",le=\"+Inf\"} 1"));
    }
}
