//! Wire robustness tests: the protocol decoder under adversarial bytes,
//! pipelined request attribution over a live socket, and the
//! client-disconnect cancellation contract.

use dol_acl::FnOracle;
use dol_server::frame::{self, DEFAULT_MAX_FRAME};
use dol_server::proto::{self, Method, Request, WireSemantics};
use dol_server::{Client, ClientError, ErrorCode, Json, Server, ServerConfig, UpdateOp};
use proptest::prelude::*;
use secure_xml::{GroupCommitConfig, SecureXmlDb};
use std::io::{Cursor, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

const XML: &str = "<lib><shelf><book>alpha</book><book>beta</book></shelf>\
                   <shelf><book>gamma</book><mag>delta</mag></shelf></lib>";

fn test_db() -> SecureXmlDb {
    SecureXmlDb::from_xml(XML, &FnOracle::new(2, |_, _| true)).expect("build db")
}

/// One long-lived server shared by every pipelining proptest case (leaked:
/// a drain per case would dominate the test's runtime).
fn shared_server_addr() -> &'static str {
    static ADDR: OnceLock<String> = OnceLock::new();
    ADDR.get_or_init(|| {
        let server = Server::start(test_db(), ServerConfig::default()).expect("bind");
        let addr = server.local_addr().to_string();
        Box::leak(Box::new(server));
        addr
    })
}

// ---------------------------------------------------------------------------
// Parser-level fuzz: arbitrary bytes must never panic (or succeed wrongly).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn frame_and_request_decoders_survive_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        // The frame decoder on raw bytes: any outcome but a panic is fine,
        // and a decoded payload must actually checksum-match.
        let mut r = Cursor::new(bytes.clone());
        let _ = frame::read_frame(&mut r, &[], DEFAULT_MAX_FRAME);
        // The request decoder on raw bytes.
        let _ = proto::decode_request(&bytes);
        // The JSON parser on raw bytes.
        let _ = dol_server::json::parse(&bytes);
    }

    #[test]
    fn corrupted_valid_frames_never_decode_silently(
        payload in proptest::collection::vec(any::<u8>(), 0..80),
        flip_byte in any::<u16>(),
        flip_bit in 0u8..8,
    ) {
        let wire = frame::encode_frame(&payload);
        let mut corrupt = wire.clone();
        let idx = (flip_byte as usize) % corrupt.len();
        corrupt[idx] ^= 1 << flip_bit;
        let mut r = Cursor::new(corrupt);
        // A flipped bit may enlarge the length prefix so the read runs
        // past the buffer (torn), exceed the cap (oversize), or break
        // the checksum — any of those outcomes is a detected rejection.
        // What must never happen is an unnoticed round-trip: a decode
        // that succeeds must yield the original payload exactly.
        if let Ok(Some(decoded)) = frame::read_frame(&mut r, &[], DEFAULT_MAX_FRAME) {
            prop_assert_eq!(decoded, payload);
        }
    }
}

// ---------------------------------------------------------------------------
// Live-socket pipelining: interleaved requests, truncated tails, flipped
// bits — the server must answer the valid prefix with correctly attributed
// ids, then close; never hang, never mis-attribute.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Tail {
    /// Stream ends cleanly on a frame boundary.
    Clean,
    /// Stream ends mid-frame (torn).
    Truncated(usize),
    /// One bit of the last frame flipped.
    BitFlip(usize),
    /// A hostile oversize length prefix appended.
    Oversize,
    /// Raw garbage appended.
    Garbage(Vec<u8>),
}

fn arb_tail() -> impl Strategy<Value = Tail> {
    prop_oneof![
        Just(Tail::Clean),
        (1usize..64).prop_map(Tail::Truncated),
        (0usize..512).prop_map(Tail::BitFlip),
        Just(Tail::Oversize),
        proptest::collection::vec(any::<u8>(), 1..40).prop_map(Tail::Garbage),
    ]
}

fn read_all_frames(stream: &mut TcpStream) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    loop {
        match frame::read_frame(stream, &[], DEFAULT_MAX_FRAME) {
            Ok(Some(p)) => out.push(p),
            Ok(None) | Err(_) => return out,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pipelined_requests_are_answered_by_id_until_the_stream_breaks(
        kinds in proptest::collection::vec(0u8..3, 1..10),
        tail in arb_tail(),
    ) {
        let addr = shared_server_addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();

        // Encode the whole pipeline up front: ids 1..=n, a mix of pings,
        // queries, and (decodable but) invalid requests.
        let mut wire = Vec::new();
        let mut sent: Vec<(u64, u8)> = Vec::new();
        for (i, kind) in kinds.iter().enumerate() {
            let id = i as u64 + 1;
            let payload = match kind {
                0 => proto::encode_request(&Request {
                    id,
                    method: Method::Ping,
                    deadline_ms: None,
                }),
                1 => proto::encode_request(&Request {
                    id,
                    method: Method::Query {
                        query: "//book".into(),
                        subject: 0,
                        semantics: WireSemantics::Binding,
                    },
                    deadline_ms: None,
                }),
                _ => format!("{{\"id\":{id},\"method\":\"no_such_method\"}}").into_bytes(),
            };
            sent.push((id, *kind));
            wire.extend_from_slice(&frame::encode_frame(&payload));
        }
        // How many requests survive the tail corruption intact.
        let mut intact = sent.len();
        match &tail {
            Tail::Clean => {}
            Tail::Truncated(cut) => {
                let cut = (*cut).min(wire.len() - 1).max(1);
                wire.truncate(wire.len() - cut);
                // Dropping bytes clips at least the last request.
                intact = 0;
                let mut consumed = 0usize;
                for (i, kind) in kinds.iter().enumerate() {
                    let id = i as u64 + 1;
                    let len = match kind {
                        0 => proto::encode_request(&Request {
                            id,
                            method: Method::Ping,
                            deadline_ms: None,
                        })
                        .len(),
                        1 => proto::encode_request(&Request {
                            id,
                            method: Method::Query {
                                query: "//book".into(),
                                subject: 0,
                                semantics: WireSemantics::Binding,
                            },
                            deadline_ms: None,
                        })
                        .len(),
                        _ => format!("{{\"id\":{id},\"method\":\"no_such_method\"}}").len(),
                    } + frame::HEADER_SIZE;
                    if consumed + len <= wire.len() {
                        consumed += len;
                        intact += 1;
                    } else {
                        break;
                    }
                }
            }
            Tail::BitFlip(at) => {
                // Flip a bit somewhere in the final frame: every earlier
                // request is still intact.
                let last_start = {
                    let mut consumed = 0usize;
                    let mut start = 0usize;
                    let mut r = Cursor::new(wire.clone());
                    while let Ok(Some(p)) = frame::read_frame(&mut r, &[], DEFAULT_MAX_FRAME) {
                        start = consumed;
                        consumed += frame::HEADER_SIZE + p.len();
                    }
                    start
                };
                let idx = last_start + at % (wire.len() - last_start);
                wire[idx] ^= 0x10;
                intact = sent.len() - 1;
            }
            Tail::Oversize => {
                wire.extend_from_slice(&u32::MAX.to_le_bytes());
                wire.extend_from_slice(&0u32.to_le_bytes());
            }
            Tail::Garbage(g) => {
                // Garbage after valid frames: decoded as a torn/oversize/
                // CRC-broken header; all real requests intact.
                wire.extend_from_slice(g);
            }
        }

        stream.write_all(&wire).expect("write pipeline");
        let _ = stream.shutdown(Shutdown::Write);
        let responses = read_all_frames(&mut stream);

        // Attribution: every response id echoes a sent id, at most once,
        // and its body matches that id's method.
        let mut seen = std::collections::HashSet::new();
        for payload in &responses {
            let resp = proto::decode_response(payload).expect("decodable response");
            prop_assert!(seen.insert(resp.id), "duplicate response id {}", resp.id);
            let kind = sent
                .iter()
                .find(|(id, _)| *id == resp.id)
                .map(|(_, k)| *k)
                .expect("response id was never sent");
            match (kind, &resp.outcome) {
                (0, Ok(body)) => {
                    prop_assert_eq!(body.get("pong").and_then(Json::as_bool), Some(true))
                }
                (1, Ok(body)) => {
                    prop_assert!(body.get("matches").is_some(), "query answer without matches")
                }
                // A query still queued when the stream broke is cancelled
                // by the close and refused — never half-answered.
                (1, Err((ErrorCode::DeadlineExceeded, _))) => {}
                (2, Err((ErrorCode::InvalidRequest, _))) => {}
                (k, out) => prop_assert!(false, "kind {} got unexpected outcome {:?}", k, out),
            }
        }
        // Completeness: every request that was fully on the wire before
        // the corruption point is answered (BitFlip corrupts only the last
        // frame; truncation clips a suffix; garbage/oversize none).
        prop_assert!(
            responses.len() >= intact,
            "only {} responses for {} intact requests",
            responses.len(),
            intact
        );
    }
}

// ---------------------------------------------------------------------------
// Regression: a client that disconnects mid-request cancels its in-flight
// work through the CancelToken and releases its admission slot.
// ---------------------------------------------------------------------------

#[test]
fn disconnect_mid_request_cancels_and_releases_admission_slot() {
    // A slow committer makes the update hold the worker (and its admission
    // slot) for a known window; the pipelined query sits behind it with a
    // registered cancel token.
    let cfg = ServerConfig {
        max_inflight: 2,
        commit: GroupCommitConfig {
            flush_interval: Duration::from_millis(300),
            ..GroupCommitConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = Server::start(test_db(), cfg).expect("bind");
    let addr = server.local_addr().to_string();

    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        let update = proto::encode_request(&Request {
            id: 1,
            method: Method::Update(UpdateOp::SetNodeAccess {
                pos: 1,
                subject: 1,
                allow: false,
            }),
            deadline_ms: None,
        });
        let query = proto::encode_request(&Request {
            id: 2,
            method: Method::Query {
                query: "//book".into(),
                subject: 0,
                semantics: WireSemantics::Binding,
            },
            deadline_ms: Some(60_000),
        });
        let mut wire = frame::encode_frame(&update);
        wire.extend_from_slice(&frame::encode_frame(&query));
        stream.write_all(&wire).expect("write");
        // Give the reader a moment to admit both requests, then vanish.
        let start = Instant::now();
        while server.in_flight() < 2 && start.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(server.in_flight(), 2, "both requests should hold slots");
        drop(stream); // abrupt disconnect, update still committing
    }

    // Both slots must come back without any client involvement.
    let start = Instant::now();
    while server.in_flight() > 0 && start.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.in_flight(), 0, "slots leaked after disconnect");
    // The disconnect cancelled the registered in-flight tokens...
    assert!(
        server.metrics().requests("update") >= 1,
        "update should have been dispatched"
    );
    let cancelled = {
        // Token cancellation is observable through the queued query's
        // refusal: its deadline was cancelled before dispatch, so it was
        // refused as deadline_exceeded without touching the engine.
        server.metrics().refusals(ErrorCode::DeadlineExceeded)
    };
    assert!(
        cancelled >= 1,
        "queued query should be refused via its cancelled token"
    );

    // ...and the freed slots serve a fresh client immediately.
    let mut client = Client::connect(&addr, Duration::from_secs(10)).expect("reconnect");
    client.ping().expect("ping after slot release");
    let matches = client
        .query("//book", 0, WireSemantics::Binding, None)
        .expect("query after slot release");
    assert!(!matches.is_empty());
}

// ---------------------------------------------------------------------------
// End-to-end smoke of the typed client against a live server.
// ---------------------------------------------------------------------------

#[test]
fn client_roundtrip_query_update_stats_metrics() {
    let server = Server::start(test_db(), ServerConfig::default()).expect("bind");
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr, Duration::from_secs(10)).expect("connect");

    c.ping().expect("ping");
    let before = c
        .query("//book", 1, WireSemantics::Binding, None)
        .expect("query");
    assert_eq!(before.len(), 3);
    // Revoke one book for subject 1 and observe the change.
    c.update(
        UpdateOp::SetNodeAccess {
            pos: before[0],
            subject: 1,
            allow: false,
        },
        None,
    )
    .expect("update");
    let after = c
        .query("//book", 1, WireSemantics::Binding, None)
        .expect("query after update");
    assert_eq!(after.len(), 2);

    // A pre-expired deadline is refused, not served from the warm cache.
    match c.query("//book", 1, WireSemantics::Binding, Some(0)) {
        Err(ClientError::Server(ErrorCode::DeadlineExceeded, _)) => {}
        other => panic!("expected deadline refusal, got {other:?}"),
    }

    let sid = c.register_subject(Some(0), &[]).expect("register");
    assert!(u64::from(sid) >= 2);

    let stats = c.stats().expect("stats");
    assert!(stats.get("commit").is_some() && stats.get("io").is_some());
    assert_eq!(
        stats
            .get("commit")
            .and_then(|c| c.get("committed"))
            .and_then(Json::as_uint),
        Some(1)
    );
    let text = c.metrics_text().expect("metrics");
    assert!(text.contains("dol_requests_total{method=\"query\"}"));
    assert!(text.contains("dol_refusals_total{code=\"deadline_exceeded\"} 1"));

    // HTTP scrape on the same port.
    let mut http = TcpStream::connect(&addr).expect("http connect");
    http.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    http.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        .expect("http write");
    let mut body = String::new();
    let _ = http.read_to_string(&mut body);
    assert!(body.starts_with("HTTP/1.1 200 OK"));
    assert!(body.contains("dol_requests_total"));

    // Graceful drain over the wire: responds, then stops the server.
    c.shutdown().expect("shutdown ack");
    server.wait();
}
