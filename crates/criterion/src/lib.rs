//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the subset of criterion 0.5 its benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BenchmarkId`],
//! [`criterion_group!`] (both forms) and [`criterion_main!`].
//!
//! Statistics are deliberately simple: each benchmark runs a short warm-up,
//! then `sample_size` timed samples, and reports the median, minimum and
//! maximum per-iteration wall-clock time to stdout. There is no plotting, no
//! saved baselines, and no outlier analysis — the numbers are for relative
//! comparison within one run, which is all the experiment harness needs.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How much setup output a batched iteration consumes; informational only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input (the only variant this workspace uses).
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
}

/// A two-part benchmark identifier rendered as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter value.
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` back-to-back for the sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group. No-op; provided for API compatibility.
    pub fn finish(self) {}
}

/// Warm-up, calibration, and the sampling loop shared by all benchmarks.
fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Calibrate: grow the per-sample iteration count until one sample takes
    // a measurable slice of time, capped so slow benches still finish.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(4);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter[0];
    let hi = per_iter[per_iter.len() - 1];
    println!(
        "{name:<48} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi),
        sample_size,
        iters
    );
}

/// Renders seconds with an auto-scaled unit, criterion-style.
fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} us", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

/// Declares a benchmark group; supports both the simple list form and the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs * 2)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn group_and_batched_iteration() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter_batched(
                || vec![n; 4],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("NoK", "Q4").to_string(), "NoK/Q4");
    }
}
