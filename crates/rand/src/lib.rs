//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the subset of `rand` it uses: seedable deterministic generators
//! ([`rngs::StdRng`], [`rngs::SmallRng`]), the [`Rng`] sampling methods
//! (`gen_range`, `gen_bool`, `gen`), and the [`seq::SliceRandom`] slice
//! helpers (`shuffle`, `choose`).
//!
//! Generated sequences differ from upstream `rand` for the same seed —
//! everything in this workspace that consumes randomness is model-based or
//! statistical, never locked to upstream byte sequences. Determinism per seed
//! *within this crate* is guaranteed (xoshiro256\*\* with SplitMix64 seeding),
//! which is what the reproducible-experiment harness needs.

use std::ops::{Range, RangeInclusive};

/// Types constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range type. Mirrors `rand::distributions::uniform`
/// just enough for `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw entropy source: one required method.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling methods over an [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// A uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (`0.0 ≤ p ≤ 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Fill>(&mut self) -> T {
        T::fill(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Primitive types [`Rng::gen`] can produce.
pub trait Fill {
    /// Draws one uniformly random value.
    fn fill(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_fill {
    ($($t:ty),*) => {$(
        impl Fill for $t {
            fn fill(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_fill!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Fill for bool {
    fn fill(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Fill for f64 {
    fn fill(rng: &mut dyn RngCore) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits onto `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types uniformly sampleable over a bounded range. A single blanket impl of
/// [`SampleRange`] over this trait keeps type inference identical to upstream
/// `rand` (unsuffixed integer literals fall back to `i32`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[lo, hi)` (`inclusive = false`) or `[lo, hi]` (`true`).
    fn sample_range(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(lo, hi, true, rng)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(lo: Self, hi: Self, inclusive: bool, rng: &mut dyn RngCore) -> Self {
                if inclusive {
                    assert!(lo <= hi, "gen_range: empty range");
                    // u128 wrapping arithmetic handles negative bounds (they
                    // sign-extend, and the subtraction cancels the extension).
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    if span == 0 || span > u64::MAX as u128 {
                        return rng.next_u64() as $t; // full-width range
                    }
                    lo.wrapping_add((rng.next_u64() % span as u64) as $t)
                } else {
                    assert!(lo < hi, "gen_range: empty range");
                    let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range(lo: Self, hi: Self, _inclusive: bool, rng: &mut dyn RngCore) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256\*\* seeded via SplitMix64 — the workspace's stand-in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Small-state generator; identical to [`StdRng`] here.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Slice sampling helpers (`rand::seq` subset).
pub mod seq {
    use super::Rng;

    /// `shuffle` / `choose` over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
