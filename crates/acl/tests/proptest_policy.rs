//! Property tests: the single-pass policy compiler against the ancestor-walk
//! reference semantics, and the cascade fast path against per-subject
//! columns.

use dol_acl::{
    CascadeRules, ConflictResolution, Effect, ModeId, Policy, Propagation, Rule, SubjectId,
};
use dol_xml::{Document, DocumentBuilder, NodeId};
use proptest::prelude::*;

fn arb_doc(max: usize) -> impl Strategy<Value = Document> {
    proptest::collection::vec(0u8..4, 1..max).prop_map(|raw| {
        let mut b = DocumentBuilder::new();
        b.open("r");
        let mut depth = 1;
        for action in raw {
            match action {
                0 if depth < 6 => {
                    b.open("n");
                    depth += 1;
                }
                1 | 2 => {
                    b.leaf("n", None);
                }
                _ => {
                    if depth > 1 {
                        b.close();
                        depth -= 1;
                    }
                }
            }
        }
        while depth > 0 {
            b.close();
            depth -= 1;
        }
        b.finish().unwrap()
    })
}

#[derive(Debug, Clone)]
struct RawRule {
    subject: u8,
    mode: u8,
    node: u32,
    grant: bool,
    cascade: bool,
}

fn arb_rules() -> impl Strategy<Value = Vec<RawRule>> {
    proptest::collection::vec(
        (0u8..3, 0u8..2, any::<u32>(), any::<bool>(), any::<bool>()).prop_map(
            |(subject, mode, node, grant, cascade)| RawRule {
                subject,
                mode,
                node,
                grant,
                cascade,
            },
        ),
        0..20,
    )
}

proptest! {
    #[test]
    fn compile_matches_ancestor_walk_reference(
        doc in arb_doc(40),
        rules in arb_rules(),
        deny_overrides in any::<bool>(),
        open_world in any::<bool>(),
    ) {
        let mut policy = Policy::new();
        policy.conflict = if deny_overrides {
            ConflictResolution::DenyOverrides
        } else {
            ConflictResolution::GrantOverrides
        };
        policy.default_effect = if open_world { Effect::Grant } else { Effect::Deny };
        for r in &rules {
            policy.add_rule(Rule {
                subject: SubjectId(u32::from(r.subject)),
                mode: ModeId(r.mode),
                node: NodeId(r.node % doc.len() as u32),
                effect: if r.grant { Effect::Grant } else { Effect::Deny },
                propagation: if r.cascade {
                    Propagation::Cascade
                } else {
                    Propagation::Local
                },
            });
        }
        for mode in [ModeId(0), ModeId(1)] {
            let map = policy.compile(&doc, 3, mode);
            for s in 0..3u32 {
                for d in doc.preorder() {
                    prop_assert_eq!(
                        map.accessible(SubjectId(s), d),
                        policy.accessible(&doc, SubjectId(s), mode, d),
                        "mode {} subject {} node {}", mode, s, d
                    );
                }
            }
        }
    }

    #[test]
    fn cascade_row_stream_matches_columns(
        doc in arb_doc(40),
        rules in arb_rules(),
    ) {
        let mut cr = CascadeRules::new(3);
        for r in &rules {
            cr.add(
                SubjectId(u32::from(r.subject)),
                NodeId(r.node % doc.len() as u32),
                r.grant,
            );
        }
        let stream = cr.row_stream(&doc, None);
        prop_assert_eq!(stream.first().map(|(p, _)| *p), Some(0));
        for w in stream.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
            prop_assert_ne!(&w[0].1, &w[1].1, "redundant row change");
        }
        for s in 0..3u32 {
            let col = cr.column(&doc, SubjectId(s));
            for p in 0..doc.len() as u64 {
                let i = stream.partition_point(|&(q, _)| q <= p) - 1;
                prop_assert_eq!(
                    stream[i].1.get(s as usize),
                    col.get(p as usize),
                    "subject {} pos {}", s, p
                );
            }
        }
        // The cascade fast path agrees with the general policy engine under
        // deny-default MSO with later-rule-wins at equal anchors... the
        // general engine breaks ties by conflict resolution instead, so only
        // compare when no node carries conflicting rules for one subject.
        let mut conflicted = false;
        for d in doc.preorder() {
            for s in 0..3u32 {
                let mut effects: Vec<bool> = rules
                    .iter()
                    .filter(|r| {
                        u32::from(r.subject) == s && NodeId(r.node % doc.len() as u32) == d
                    })
                    .map(|r| r.grant)
                    .collect();
                effects.dedup();
                if effects.len() > 1 {
                    conflicted = true;
                }
            }
        }
        if !conflicted {
            let mut policy = Policy::new();
            for r in &rules {
                policy.add_rule(Rule {
                    subject: SubjectId(u32::from(r.subject)),
                    mode: ModeId(0),
                    node: NodeId(r.node % doc.len() as u32),
                    effect: if r.grant { Effect::Grant } else { Effect::Deny },
                    propagation: Propagation::Cascade,
                });
            }
            let map = policy.compile(&doc, 3, ModeId(0));
            for s in 0..3u32 {
                let col = cr.column(&doc, SubjectId(s));
                for d in doc.preorder() {
                    prop_assert_eq!(
                        col.get(d.index()),
                        map.accessible(SubjectId(s), d),
                        "subject {} node {}", s, d
                    );
                }
            }
        }
    }
}
