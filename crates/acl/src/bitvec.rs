//! A compact bit vector.
//!
//! Used both for access-control lists (one bit per subject — the codebook
//! entries of the multi-subject DOL) and for per-subject accessibility
//! columns (one bit per node). Equality and hashing are value-based, which is
//! what codebook interning requires.

/// A fixed-length vector of bits packed into `u64` words.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an all-zero bit vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates an all-one bit vector of length `len`.
    pub fn ones(len: usize) -> Self {
        let mut v = Self {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        v.clear_tail();
        v
    }

    /// Builds a bit vector by evaluating `f` on every index.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut v = Self::zeros(len);
        for i in 0..len {
            if f(i) {
                v.set(i, true);
            }
        }
        v
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Reads bit `i`, treating bits at or beyond `len` as zero. The
    /// accessor for *lazily widened* bit rows: codebook entries are stored
    /// trimmed to their last set bit, so a column added after an entry was
    /// interned reads as deny without rewriting the entry.
    #[inline]
    pub fn get_or(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Truncates to the last set bit (length 0 if no bit is set) — the
    /// canonical form under trailing-zero padding: two rows that differ only
    /// in trailing deny bits trim to equal vectors.
    pub fn trim_trailing_zeros(&mut self) {
        let last = self
            .words
            .iter()
            .rposition(|&w| w != 0)
            .map(|wi| wi * 64 + 64 - self.words[wi].leading_zeros() as usize)
            .unwrap_or(0);
        self.resize(last);
    }

    /// Writes bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        debug_assert!(i < self.len, "bit {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Extends the vector by one bit.
    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        self.set(self.len - 1, value);
    }

    /// Grows (or truncates) to `len` bits; new bits are zero.
    pub fn resize(&mut self, len: usize) {
        self.words.resize(len.div_ceil(64), 0);
        self.len = len;
        self.clear_tail();
    }

    /// Sets every bit to `value`.
    pub fn fill(&mut self, value: bool) {
        let w = if value { u64::MAX } else { 0 };
        self.words.fill(w);
        if value {
            self.clear_tail();
        }
    }

    /// In-place bitwise OR with another vector of the same length.
    pub fn or_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place bitwise AND with another vector of the same length.
    pub fn and_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Iterates over all bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Iterates over the indexes of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + b)
            })
        })
    }

    /// Approximate heap bytes used.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * 8
    }

    /// The raw words (little-endian bit order within each word).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    fn clear_tail(&mut self) {
        let extra = self.words.len() * 64 - self.len;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }
}

impl std::fmt::Display for BitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in self.iter() {
            f.write_str(if b { "1" } else { "0" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let mut v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        assert_eq!(v.count_ones(), 0);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1));
        assert_eq!(v.count_ones(), 3);
        v.set(64, false);
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn ones_has_clean_tail() {
        let v = BitVec::ones(67);
        assert_eq!(v.count_ones(), 67);
        let w = BitVec::from_fn(67, |_| true);
        assert_eq!(v, w); // tail bits beyond len must not break equality
    }

    #[test]
    fn push_and_resize() {
        let mut v = BitVec::zeros(0);
        for i in 0..100 {
            v.push(i % 3 == 0);
        }
        assert_eq!(v.len(), 100);
        assert_eq!(v.count_ones(), 34);
        v.resize(50);
        assert_eq!(v.len(), 50);
        assert_eq!(v.count_ones(), 17);
        v.resize(80);
        assert!(!v.get(79));
        assert_eq!(v.count_ones(), 17);
    }

    #[test]
    fn boolean_ops() {
        let a = BitVec::from_fn(10, |i| i % 2 == 0);
        let b = BitVec::from_fn(10, |i| i % 3 == 0);
        let mut o = a.clone();
        o.or_assign(&b);
        assert_eq!(o, BitVec::from_fn(10, |i| i % 2 == 0 || i % 3 == 0));
        let mut n = a.clone();
        n.and_assign(&b);
        assert_eq!(n, BitVec::from_fn(10, |i| i % 6 == 0));
    }

    #[test]
    fn iter_ones_matches_iter() {
        let v = BitVec::from_fn(200, |i| i % 7 == 1);
        let ones: Vec<usize> = v.iter_ones().collect();
        let expect: Vec<usize> = (0..200).filter(|i| i % 7 == 1).collect();
        assert_eq!(ones, expect);
    }

    #[test]
    fn equality_and_hash_are_value_based() {
        use std::collections::HashSet;
        let a = BitVec::from_fn(65, |i| i == 64);
        let mut b = BitVec::zeros(65);
        b.set(64, true);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn display() {
        let v = BitVec::from_fn(4, |i| i % 2 == 1);
        assert_eq!(v.to_string(), "0101");
    }
}
