#![warn(missing_docs)]

//! Fine-grained access-control model for XML (paper §2).
//!
//! The model consists of a set of **subjects** `S` (users and user groups —
//! the subject hierarchy is maintained separately, here by
//! [`SubjectCatalog`]), a set of **action modes** `M` (read, write, …,
//! [`ModeCatalog`]), and the set `D` of nodes of an XML tree. The net effect
//! of a policy over a database instance is captured by the accessibility
//! function
//!
//! ```text
//! accessible : S × M × D → {true, false}
//! ```
//!
//! materialized per mode as an [`AccessibilityMap`] (one bit per
//! subject×node) or answered lazily through the streaming [`AccessOracle`]
//! trait, which lets generators with thousands of subjects feed the DOL
//! builder one document-order ACL row at a time without ever holding the full
//! matrix.
//!
//! [`policy`] implements the rule layer above the accessibility function:
//! grant/deny rules with local or cascading propagation, resolved with
//! Most-Specific-Override (a node inherits from its *closest* labeled
//! ancestor — the propagation policy of Jajodia et al. used by the paper's
//! synthetic workloads) plus configurable tie-breaking and a closed- or
//! open-world default.

pub mod bitvec;
pub mod cascade;
pub mod groups;
pub mod map;
pub mod mode;
pub mod oracle;
pub mod policy;
pub mod subject;

pub use bitvec::BitVec;
pub use cascade::CascadeRules;
pub use groups::GroupSpace;
pub use map::AccessibilityMap;
pub use mode::{ModeCatalog, ModeId};
pub use oracle::{AccessOracle, FnOracle};
pub use policy::{ConflictResolution, Effect, Policy, Propagation, Rule};
pub use subject::{SubjectCatalog, SubjectId, SubjectKind};
