//! Streaming access to accessibility data.
//!
//! Large multi-user datasets (the paper's LiveLink system has 8639 subjects)
//! make the full node×subject matrix expensive to materialize. The DOL
//! builder only ever needs the ACL row of one node at a time, in document
//! order — exactly what a rule-carrying DFS can produce incrementally. The
//! [`AccessOracle`] trait is that contract.

use crate::bitvec::BitVec;
use crate::map::AccessibilityMap;
use dol_xml::NodeId;

/// A source of per-node ACL rows for one action mode.
///
/// Implementations must answer `acl_row` for nodes in any order, but the DOL
/// builder calls it in document order, so implementations may optimize for
/// sequential access.
pub trait AccessOracle {
    /// Number of subjects (the width of every row).
    fn subject_count(&self) -> usize;

    /// Writes the ACL row of `node` (bit `s` = subject `s` may access) into
    /// `out`, resizing it to [`subject_count`](AccessOracle::subject_count).
    fn acl_row(&self, node: NodeId, out: &mut BitVec);
}

impl AccessOracle for AccessibilityMap {
    fn subject_count(&self) -> usize {
        self.subjects()
    }

    fn acl_row(&self, node: NodeId, out: &mut BitVec) {
        self.row_into(node, out);
    }
}

/// Adapts a closure `fn(node, subject) -> bool` into an oracle.
pub struct FnOracle<F> {
    subjects: usize,
    f: F,
}

impl<F: Fn(NodeId, usize) -> bool> FnOracle<F> {
    /// Wraps `f` as an oracle over `subjects` subjects.
    pub fn new(subjects: usize, f: F) -> Self {
        Self { subjects, f }
    }
}

impl<F: Fn(NodeId, usize) -> bool> AccessOracle for FnOracle<F> {
    fn subject_count(&self) -> usize {
        self.subjects
    }

    fn acl_row(&self, node: NodeId, out: &mut BitVec) {
        out.resize(self.subjects);
        out.fill(false);
        for s in 0..self.subjects {
            if (self.f)(node, s) {
                out.set(s, true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subject::SubjectId;

    #[test]
    fn map_as_oracle() {
        let mut m = AccessibilityMap::new(2, 3);
        m.set(SubjectId(1), NodeId(2), true);
        let mut row = BitVec::zeros(0);
        m.acl_row(NodeId(2), &mut row);
        assert_eq!(row.to_string(), "01");
        assert_eq!(m.subject_count(), 2);
    }

    #[test]
    fn fn_oracle() {
        let o = FnOracle::new(4, |n: NodeId, s| (n.0 as usize + s).is_multiple_of(2));
        let mut row = BitVec::zeros(0);
        o.acl_row(NodeId(1), &mut row);
        assert_eq!(row.to_string(), "0101");
        assert_eq!(o.subject_count(), 4);
    }
}
