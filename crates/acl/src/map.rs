//! Materialized accessibility maps.
//!
//! An [`AccessibilityMap`] is the accessibility function for one action mode,
//! stored column-major: one bit vector over document positions per subject.
//! Column-major is the convenient orientation for the consumers: CAM
//! construction wants a whole subject's column, and the DOL builder extracts
//! per-node rows through [`crate::AccessOracle`].

use crate::bitvec::BitVec;
use crate::subject::SubjectId;
use dol_xml::NodeId;

/// The accessibility function `S × D → {true, false}` for one action mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessibilityMap {
    nodes: usize,
    columns: Vec<BitVec>,
}

impl AccessibilityMap {
    /// Creates an all-deny map for `subjects` subjects over `nodes` nodes.
    pub fn new(subjects: usize, nodes: usize) -> Self {
        Self {
            nodes,
            columns: (0..subjects).map(|_| BitVec::zeros(nodes)).collect(),
        }
    }

    /// Number of subjects.
    pub fn subjects(&self) -> usize {
        self.columns.len()
    }

    /// Number of document nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Whether `subject` can access `node`.
    #[inline]
    pub fn accessible(&self, subject: SubjectId, node: NodeId) -> bool {
        self.columns[subject.index()].get(node.index())
    }

    /// Grants or revokes access.
    #[inline]
    pub fn set(&mut self, subject: SubjectId, node: NodeId, value: bool) {
        self.columns[subject.index()].set(node.index(), value);
    }

    /// The full accessibility column of one subject (one bit per node).
    pub fn column(&self, subject: SubjectId) -> &BitVec {
        &self.columns[subject.index()]
    }

    /// Mutable access to one subject's column.
    pub fn column_mut(&mut self, subject: SubjectId) -> &mut BitVec {
        &mut self.columns[subject.index()]
    }

    /// Writes the ACL row of `node` (one bit per subject) into `out`,
    /// resizing it as needed.
    pub fn row_into(&self, node: NodeId, out: &mut BitVec) {
        out.resize(self.columns.len());
        out.fill(false);
        for (s, col) in self.columns.iter().enumerate() {
            if col.get(node.index()) {
                out.set(s, true);
            }
        }
    }

    /// Adds a subject whose column is all-deny (or copied from `copy_from`),
    /// returning the new subject's id.
    pub fn add_subject(&mut self, copy_from: Option<SubjectId>) -> SubjectId {
        let col = match copy_from {
            Some(s) => self.columns[s.index()].clone(),
            None => BitVec::zeros(self.nodes),
        };
        self.columns.push(col);
        SubjectId((self.columns.len() - 1) as u32)
    }

    /// Fraction of accessible (subject, node) pairs.
    pub fn density(&self) -> f64 {
        if self.columns.is_empty() || self.nodes == 0 {
            return 0.0;
        }
        let ones: usize = self.columns.iter().map(|c| c.count_ones()).sum();
        ones as f64 / (self.columns.len() * self.nodes) as f64
    }

    /// Whether `user` can access `node` when their rights combine their own
    /// subject with every group they (transitively) belong to (paper §4,
    /// footnote 4).
    pub fn user_accessible(
        &self,
        catalog: &crate::subject::SubjectCatalog,
        user: SubjectId,
        node: NodeId,
    ) -> bool {
        catalog
            .effective_subjects(user)
            .into_iter()
            .any(|s| self.accessible(s, node))
    }

    /// Restricts the map to a subset of subjects (used by the experiments
    /// that plot codebook growth against subject-set size).
    pub fn project(&self, subjects: &[SubjectId]) -> AccessibilityMap {
        AccessibilityMap {
            nodes: self.nodes,
            columns: subjects
                .iter()
                .map(|s| self.columns[s.index()].clone())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_revoke_lookup() {
        let mut m = AccessibilityMap::new(3, 10);
        assert!(!m.accessible(SubjectId(1), NodeId(4)));
        m.set(SubjectId(1), NodeId(4), true);
        assert!(m.accessible(SubjectId(1), NodeId(4)));
        assert!(!m.accessible(SubjectId(0), NodeId(4)));
        m.set(SubjectId(1), NodeId(4), false);
        assert!(!m.accessible(SubjectId(1), NodeId(4)));
    }

    #[test]
    fn row_extraction() {
        let mut m = AccessibilityMap::new(4, 5);
        m.set(SubjectId(0), NodeId(2), true);
        m.set(SubjectId(3), NodeId(2), true);
        let mut row = BitVec::zeros(0);
        m.row_into(NodeId(2), &mut row);
        assert_eq!(row.to_string(), "1001");
        m.row_into(NodeId(0), &mut row);
        assert_eq!(row.to_string(), "0000");
    }

    #[test]
    fn add_subject_copying() {
        let mut m = AccessibilityMap::new(1, 3);
        m.set(SubjectId(0), NodeId(1), true);
        let s1 = m.add_subject(Some(SubjectId(0)));
        let s2 = m.add_subject(None);
        assert_eq!(m.subjects(), 3);
        assert!(m.accessible(s1, NodeId(1)));
        assert!(!m.accessible(s2, NodeId(1)));
    }

    #[test]
    fn density_and_projection() {
        let mut m = AccessibilityMap::new(2, 4);
        m.set(SubjectId(0), NodeId(0), true);
        m.set(SubjectId(0), NodeId(1), true);
        assert!((m.density() - 0.25).abs() < 1e-9);
        let p = m.project(&[SubjectId(0)]);
        assert_eq!(p.subjects(), 1);
        assert!((p.density() - 0.5).abs() < 1e-9);
    }
}
