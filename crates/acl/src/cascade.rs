//! A fast path for cascade-only rule sets over large subject populations.
//!
//! The multi-user workloads (LiveLink-style portals) specify access as
//! subtree grants/denies per subject with Most-Specific-Override. For those,
//! the per-node ACL row changes only at rule anchors and at subtree exits —
//! exactly the DOL transition structure. [`CascadeRules::row_stream`]
//! produces that change list in one DFS carrying per-subject effect stacks,
//! so a DOL over thousands of subjects is built without ever materializing
//! the node×subject matrix.

use crate::bitvec::BitVec;
use crate::subject::SubjectId;
use dol_xml::{Document, NodeId};
use std::collections::HashMap;

/// A set of cascading (subtree) grant/deny rules for one action mode,
/// resolved with Most-Specific-Override and a closed-world (deny) default.
#[derive(Debug, Clone, Default)]
pub struct CascadeRules {
    subjects: usize,
    /// Rules anchored at each node, in insertion order (later rules at the
    /// same node override earlier ones for the same subject).
    by_node: HashMap<NodeId, Vec<(SubjectId, bool)>>,
    rule_count: usize,
}

impl CascadeRules {
    /// Creates an empty rule set over `subjects` subjects.
    pub fn new(subjects: usize) -> Self {
        Self {
            subjects,
            by_node: HashMap::new(),
            rule_count: 0,
        }
    }

    /// Number of subjects.
    pub fn subjects(&self) -> usize {
        self.subjects
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rule_count
    }

    /// Whether no rule has been added.
    pub fn is_empty(&self) -> bool {
        self.rule_count == 0
    }

    /// Adds a cascading rule: `subject` is granted (`allow = true`) or
    /// denied the subtree of `node`, overriding less specific rules.
    pub fn add(&mut self, subject: SubjectId, node: NodeId, allow: bool) {
        assert!(subject.index() < self.subjects);
        self.by_node.entry(node).or_default().push((subject, allow));
        self.rule_count += 1;
    }

    /// The accessibility column of one subject (one bit per node).
    pub fn column(&self, doc: &Document, subject: SubjectId) -> BitVec {
        let mut col = BitVec::zeros(doc.len());
        // Stack of (subtree end, previous effect).
        let mut stack: Vec<(u32, Option<bool>)> = Vec::new();
        let mut effect: Option<bool> = None;
        for id in doc.preorder() {
            while stack.last().is_some_and(|&(end, _)| end <= id.0) {
                effect = stack.pop().unwrap().1;
            }
            if let Some(rules) = self.by_node.get(&id) {
                for &(s, allow) in rules {
                    if s == subject {
                        stack.push((id.0 + doc.node(id).size, effect));
                        effect = Some(allow);
                    }
                }
            }
            if effect == Some(true) {
                col.set(id.index(), true);
            }
        }
        col
    }

    /// Materializes an [`crate::AccessibilityMap`] for a subset of subjects
    /// (columns are indexed by position in `subjects`).
    pub fn project_map(
        &self,
        doc: &Document,
        subjects: &[SubjectId],
    ) -> crate::map::AccessibilityMap {
        let mut map = crate::map::AccessibilityMap::new(subjects.len(), doc.len());
        for (i, &s) in subjects.iter().enumerate() {
            *map.column_mut(SubjectId(i as u32)) = self.column(doc, s);
        }
        map
    }

    /// Streams the document-order ACL row **changes**: the returned list
    /// holds `(position, row)` for exactly the positions whose row differs
    /// from the predecessor's (position 0 always included) — i.e. the DOL
    /// transition structure, computed in one pass.
    ///
    /// When `restrict` is given, rows cover only those subjects, in the
    /// given order (used by the subject-subset scaling experiments).
    pub fn row_stream(&self, doc: &Document, restrict: Option<&[SubjectId]>) -> Vec<(u64, BitVec)> {
        // Dense re-indexing of the involved subjects.
        let width;
        let mut dense: Vec<Option<usize>> = vec![None; self.subjects];
        match restrict {
            Some(list) => {
                width = list.len();
                for (i, s) in list.iter().enumerate() {
                    dense[s.index()] = Some(i);
                }
            }
            None => {
                width = self.subjects;
                for (i, d) in dense.iter_mut().enumerate() {
                    *d = Some(i);
                }
            }
        }
        let mut row = BitVec::zeros(width);
        // Per dense-subject effect stacks: (frame id, effect) entries; the
        // frame stack records (subtree end, dense subject, had_prev).
        let mut effect: Vec<Vec<bool>> = vec![Vec::new(); width];
        let mut frames: Vec<(u32, usize)> = Vec::new();
        let mut out: Vec<(u64, BitVec)> = Vec::new();
        let mut dirty = true; // emit position 0 unconditionally
        for id in doc.preorder() {
            while frames.last().is_some_and(|&(end, _)| end <= id.0) {
                let (_, ds) = frames.pop().unwrap();
                effect[ds].pop();
                let bit = *effect[ds].last().unwrap_or(&false);
                if row.get(ds) != bit {
                    row.set(ds, bit);
                    dirty = true;
                }
            }
            if let Some(rules) = self.by_node.get(&id) {
                let end = id.0 + doc.node(id).size;
                for &(s, allow) in rules {
                    let Some(ds) = dense[s.index()] else { continue };
                    effect[ds].push(allow);
                    frames.push((end, ds));
                    if row.get(ds) != allow {
                        row.set(ds, allow);
                        dirty = true;
                    }
                }
            }
            if dirty {
                if out.last().map(|(_, r)| r != &row).unwrap_or(true) {
                    out.push((u64::from(id.0), row.clone()));
                }
                dirty = false;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::AccessOracle;
    use dol_xml::parse;

    fn doc() -> Document {
        parse("<a><b><c/><d/></b><e><f><g/></f><h/></e><i/></a>").unwrap()
    }

    #[test]
    fn column_matches_mso_semantics() {
        let doc = doc();
        let mut r = CascadeRules::new(1);
        r.add(SubjectId(0), NodeId(0), true); // grant all
        r.add(SubjectId(0), NodeId(4), false); // deny subtree of e
        r.add(SubjectId(0), NodeId(5), true); // re-grant subtree of f
        let col = r.column(&doc, SubjectId(0));
        let expect = [true, true, true, true, false, true, true, false, true];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(col.get(i), e, "node {i}");
        }
    }

    #[test]
    fn row_stream_matches_columns() {
        let doc = doc();
        let mut r = CascadeRules::new(3);
        r.add(SubjectId(0), NodeId(0), true);
        r.add(SubjectId(1), NodeId(1), true);
        r.add(SubjectId(2), NodeId(4), true);
        r.add(SubjectId(0), NodeId(5), false);
        let stream = r.row_stream(&doc, None);
        assert_eq!(stream[0].0, 0);
        // Reconstruct each node's row from the stream and compare.
        for s in 0..3u32 {
            let col = r.column(&doc, SubjectId(s));
            for p in 0..doc.len() as u64 {
                let i = stream.partition_point(|&(q, _)| q <= p) - 1;
                assert_eq!(
                    stream[i].1.get(s as usize),
                    col.get(p as usize),
                    "subject {s} pos {p}"
                );
            }
        }
        // Change positions are minimal (no two adjacent equal rows).
        for w in stream.windows(2) {
            assert_ne!(w[0].1, w[1].1);
        }
    }

    #[test]
    fn row_stream_with_restriction() {
        let doc = doc();
        let mut r = CascadeRules::new(4);
        r.add(SubjectId(0), NodeId(0), true);
        r.add(SubjectId(3), NodeId(4), true);
        let stream = r.row_stream(&doc, Some(&[SubjectId(3)]));
        // Only subject 3 matters: transitions at 0 (all-deny), 4 (grant),
        // and 8 (back to deny after e's subtree [4,8)).
        assert_eq!(stream.len(), 3);
        assert_eq!(stream[0].0, 0);
        assert_eq!(stream[1].0, 4);
        assert_eq!(stream[2].0, 8);
        assert_eq!(stream[1].1.len(), 1);
    }

    #[test]
    fn project_map_is_consistent() {
        let doc = doc();
        let mut r = CascadeRules::new(2);
        r.add(SubjectId(1), NodeId(1), true);
        let map = r.project_map(&doc, &[SubjectId(1)]);
        assert_eq!(map.subjects(), 1);
        assert!(map.accessible(SubjectId(0), NodeId(2)));
        assert!(!map.accessible(SubjectId(0), NodeId(4)));
        let mut row = BitVec::zeros(0);
        map.acl_row(NodeId(2), &mut row);
        assert_eq!(row.to_string(), "1");
    }

    #[test]
    fn later_rules_override_earlier_at_same_node() {
        let doc = doc();
        let mut r = CascadeRules::new(1);
        r.add(SubjectId(0), NodeId(0), true);
        r.add(SubjectId(0), NodeId(0), false);
        let col = r.column(&doc, SubjectId(0));
        assert_eq!(col.count_ones(), 0);
    }
}
