//! Rule-based access-control policies and their propagation.
//!
//! "Instead of manually specifying access control for each XML node, the
//! system administrator defines a set of rules and derives access controls
//! for each node … through rule-based propagation and inferences" (paper §1).
//! This module is that rule layer. Its net effect is compiled into an
//! [`AccessibilityMap`] — the incrementally maintainable accessibility map
//! whose storage is the subject of the paper.
//!
//! Semantics:
//!
//! * a [`Rule`] grants or denies one subject one mode on one node, either
//!   [`Propagation::Local`] (that node only) or [`Propagation::Cascade`]
//!   (the node and its whole subtree);
//! * conflicts are resolved by **Most-Specific-Override** (Jajodia et al.):
//!   the rules anchored at the *closest* ancestor-or-self node win;
//! * among equally specific rules the [`ConflictResolution`] tie-breaker
//!   applies (deny-takes-precedence by default);
//! * nodes reached by no rule get the policy's default effect
//!   (closed-world = deny).

use crate::map::AccessibilityMap;
use crate::mode::ModeId;
use crate::subject::SubjectId;
use dol_xml::{Document, NodeId};
use std::collections::HashMap;

/// Grant or deny.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// The subject may perform the action.
    Grant,
    /// The subject may not perform the action.
    Deny,
}

/// How far a rule reaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Propagation {
    /// The anchor node only.
    Local,
    /// The anchor node and all of its descendants (until overridden by a
    /// more specific rule).
    Cascade,
}

/// One authorization rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rule {
    /// Whose access is being controlled.
    pub subject: SubjectId,
    /// Which action mode.
    pub mode: ModeId,
    /// The anchor node.
    pub node: NodeId,
    /// Grant or deny.
    pub effect: Effect,
    /// Local or cascading.
    pub propagation: Propagation,
}

/// Tie-breaking among equally specific conflicting rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictResolution {
    /// Any applicable deny wins (the common safe default).
    DenyOverrides,
    /// Any applicable grant wins.
    GrantOverrides,
}

/// A set of rules plus resolution configuration.
#[derive(Debug, Clone)]
pub struct Policy {
    rules: Vec<Rule>,
    /// Effect for nodes no rule reaches. `Deny` = closed world.
    pub default_effect: Effect,
    /// Tie-breaker among equally specific rules.
    pub conflict: ConflictResolution,
}

impl Default for Policy {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy {
    /// An empty closed-world, deny-overrides policy.
    pub fn new() -> Self {
        Self {
            rules: Vec::new(),
            default_effect: Effect::Deny,
            conflict: ConflictResolution::DenyOverrides,
        }
    }

    /// Adds a rule.
    pub fn add_rule(&mut self, rule: Rule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// Convenience: adds a cascading grant.
    pub fn grant_subtree(&mut self, subject: SubjectId, mode: ModeId, node: NodeId) -> &mut Self {
        self.add_rule(Rule {
            subject,
            mode,
            node,
            effect: Effect::Grant,
            propagation: Propagation::Cascade,
        })
    }

    /// Convenience: adds a cascading deny.
    pub fn deny_subtree(&mut self, subject: SubjectId, mode: ModeId, node: NodeId) -> &mut Self {
        self.add_rule(Rule {
            subject,
            mode,
            node,
            effect: Effect::Deny,
            propagation: Propagation::Cascade,
        })
    }

    /// The rules in insertion order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Resolves accessibility of a single `(subject, mode, node)` triple by
    /// walking ancestors. This is the slow reference semantics; `compile`
    /// must agree with it (property-tested).
    pub fn accessible(
        &self,
        doc: &Document,
        subject: SubjectId,
        mode: ModeId,
        node: NodeId,
    ) -> bool {
        // Rules at the node itself (local or cascade).
        if let Some(e) = self.resolve_at(node, subject, mode, false) {
            return e == Effect::Grant;
        }
        // Nearest ancestor with applicable cascade rules.
        for anc in doc.ancestors(node) {
            if let Some(e) = self.resolve_at(anc, subject, mode, true) {
                return e == Effect::Grant;
            }
        }
        self.default_effect == Effect::Grant
    }

    fn resolve_at(
        &self,
        node: NodeId,
        subject: SubjectId,
        mode: ModeId,
        cascade_only: bool,
    ) -> Option<Effect> {
        let mut found = None;
        for r in &self.rules {
            if r.node != node || r.subject != subject || r.mode != mode {
                continue;
            }
            if cascade_only && r.propagation != Propagation::Cascade {
                continue;
            }
            found = Some(match (found, r.effect, self.conflict) {
                (None, e, _) => e,
                (Some(Effect::Deny), _, ConflictResolution::DenyOverrides) => Effect::Deny,
                (Some(_), Effect::Deny, ConflictResolution::DenyOverrides) => Effect::Deny,
                (Some(Effect::Grant), _, ConflictResolution::GrantOverrides) => Effect::Grant,
                (Some(_), Effect::Grant, ConflictResolution::GrantOverrides) => Effect::Grant,
                (Some(prev), _, _) => prev,
            });
        }
        found
    }

    /// Compiles the policy's net effect for one mode into an accessibility
    /// map over `subjects` subjects, in a single document-order pass that
    /// carries cascading effects on a stack (Most-Specific-Override).
    #[allow(clippy::needless_range_loop, clippy::type_complexity)] // `s` indexes two parallel structures; the frame stack type is local
    pub fn compile(&self, doc: &Document, subjects: usize, mode: ModeId) -> AccessibilityMap {
        let mut by_node: HashMap<NodeId, Vec<&Rule>> = HashMap::new();
        for r in &self.rules {
            if r.mode == mode {
                by_node.entry(r.node).or_default().push(r);
            }
        }
        let mut map = AccessibilityMap::new(subjects, doc.len());
        let mut inherited: Vec<Option<Effect>> = vec![None; subjects];
        // Frames of (subtree end, saved inherited states) to undo on exit.
        let mut frames: Vec<(u32, Vec<(usize, Option<Effect>)>)> = Vec::new();
        for id in doc.preorder() {
            while frames.last().is_some_and(|(end, _)| *end <= id.0) {
                let (_, undo) = frames.pop().unwrap();
                for (s, saved) in undo {
                    inherited[s] = saved;
                }
            }
            let node_rules = by_node.get(&id);
            for s in 0..subjects {
                let local = node_rules.and_then(|rs| {
                    self.combine(
                        rs.iter()
                            .filter(|r| r.subject.index() == s)
                            .map(|r| r.effect),
                    )
                });
                let effect = local.or(inherited[s]).unwrap_or(self.default_effect);
                if effect == Effect::Grant {
                    map.set(SubjectId(s as u32), id, true);
                }
            }
            if let Some(rs) = node_rules {
                let mut undo = Vec::new();
                let by_subject: HashMap<usize, Vec<Effect>> = rs
                    .iter()
                    .filter(|r| r.propagation == Propagation::Cascade)
                    .fold(HashMap::new(), |mut m, r| {
                        m.entry(r.subject.index()).or_default().push(r.effect);
                        m
                    });
                for (s, effects) in by_subject {
                    let e = self.combine(effects.into_iter()).unwrap();
                    undo.push((s, inherited[s]));
                    inherited[s] = Some(e);
                }
                if !undo.is_empty() {
                    frames.push((id.0 + doc.node(id).size, undo));
                }
            }
        }
        map
    }

    /// Compiles every mode of a catalog.
    pub fn compile_all(
        &self,
        doc: &Document,
        subjects: usize,
        modes: usize,
    ) -> Vec<AccessibilityMap> {
        (0..modes)
            .map(|m| self.compile(doc, subjects, ModeId(m as u8)))
            .collect()
    }

    fn combine(&self, effects: impl Iterator<Item = Effect>) -> Option<Effect> {
        let mut found = None;
        for e in effects {
            found = Some(match (found, e, self.conflict) {
                (None, e, _) => e,
                (_, Effect::Deny, ConflictResolution::DenyOverrides) => Effect::Deny,
                (_, Effect::Grant, ConflictResolution::GrantOverrides) => Effect::Grant,
                (Some(prev), _, _) => prev,
            });
        }
        found
    }
}

/// Resolves a simple absolute path expression to the nodes it selects.
///
/// Supported forms: `/a/b/c` (child steps), `*` as a step wildcard, and a
/// leading `//tag` selecting every node with that tag. This is a
/// rule-authoring convenience, not the query language (see `dol-nok`).
pub fn select_nodes(doc: &Document, path: &str) -> Vec<NodeId> {
    if let Some(tag) = path.strip_prefix("//") {
        return match doc.tags().get(tag) {
            Some(t) => doc.nodes_with_tag(t),
            None => Vec::new(),
        };
    }
    let steps: Vec<&str> = path.trim_start_matches('/').split('/').collect();
    if steps.is_empty() || steps[0].is_empty() {
        return Vec::new();
    }
    let mut current: Vec<NodeId> = Vec::new();
    let root = doc.root();
    if steps[0] == "*" || doc.name_of(root) == steps[0] {
        current.push(root);
    }
    for step in &steps[1..] {
        let mut next = Vec::new();
        for n in current {
            for c in doc.children(n) {
                if *step == "*" || doc.name_of(c) == *step {
                    next.push(c);
                }
            }
        }
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use dol_xml::parse;

    fn doc() -> Document {
        parse("<a><b><c/><d/></b><e><f><g/></f></e></a>").unwrap()
    }

    #[test]
    fn cascade_grant_with_local_override() {
        let doc = doc();
        let s = SubjectId(0);
        let m = ModeId(0);
        let mut p = Policy::new();
        p.grant_subtree(s, m, NodeId(0)); // grant everything
        p.add_rule(Rule {
            subject: s,
            mode: m,
            node: NodeId(2), // deny c locally
            effect: Effect::Deny,
            propagation: Propagation::Local,
        });
        let map = p.compile(&doc, 1, m);
        for id in doc.preorder() {
            let expect = id != NodeId(2);
            assert_eq!(map.accessible(s, id), expect, "node {id}");
            assert_eq!(p.accessible(&doc, s, m, id), expect, "ref node {id}");
        }
    }

    #[test]
    fn most_specific_override_nesting() {
        let doc = doc();
        let s = SubjectId(0);
        let m = ModeId(0);
        let mut p = Policy::new();
        p.grant_subtree(s, m, NodeId(0));
        p.deny_subtree(s, m, NodeId(4)); // deny subtree of e
        p.grant_subtree(s, m, NodeId(5)); // re-grant subtree of f
        let map = p.compile(&doc, 1, m);
        let expect = [true, true, true, true, false, true, true];
        for id in doc.preorder() {
            assert_eq!(map.accessible(s, id), expect[id.index()], "node {id}");
            assert_eq!(p.accessible(&doc, s, m, id), expect[id.index()]);
        }
    }

    #[test]
    fn local_rules_do_not_cascade() {
        let doc = doc();
        let s = SubjectId(0);
        let m = ModeId(0);
        let mut p = Policy::new();
        p.add_rule(Rule {
            subject: s,
            mode: m,
            node: NodeId(1),
            effect: Effect::Grant,
            propagation: Propagation::Local,
        });
        let map = p.compile(&doc, 1, m);
        assert!(map.accessible(s, NodeId(1)));
        assert!(!map.accessible(s, NodeId(2))); // child not granted
    }

    #[test]
    fn deny_overrides_ties() {
        let doc = doc();
        let s = SubjectId(0);
        let m = ModeId(0);
        let mut p = Policy::new();
        p.grant_subtree(s, m, NodeId(0));
        p.deny_subtree(s, m, NodeId(0));
        let map = p.compile(&doc, 1, m);
        assert!(!map.accessible(s, NodeId(0)));
        p.conflict = ConflictResolution::GrantOverrides;
        let map = p.compile(&doc, 1, m);
        assert!(map.accessible(s, NodeId(0)));
    }

    #[test]
    fn modes_are_independent() {
        let doc = doc();
        let s = SubjectId(0);
        let mut p = Policy::new();
        p.grant_subtree(s, ModeId(0), NodeId(0));
        let maps = p.compile_all(&doc, 1, 2);
        assert!(maps[0].accessible(s, NodeId(3)));
        assert!(!maps[1].accessible(s, NodeId(3)));
    }

    #[test]
    fn subjects_are_independent() {
        let doc = doc();
        let mut p = Policy::new();
        p.grant_subtree(SubjectId(1), ModeId(0), NodeId(1));
        let map = p.compile(&doc, 2, ModeId(0));
        assert!(!map.accessible(SubjectId(0), NodeId(2)));
        assert!(map.accessible(SubjectId(1), NodeId(2)));
    }

    #[test]
    fn open_world_default() {
        let doc = doc();
        let mut p = Policy::new();
        p.default_effect = Effect::Grant;
        p.deny_subtree(SubjectId(0), ModeId(0), NodeId(1));
        let map = p.compile(&doc, 1, ModeId(0));
        assert!(map.accessible(SubjectId(0), NodeId(0)));
        assert!(!map.accessible(SubjectId(0), NodeId(3)));
        assert!(map.accessible(SubjectId(0), NodeId(4)));
    }

    #[test]
    fn path_selection() {
        let doc = parse(
            "<site><regions><africa><item/><item/></africa><asia><item/></asia></regions></site>",
        )
        .unwrap();
        assert_eq!(select_nodes(&doc, "/site/regions/africa").len(), 1);
        assert_eq!(select_nodes(&doc, "/site/regions/*").len(), 2);
        assert_eq!(select_nodes(&doc, "//item").len(), 3);
        assert_eq!(select_nodes(&doc, "/nope").len(), 0);
        assert_eq!(select_nodes(&doc, "/site/regions/africa/item").len(), 2);
    }
}
