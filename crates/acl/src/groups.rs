//! The group-factored subject table: logical subjects over physical columns.
//!
//! The paper's motivating deployment (LiveLink, 8,639 users and groups)
//! works *because* rights are group-correlated: grants target a group/role
//! structure, and "a user's access rights may include her own plus those of
//! any groups of which she is a member" (§4, footnote 4). A [`GroupSpace`]
//! exploits that: codebook entries store bits over **physical columns** —
//! one per group plus one per directly-granted subject — while the (much
//! larger) population of *logical* subjects is described by a membership
//! table. A subject's effective column is *derived*: the OR of the physical
//! columns of its transitive group closure. Adding or removing a subject is
//! then a membership edit that touches no entry bits.
//!
//! Parent sets are interned: every user in the same team shares one stored
//! set, so the membership table costs four bytes per subject plus a small
//! pool of distinct sets — the sub-linear half of the factored codebook's
//! size accounting.

use crate::subject::{SubjectCatalog, SubjectId};
use std::collections::{HashMap, HashSet};

/// Sentinel for "no interned parent set" (the empty set).
const EMPTY_SET: u32 = u32::MAX;

/// Logical subjects factored through a group hierarchy onto physical
/// codebook columns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupSpace {
    /// Per logical subject: index into `sets` (EMPTY_SET = no parents).
    parent_set: Vec<u32>,
    /// Interned parent sets (sorted logical ids, deduplicated).
    sets: Vec<Vec<u32>>,
    set_index: HashMap<Vec<u32>, u32>,
    /// Sparse: logical subject -> physical column holding its direct grants.
    direct: HashMap<u32, u32>,
    /// Logical subjects that have been removed (membership cleared; their
    /// direct column, if any, is retired by the codebook).
    retired: HashSet<u32>,
}

impl GroupSpace {
    /// An empty space with no subjects.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of logical subjects ever created (including retired ones —
    /// ids are stable and never reused).
    pub fn len(&self) -> usize {
        self.parent_set.len()
    }

    /// Whether the space holds no subject.
    pub fn is_empty(&self) -> bool {
        self.parent_set.is_empty()
    }

    /// Adds a logical subject with the given direct parent groups, returning
    /// its id. O(|parents| log |parents|); touches no codebook entry.
    pub fn add_subject(&mut self, parents: &[SubjectId]) -> SubjectId {
        let id = u32::try_from(self.parent_set.len()).expect("more than u32::MAX subjects");
        let set = self.intern_set(parents.iter().map(|p| p.0).collect());
        self.parent_set.push(set);
        SubjectId(id)
    }

    /// Binds a logical subject to the physical column holding its direct
    /// grants. Groups are bound at construction; users get a column lazily,
    /// on their first direct grant.
    pub fn bind_direct(&mut self, subject: SubjectId, column: u32) {
        self.direct.insert(subject.0, column);
    }

    /// The physical column of `subject`'s direct grants, if bound.
    pub fn direct_column(&self, subject: SubjectId) -> Option<u32> {
        if self.retired.contains(&subject.0) {
            return None;
        }
        self.direct.get(&subject.0).copied()
    }

    /// Direct parent groups of a subject (empty if retired).
    pub fn parents(&self, subject: SubjectId) -> &[u32] {
        if self.retired.contains(&subject.0) {
            return &[];
        }
        match self.parent_set.get(subject.index()) {
            Some(&s) if s != EMPTY_SET => &self.sets[s as usize],
            _ => &[],
        }
    }

    /// Replaces a subject's direct parent set.
    pub fn set_parents(&mut self, subject: SubjectId, parents: &[SubjectId]) {
        let set = self.intern_set(parents.iter().map(|p| p.0).collect());
        self.parent_set[subject.index()] = set;
    }

    /// Adds or removes one direct membership edge. Returns whether the
    /// parent set actually changed.
    pub fn set_membership(&mut self, subject: SubjectId, group: SubjectId, member: bool) -> bool {
        let mut set: Vec<u32> = self.parents(subject).to_vec();
        let had = set.binary_search(&group.0);
        match (member, had) {
            (true, Err(at)) => set.insert(at, group.0),
            (false, Ok(at)) => {
                set.remove(at);
            }
            _ => return false,
        }
        self.parent_set[subject.index()] = self.intern_set(set);
        true
    }

    /// Retires a subject: clears its membership and direct binding. The id
    /// stays allocated (never reused); derived columns read all-deny.
    /// Returns the physical column that should be retired, if one was bound.
    pub fn retire(&mut self, subject: SubjectId) -> Option<u32> {
        self.retired.insert(subject.0);
        self.parent_set[subject.index()] = EMPTY_SET;
        self.direct.remove(&subject.0)
    }

    /// Whether a subject has been retired.
    pub fn is_retired(&self, subject: SubjectId) -> bool {
        self.retired.contains(&subject.0)
    }

    /// The physical columns whose OR is `subject`'s derived column: its own
    /// direct column plus the direct columns of every group reachable
    /// through the membership hierarchy (cycle-safe).
    pub fn closure_columns(&self, subject: SubjectId) -> Vec<u32> {
        let mut cols = Vec::new();
        let mut seen = HashSet::new();
        let mut stack = vec![subject.0];
        while let Some(s) = stack.pop() {
            if !seen.insert(s) {
                continue;
            }
            if let Some(&c) = self.direct.get(&s) {
                if !self.retired.contains(&s) {
                    cols.push(c);
                }
            }
            stack.extend_from_slice(self.parents(SubjectId(s)));
        }
        cols.sort_unstable();
        cols
    }

    /// Remaps every bound physical column through `remap` (old column →
    /// new column) after the codebook retires columns; logical ids are
    /// untouched.
    pub fn remap_columns(&mut self, remap: &HashMap<u32, u32>) {
        for c in self.direct.values_mut() {
            *c = *remap.get(c).expect("live column must survive compaction");
        }
    }

    /// Membership-table bytes: four per subject (interned set id) plus the
    /// set pool and the sparse direct/retired maps — the honest denominator
    /// of the factored codebook's size accounting.
    pub fn bytes(&self) -> usize {
        self.parent_set.len() * 4
            + self.sets.iter().map(|s| s.len() * 4).sum::<usize>()
            + self.direct.len() * 8
            + self.retired.len() * 4
    }

    /// Builds a space mirroring a [`SubjectCatalog`]: logical ids equal the
    /// catalog's ids, every *group* is bound to a fresh physical column (in
    /// id order), users start unbound. Returns the space and the number of
    /// physical columns bound.
    pub fn from_catalog(catalog: &SubjectCatalog) -> (Self, usize) {
        let mut space = Self::new();
        for id in catalog.iter() {
            let got = space.add_subject(catalog.direct_groups(id));
            debug_assert_eq!(got, id);
        }
        let mut cols = 0u32;
        for g in catalog.groups() {
            space.bind_direct(g, cols);
            cols += 1;
        }
        (space, cols as usize)
    }

    /// Serializes to a little-endian blob (see `from_bytes`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.parent_set.len() as u32).to_le_bytes());
        for &s in &self.parent_set {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out.extend_from_slice(&(self.sets.len() as u32).to_le_bytes());
        for set in &self.sets {
            out.extend_from_slice(&(set.len() as u32).to_le_bytes());
            for &p in set {
                out.extend_from_slice(&p.to_le_bytes());
            }
        }
        let mut direct: Vec<(u32, u32)> = self.direct.iter().map(|(&s, &c)| (s, c)).collect();
        direct.sort_unstable();
        out.extend_from_slice(&(direct.len() as u32).to_le_bytes());
        for (s, c) in direct {
            out.extend_from_slice(&s.to_le_bytes());
            out.extend_from_slice(&c.to_le_bytes());
        }
        let mut retired: Vec<u32> = self.retired.iter().copied().collect();
        retired.sort_unstable();
        out.extend_from_slice(&(retired.len() as u32).to_le_bytes());
        for s in retired {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out
    }

    /// Reconstructs a space from [`to_bytes`](GroupSpace::to_bytes) output,
    /// returning the space and the number of bytes consumed.
    pub fn from_bytes(bytes: &[u8]) -> Result<(Self, usize), String> {
        let mut off = 0usize;
        let mut u32_at = |b: &[u8]| -> Result<u32, String> {
            let v = b
                .get(off..off + 4)
                .map(|s| u32::from_le_bytes(s.try_into().expect("4-byte slice")))
                .ok_or_else(|| "group table truncated".to_string())?;
            off += 4;
            Ok(v)
        };
        let n = u32_at(bytes)? as usize;
        let mut space = Self::new();
        let mut parent_set = Vec::with_capacity(n);
        for _ in 0..n {
            parent_set.push(u32_at(bytes)?);
        }
        let n_sets = u32_at(bytes)? as usize;
        for _ in 0..n_sets {
            let k = u32_at(bytes)? as usize;
            let mut set = Vec::with_capacity(k);
            for _ in 0..k {
                set.push(u32_at(bytes)?);
            }
            let id = space.sets.len() as u32;
            space.set_index.insert(set.clone(), id);
            space.sets.push(set);
        }
        for &s in &parent_set {
            if s != EMPTY_SET && s as usize >= space.sets.len() {
                return Err("group table references unknown parent set".to_string());
            }
        }
        space.parent_set = parent_set;
        let n_direct = u32_at(bytes)? as usize;
        for _ in 0..n_direct {
            let s = u32_at(bytes)?;
            let c = u32_at(bytes)?;
            space.direct.insert(s, c);
        }
        let n_retired = u32_at(bytes)? as usize;
        for _ in 0..n_retired {
            let s = u32_at(bytes)?;
            space.retired.insert(s);
        }
        Ok((space, off))
    }

    fn intern_set(&mut self, mut set: Vec<u32>) -> u32 {
        set.sort_unstable();
        set.dedup();
        if set.is_empty() {
            return EMPTY_SET;
        }
        if let Some(&id) = self.set_index.get(&set) {
            return id;
        }
        let id = self.sets.len() as u32;
        self.set_index.insert(set.clone(), id);
        self.sets.push(set);
        id
    }
}

impl SubjectId {
    /// The raw id as a physical-column index (only meaningful in flat,
    /// unfactored codebooks).
    #[inline]
    pub fn column(self) -> u32 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closure_follows_hierarchy() {
        let mut sp = GroupSpace::new();
        let company = sp.add_subject(&[]);
        let dept = sp.add_subject(&[company]);
        let team = sp.add_subject(&[dept]);
        sp.bind_direct(company, 0);
        sp.bind_direct(dept, 1);
        sp.bind_direct(team, 2);
        let user = sp.add_subject(&[team]);
        assert_eq!(sp.closure_columns(user), vec![0, 1, 2]);
        assert_eq!(sp.closure_columns(dept), vec![0, 1]);
        // Direct binding joins the closure.
        sp.bind_direct(user, 3);
        assert_eq!(sp.closure_columns(user), vec![0, 1, 2, 3]);
    }

    #[test]
    fn membership_edits_and_retire() {
        let mut sp = GroupSpace::new();
        let g1 = sp.add_subject(&[]);
        let g2 = sp.add_subject(&[]);
        sp.bind_direct(g1, 0);
        sp.bind_direct(g2, 1);
        let u = sp.add_subject(&[g1]);
        assert_eq!(sp.closure_columns(u), vec![0]);
        assert!(sp.set_membership(u, g2, true));
        assert!(!sp.set_membership(u, g2, true), "idempotent add");
        assert_eq!(sp.closure_columns(u), vec![0, 1]);
        assert!(sp.set_membership(u, g1, false));
        assert_eq!(sp.closure_columns(u), vec![1]);
        sp.bind_direct(u, 5);
        assert_eq!(sp.retire(u), Some(5));
        assert!(sp.is_retired(u));
        assert!(sp.closure_columns(u).is_empty());
        assert!(sp.parents(u).is_empty());
    }

    #[test]
    fn parent_sets_are_interned() {
        let mut sp = GroupSpace::new();
        let g = sp.add_subject(&[]);
        sp.bind_direct(g, 0);
        let before = sp.bytes();
        for _ in 0..1000 {
            sp.add_subject(&[g]);
        }
        // 1000 subjects sharing one interned set: 4 bytes each, no per-user
        // set storage.
        assert!(sp.bytes() - before <= 1000 * 4 + 8);
    }

    #[test]
    fn cycle_safe_closure() {
        let mut sp = GroupSpace::new();
        let g1 = sp.add_subject(&[]);
        let g2 = sp.add_subject(&[g1]);
        sp.set_parents(g1, &[g2]);
        sp.bind_direct(g1, 0);
        sp.bind_direct(g2, 1);
        assert_eq!(sp.closure_columns(g1), vec![0, 1]);
    }

    #[test]
    fn serialization_roundtrip() {
        let mut sp = GroupSpace::new();
        let g1 = sp.add_subject(&[]);
        let g2 = sp.add_subject(&[g1]);
        sp.bind_direct(g1, 0);
        sp.bind_direct(g2, 1);
        let u1 = sp.add_subject(&[g2]);
        let u2 = sp.add_subject(&[g1, g2]);
        sp.bind_direct(u2, 2);
        sp.retire(u1);
        let blob = sp.to_bytes();
        let (back, used) = GroupSpace::from_bytes(&blob).unwrap();
        assert_eq!(used, blob.len());
        assert_eq!(back, sp);
        assert!(GroupSpace::from_bytes(&blob[..3]).is_err());
    }

    #[test]
    fn from_catalog_binds_groups() {
        let mut cat = SubjectCatalog::new();
        let u = cat.add_user("u");
        let g = cat.add_group("g");
        let h = cat.add_group("h");
        cat.add_membership(u, g);
        cat.add_membership(g, h);
        let (sp, cols) = GroupSpace::from_catalog(&cat);
        assert_eq!(cols, 2);
        let gc = sp.direct_column(g).unwrap();
        let hc = sp.direct_column(h).unwrap();
        assert_eq!(sp.direct_column(u), None);
        let mut expect = vec![gc, hc];
        expect.sort_unstable();
        assert_eq!(sp.closure_columns(u), expect);
    }
}
