//! Action modes (read, write, …).
//!
//! The paper presents DOL for a single mode and notes the approach extends to
//! multiple action modes "in a similar way [as] for multiple users" (§2). The
//! engine treats modes as an outer dimension: one accessibility map / DOL per
//! mode (the LiveLink experiments use ten modes).

/// A dense identifier of an action mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModeId(pub u8);

impl ModeId {
    /// Conventional id for the `read` mode in catalogs created by
    /// [`ModeCatalog::read_write`].
    pub const READ: ModeId = ModeId(0);
    /// Conventional id for the `write` mode in catalogs created by
    /// [`ModeCatalog::read_write`].
    pub const WRITE: ModeId = ModeId(1);

    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ModeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// The registry of action modes.
#[derive(Debug, Default, Clone)]
pub struct ModeCatalog {
    names: Vec<String>,
}

impl ModeCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// A catalog with the two classic modes, `read` (id 0) and `write` (id 1).
    pub fn read_write() -> Self {
        let mut c = Self::new();
        c.add("read");
        c.add("write");
        c
    }

    /// Registers a mode.
    pub fn add(&mut self, name: &str) -> ModeId {
        assert!(
            !self.names.iter().any(|n| n == name),
            "duplicate mode `{name}`"
        );
        let id = ModeId(u8::try_from(self.names.len()).expect("more than 255 modes"));
        self.names.push(name.to_owned());
        id
    }

    /// Looks a mode up by name.
    pub fn get(&self, name: &str) -> Option<ModeId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| ModeId(i as u8))
    }

    /// The name of a mode.
    pub fn name(&self, id: ModeId) -> &str {
        &self.names[id.index()]
    }

    /// Number of modes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no mode is registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates all mode ids.
    pub fn iter(&self) -> impl Iterator<Item = ModeId> {
        (0..self.names.len() as u8).map(ModeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_catalog() {
        let c = ModeCatalog::read_write();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("read"), Some(ModeId::READ));
        assert_eq!(c.get("write"), Some(ModeId::WRITE));
        assert_eq!(c.name(ModeId::WRITE), "write");
        assert_eq!(c.get("execute"), None);
    }

    #[test]
    fn ten_livelink_style_modes() {
        let mut c = ModeCatalog::new();
        for i in 0..10 {
            c.add(&format!("mode{i}"));
        }
        assert_eq!(c.len(), 10);
        assert_eq!(c.iter().count(), 10);
    }

    #[test]
    #[should_panic(expected = "duplicate mode")]
    fn duplicates_rejected() {
        let mut c = ModeCatalog::new();
        c.add("read");
        c.add("read");
    }
}
