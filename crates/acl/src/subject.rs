//! Access-control subjects: users, groups and the subject hierarchy.
//!
//! The paper uses *subjects* for both users and user groups; "the subject
//! hierarchy, which describes group membership, is assumed to be maintained
//! separately" (§2, footnote 1), and "a user's access rights may include her
//! own plus those of any groups of which she is a member" (§4, footnote 4).
//! [`SubjectCatalog`] is that separately-maintained hierarchy.

use std::collections::HashMap;

/// A dense identifier of a subject (user or group).
///
/// `u32`-wide: the paper's motivating deployment has 8,639 subjects, but the
/// group-factored codebook derives per-subject columns from group columns, so
/// the subject space itself must scale to millions — far past the old `u16`
/// cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubjectId(pub u32);

impl SubjectId {
    /// The raw index, for bit-vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SubjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Whether a subject is an individual user or a user group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubjectKind {
    /// An individual trying to access data.
    User,
    /// A named collection of subjects.
    Group,
}

#[derive(Debug, Clone)]
struct SubjectInfo {
    name: String,
    kind: SubjectKind,
    /// Groups this subject is a direct member of.
    memberships: Vec<SubjectId>,
}

/// The registry of subjects and the group-membership hierarchy.
#[derive(Debug, Default, Clone)]
pub struct SubjectCatalog {
    subjects: Vec<SubjectInfo>,
    by_name: HashMap<String, SubjectId>,
}

impl SubjectCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a user. Names must be unique across users and groups.
    pub fn add_user(&mut self, name: &str) -> SubjectId {
        self.add(name, SubjectKind::User)
    }

    /// Registers a group.
    pub fn add_group(&mut self, name: &str) -> SubjectId {
        self.add(name, SubjectKind::Group)
    }

    fn add(&mut self, name: &str, kind: SubjectKind) -> SubjectId {
        assert!(
            !self.by_name.contains_key(name),
            "duplicate subject name `{name}`"
        );
        let id =
            SubjectId(u32::try_from(self.subjects.len()).expect("more than u32::MAX subjects"));
        self.subjects.push(SubjectInfo {
            name: name.to_owned(),
            kind,
            memberships: Vec::new(),
        });
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Makes `member` a direct member of `group`.
    ///
    /// # Panics
    /// Panics if `group` is not a [`SubjectKind::Group`].
    pub fn add_membership(&mut self, member: SubjectId, group: SubjectId) {
        assert_eq!(
            self.subjects[group.index()].kind,
            SubjectKind::Group,
            "membership target must be a group"
        );
        let m = &mut self.subjects[member.index()].memberships;
        if !m.contains(&group) {
            m.push(group);
        }
    }

    /// Total number of subjects (users + groups).
    pub fn len(&self) -> usize {
        self.subjects.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.subjects.is_empty()
    }

    /// Looks a subject up by name.
    pub fn get(&self, name: &str) -> Option<SubjectId> {
        self.by_name.get(name).copied()
    }

    /// The name of a subject.
    pub fn name(&self, id: SubjectId) -> &str {
        &self.subjects[id.index()].name
    }

    /// The kind of a subject.
    pub fn kind(&self, id: SubjectId) -> SubjectKind {
        self.subjects[id.index()].kind
    }

    /// Direct group memberships of a subject.
    pub fn direct_groups(&self, id: SubjectId) -> &[SubjectId] {
        &self.subjects[id.index()].memberships
    }

    /// All subjects whose rights apply to `id`: itself plus every group
    /// reachable through the membership hierarchy (cycle-safe, in discovery
    /// order). This is the subject set whose accessibility bits are OR-ed to
    /// answer "can this *user* access this node".
    pub fn effective_subjects(&self, id: SubjectId) -> Vec<SubjectId> {
        let mut seen = vec![false; self.subjects.len()];
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(s) = stack.pop() {
            if std::mem::replace(&mut seen[s.index()], true) {
                continue;
            }
            out.push(s);
            for &g in &self.subjects[s.index()].memberships {
                stack.push(g);
            }
        }
        out
    }

    /// Iterates all subject ids.
    pub fn iter(&self) -> impl Iterator<Item = SubjectId> {
        (0..self.subjects.len() as u32).map(SubjectId)
    }

    /// Iterates user ids only.
    pub fn users(&self) -> impl Iterator<Item = SubjectId> + '_ {
        self.iter()
            .filter(move |&s| self.kind(s) == SubjectKind::User)
    }

    /// Iterates group ids only.
    pub fn groups(&self) -> impl Iterator<Item = SubjectId> + '_ {
        self.iter()
            .filter(move |&s| self.kind(s) == SubjectKind::Group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn users_and_groups() {
        let mut c = SubjectCatalog::new();
        let alice = c.add_user("alice");
        let staff = c.add_group("staff");
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("alice"), Some(alice));
        assert_eq!(c.kind(staff), SubjectKind::Group);
        assert_eq!(c.users().count(), 1);
        assert_eq!(c.groups().count(), 1);
        assert_eq!(c.name(alice), "alice");
    }

    #[test]
    fn effective_subjects_transitive() {
        let mut c = SubjectCatalog::new();
        let u = c.add_user("u");
        let g1 = c.add_group("g1");
        let g2 = c.add_group("g2");
        let g3 = c.add_group("g3");
        c.add_membership(u, g1);
        c.add_membership(g1, g2);
        c.add_membership(g2, g3);
        let eff = c.effective_subjects(u);
        assert_eq!(eff.len(), 4);
        assert!(eff.contains(&g3));
    }

    #[test]
    fn effective_subjects_cycle_safe() {
        let mut c = SubjectCatalog::new();
        let g1 = c.add_group("g1");
        let g2 = c.add_group("g2");
        c.add_membership(g1, g2);
        c.add_membership(g2, g1);
        assert_eq!(c.effective_subjects(g1).len(), 2);
    }

    #[test]
    #[should_panic(expected = "must be a group")]
    fn membership_in_user_rejected() {
        let mut c = SubjectCatalog::new();
        let u = c.add_user("u");
        let v = c.add_user("v");
        c.add_membership(u, v);
    }

    #[test]
    #[should_panic(expected = "duplicate subject name")]
    fn duplicate_names_rejected() {
        let mut c = SubjectCatalog::new();
        c.add_user("x");
        c.add_group("x");
    }

    #[test]
    fn duplicate_membership_is_idempotent() {
        let mut c = SubjectCatalog::new();
        let u = c.add_user("u");
        let g = c.add_group("g");
        c.add_membership(u, g);
        c.add_membership(u, g);
        assert_eq!(c.direct_groups(u).len(), 1);
    }
}
