//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the subset of proptest 1.x it uses: the [`Strategy`] trait with `prop_map`
//! / `prop_flat_map` / `boxed`, range and `any::<T>()` strategies, tuple
//! strategies, [`collection::vec`], [`option::of`], [`prop_oneof!`], and the
//! [`proptest!`] test macro with `ProptestConfig::with_cases`.
//!
//! Differences from upstream, deliberate and documented:
//!
//! * **No shrinking.** A failing case reports its deterministic case seed and
//!   the `Debug` form of its inputs instead of a minimized example.
//! * **Deterministic by construction.** Case `i` of test `t` derives its RNG
//!   from a fixed base seed, the test name, and `i` — reruns reproduce
//!   failures exactly with no persistence file.
//! * Failure is by panic (`prop_assert*` delegate to `assert*`), which the
//!   libtest harness reports per test function.

use std::rc::Rc;

/// Deterministic split-mix style RNG used for all generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds a generator.
    pub fn new(seed: u64) -> Self {
        TestRng(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Error type carried by generated test-case closures (`return Ok(())` in
/// test bodies type-checks against this).
#[derive(Debug)]
pub struct TestCaseError;

/// Per-test configuration. Only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Derives a second strategy from each generated value.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F, S2>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap {
                inner: self,
                f,
                _marker: PhantomData,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// A constant strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F, S2> {
        inner: S,
        f: F,
        _marker: PhantomData<fn() -> S2>,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F, S2>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy (cheap to clone).
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// A uniform choice between boxed alternatives ([`crate::prop_oneof!`]).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "prop_oneof! of zero strategies");
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// A uniformly random value of a primitive type (see [`crate::any`]).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub PhantomData<T>);

    /// Primitive types supported by [`crate::any`].
    pub trait Arbitrary: Sized {
        /// Draws one uniformly random value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A size specification for [`vec`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty vec size range");
            SizeRange { lo, hi: hi + 1 }
        }
    }

    /// A strategy producing `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// A strategy producing `Some(inner)` most of the time and `None`
    /// occasionally (upstream defaults Some-heavy; we use 3:1).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod bool {
    //! `bool` strategies.

    use super::strategy::Any;
    use std::marker::PhantomData;

    /// A uniformly random boolean.
    pub const ANY: Any<::core::primitive::bool> = Any(PhantomData);
}

/// A uniformly random value of a supported primitive type.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Derives the deterministic RNG for case `case` of test `name`.
pub fn case_rng(name: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::new(h ^ (u64::from(case) << 32) ^ u64::from(case))
}

/// Drop guard that reports the failing case's inputs when the body panics.
pub struct CaseReporter {
    /// Test name.
    pub name: &'static str,
    /// Case index within the run.
    pub case: u32,
    /// `Debug` rendering of the generated inputs.
    pub inputs: Rc<String>,
}

impl Drop for CaseReporter {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest case failed: {} case #{} inputs = {}",
                self.name, self.case, self.inputs
            );
        }
    }
}

pub mod prelude {
    //! Everything `use proptest::prelude::*` is expected to bring in.

    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{any, ProptestConfig};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// A uniform choice among strategies with a common value type. Weights
/// (`w => strat`) are accepted and ignored (uniform choice).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$($strat),+]
    };
    ($($strat:expr),+ $(,)?) => {{
        use $crate::strategy::Strategy as _;
        $crate::strategy::Union(vec![$($strat.boxed()),+])
    }};
}

/// `assert!` under a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The proptest test macro: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let config: $crate::ProptestConfig = $cfg;
                let strategies = ($($strat,)+);
                for case in 0..config.cases {
                    let mut rng = $crate::case_rng(stringify!($name), case);
                    let ($($arg,)+) = strategies.generate(&mut rng);
                    let inputs = ::std::rc::Rc::new(format!("{:?}", ($(&$arg,)+)));
                    let _reporter = $crate::CaseReporter {
                        name: stringify!($name),
                        case,
                        inputs,
                    };
                    // The closure gives `prop_assert!`'s `return Err(..)` an
                    // early-exit scope distinct from the case loop.
                    #[allow(clippy::redundant_closure_call)]
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    result.expect("proptest case returned Err");
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vecs() -> impl Strategy<Value = Vec<u8>> {
        prop::collection::vec(0u8..10, 0..5)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in any::<u16>(), b in prop::bool::ANY) {
            prop_assert!((3..9).contains(&x));
            let _ = (y, b);
        }

        #[test]
        fn vec_sizes_respected(v in small_vecs()) {
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_and_flat_map(n in prop_oneof![Just(3usize), Just(7usize)],
                              pair in (0u32..5).prop_flat_map(|a| (Just(a), a..a + 3))) {
            prop_assert!(n == 3 || n == 7);
            let (a, b) = pair;
            prop_assert!(b >= a && b < a + 3);
        }

        #[test]
        fn option_of_produces_both(o in prop::option::of(0u8..3)) {
            if let Some(v) = o {
                prop_assert!(v < 3);
            }
        }

        #[test]
        fn early_return_ok_works(flag in any::<bool>()) {
            if flag {
                return Ok(());
            }
            prop_assert!(!flag);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5).map(|c| crate::case_rng("t", c).next_u64()).collect();
        let b: Vec<u64> = (0..5).map(|c| crate::case_rng("t", c).next_u64()).collect();
        assert_eq!(a, b);
        assert_ne!(
            crate::case_rng("t", 0).next_u64(),
            crate::case_rng("u", 0).next_u64()
        );
    }

    #[test]
    fn map_composes() {
        let s = (0u32..10).prop_map(|x| x * 2);
        let mut rng = crate::TestRng::new(5);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }
}
